/root/repo/target/release/deps/exp_a1_bloom-644e532b08dc791b.d: crates/bench/src/bin/exp_a1_bloom.rs

/root/repo/target/release/deps/exp_a1_bloom-644e532b08dc791b: crates/bench/src/bin/exp_a1_bloom.rs

crates/bench/src/bin/exp_a1_bloom.rs:
