/root/repo/target/release/deps/proptest-cabe9741f163111e.d: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/bool_any.rs vendor/proptest/src/collection.rs vendor/proptest/src/option.rs vendor/proptest/src/rng.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-cabe9741f163111e.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/bool_any.rs vendor/proptest/src/collection.rs vendor/proptest/src/option.rs vendor/proptest/src/rng.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-cabe9741f163111e.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/bool_any.rs vendor/proptest/src/collection.rs vendor/proptest/src/option.rs vendor/proptest/src/rng.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/arbitrary.rs:
vendor/proptest/src/bool_any.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/option.rs:
vendor/proptest/src/rng.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/string.rs:
vendor/proptest/src/test_runner.rs:
