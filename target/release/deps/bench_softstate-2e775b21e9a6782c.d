/root/repo/target/release/deps/bench_softstate-2e775b21e9a6782c.d: crates/bench/benches/bench_softstate.rs

/root/repo/target/release/deps/bench_softstate-2e775b21e9a6782c: crates/bench/benches/bench_softstate.rs

crates/bench/benches/bench_softstate.rs:
