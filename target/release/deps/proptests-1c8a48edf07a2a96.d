/root/repo/target/release/deps/proptests-1c8a48edf07a2a96.d: crates/giis/tests/proptests.rs

/root/repo/target/release/deps/proptests-1c8a48edf07a2a96: crates/giis/tests/proptests.rs

crates/giis/tests/proptests.rs:
