/root/repo/target/release/deps/gis_services-45800fb52066d6af.d: crates/services/src/lib.rs crates/services/src/adapt.rs crates/services/src/broker.rs crates/services/src/diagnose.rs crates/services/src/heartbeat.rs crates/services/src/matchmaker.rs crates/services/src/replica.rs crates/services/src/troubleshoot.rs

/root/repo/target/release/deps/libgis_services-45800fb52066d6af.rlib: crates/services/src/lib.rs crates/services/src/adapt.rs crates/services/src/broker.rs crates/services/src/diagnose.rs crates/services/src/heartbeat.rs crates/services/src/matchmaker.rs crates/services/src/replica.rs crates/services/src/troubleshoot.rs

/root/repo/target/release/deps/libgis_services-45800fb52066d6af.rmeta: crates/services/src/lib.rs crates/services/src/adapt.rs crates/services/src/broker.rs crates/services/src/diagnose.rs crates/services/src/heartbeat.rs crates/services/src/matchmaker.rs crates/services/src/replica.rs crates/services/src/troubleshoot.rs

crates/services/src/lib.rs:
crates/services/src/adapt.rs:
crates/services/src/broker.rs:
crates/services/src/diagnose.rs:
crates/services/src/heartbeat.rs:
crates/services/src/matchmaker.rs:
crates/services/src/replica.rs:
crates/services/src/troubleshoot.rs:
