/root/repo/target/release/deps/gis_gris-03ea72729d336406.d: crates/gris/src/lib.rs crates/gris/src/archive.rs crates/gris/src/provider.rs crates/gris/src/providers.rs crates/gris/src/server.rs

/root/repo/target/release/deps/libgis_gris-03ea72729d336406.rlib: crates/gris/src/lib.rs crates/gris/src/archive.rs crates/gris/src/provider.rs crates/gris/src/providers.rs crates/gris/src/server.rs

/root/repo/target/release/deps/libgis_gris-03ea72729d336406.rmeta: crates/gris/src/lib.rs crates/gris/src/archive.rs crates/gris/src/provider.rs crates/gris/src/providers.rs crates/gris/src/server.rs

crates/gris/src/lib.rs:
crates/gris/src/archive.rs:
crates/gris/src/provider.rs:
crates/gris/src/providers.rs:
crates/gris/src/server.rs:
