/root/repo/target/release/deps/exp_fig5_hierarchy-e6268e3fc920ccd7.d: crates/bench/src/bin/exp_fig5_hierarchy.rs

/root/repo/target/release/deps/exp_fig5_hierarchy-e6268e3fc920ccd7: crates/bench/src/bin/exp_fig5_hierarchy.rs

crates/bench/src/bin/exp_fig5_hierarchy.rs:
