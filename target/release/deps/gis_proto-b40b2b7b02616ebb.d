/root/repo/target/release/deps/gis_proto-b40b2b7b02616ebb.d: crates/proto/src/lib.rs crates/proto/src/grip.rs crates/proto/src/grrp.rs crates/proto/src/wire.rs

/root/repo/target/release/deps/libgis_proto-b40b2b7b02616ebb.rlib: crates/proto/src/lib.rs crates/proto/src/grip.rs crates/proto/src/grrp.rs crates/proto/src/wire.rs

/root/repo/target/release/deps/libgis_proto-b40b2b7b02616ebb.rmeta: crates/proto/src/lib.rs crates/proto/src/grip.rs crates/proto/src/grrp.rs crates/proto/src/wire.rs

crates/proto/src/lib.rs:
crates/proto/src/grip.rs:
crates/proto/src/grrp.rs:
crates/proto/src/wire.rs:
