/root/repo/target/release/deps/exp_e13_degraded_mode-8f7d43a39932ec9a.d: crates/bench/src/bin/exp_e13_degraded_mode.rs

/root/repo/target/release/deps/exp_e13_degraded_mode-8f7d43a39932ec9a: crates/bench/src/bin/exp_e13_degraded_mode.rs

crates/bench/src/bin/exp_e13_degraded_mode.rs:
