/root/repo/target/release/deps/gis_ldap-af36a60a04ca5e28.d: crates/ldap/src/lib.rs crates/ldap/src/codec.rs crates/ldap/src/dit.rs crates/ldap/src/dn.rs crates/ldap/src/entry.rs crates/ldap/src/error.rs crates/ldap/src/filter.rs crates/ldap/src/ldif.rs crates/ldap/src/schema.rs crates/ldap/src/url.rs

/root/repo/target/release/deps/libgis_ldap-af36a60a04ca5e28.rlib: crates/ldap/src/lib.rs crates/ldap/src/codec.rs crates/ldap/src/dit.rs crates/ldap/src/dn.rs crates/ldap/src/entry.rs crates/ldap/src/error.rs crates/ldap/src/filter.rs crates/ldap/src/ldif.rs crates/ldap/src/schema.rs crates/ldap/src/url.rs

/root/repo/target/release/deps/libgis_ldap-af36a60a04ca5e28.rmeta: crates/ldap/src/lib.rs crates/ldap/src/codec.rs crates/ldap/src/dit.rs crates/ldap/src/dn.rs crates/ldap/src/entry.rs crates/ldap/src/error.rs crates/ldap/src/filter.rs crates/ldap/src/ldif.rs crates/ldap/src/schema.rs crates/ldap/src/url.rs

crates/ldap/src/lib.rs:
crates/ldap/src/codec.rs:
crates/ldap/src/dit.rs:
crates/ldap/src/dn.rs:
crates/ldap/src/entry.rs:
crates/ldap/src/error.rs:
crates/ldap/src/filter.rs:
crates/ldap/src/ldif.rs:
crates/ldap/src/schema.rs:
crates/ldap/src/url.rs:
