/root/repo/target/release/deps/gis_gsi-e39b3c0d424eaaa1.d: crates/gsi/src/lib.rs crates/gsi/src/acl.rs crates/gsi/src/auth.rs crates/gsi/src/cert.rs crates/gsi/src/keys.rs

/root/repo/target/release/deps/libgis_gsi-e39b3c0d424eaaa1.rlib: crates/gsi/src/lib.rs crates/gsi/src/acl.rs crates/gsi/src/auth.rs crates/gsi/src/cert.rs crates/gsi/src/keys.rs

/root/repo/target/release/deps/libgis_gsi-e39b3c0d424eaaa1.rmeta: crates/gsi/src/lib.rs crates/gsi/src/acl.rs crates/gsi/src/auth.rs crates/gsi/src/cert.rs crates/gsi/src/keys.rs

crates/gsi/src/lib.rs:
crates/gsi/src/acl.rs:
crates/gsi/src/auth.rs:
crates/gsi/src/cert.rs:
crates/gsi/src/keys.rs:
