/root/repo/target/release/deps/exp_a3_giis_cache-2c8bf3f3588d60fc.d: crates/bench/src/bin/exp_a3_giis_cache.rs

/root/repo/target/release/deps/exp_a3_giis_cache-2c8bf3f3588d60fc: crates/bench/src/bin/exp_a3_giis_cache.rs

crates/bench/src/bin/exp_a3_giis_cache.rs:
