/root/repo/target/release/deps/exp_live_throughput-54d76080e249a766.d: crates/bench/src/bin/exp_live_throughput.rs

/root/repo/target/release/deps/exp_live_throughput-54d76080e249a766: crates/bench/src/bin/exp_live_throughput.rs

crates/bench/src/bin/exp_live_throughput.rs:
