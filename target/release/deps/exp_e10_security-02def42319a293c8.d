/root/repo/target/release/deps/exp_e10_security-02def42319a293c8.d: crates/bench/src/bin/exp_e10_security.rs

/root/repo/target/release/deps/exp_e10_security-02def42319a293c8: crates/bench/src/bin/exp_e10_security.rs

crates/bench/src/bin/exp_e10_security.rs:
