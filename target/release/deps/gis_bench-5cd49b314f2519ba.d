/root/repo/target/release/deps/gis_bench-5cd49b314f2519ba.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libgis_bench-5cd49b314f2519ba.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libgis_bench-5cd49b314f2519ba.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
