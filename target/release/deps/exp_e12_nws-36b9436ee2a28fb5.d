/root/repo/target/release/deps/exp_e12_nws-36b9436ee2a28fb5.d: crates/bench/src/bin/exp_e12_nws.rs

/root/repo/target/release/deps/exp_e12_nws-36b9436ee2a28fb5: crates/bench/src/bin/exp_e12_nws.rs

crates/bench/src/bin/exp_e12_nws.rs:
