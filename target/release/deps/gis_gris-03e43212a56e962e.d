/root/repo/target/release/deps/gis_gris-03e43212a56e962e.d: crates/gris/src/lib.rs crates/gris/src/archive.rs crates/gris/src/provider.rs crates/gris/src/providers.rs crates/gris/src/server.rs

/root/repo/target/release/deps/gis_gris-03e43212a56e962e: crates/gris/src/lib.rs crates/gris/src/archive.rs crates/gris/src/provider.rs crates/gris/src/providers.rs crates/gris/src/server.rs

crates/gris/src/lib.rs:
crates/gris/src/archive.rs:
crates/gris/src/provider.rs:
crates/gris/src/providers.rs:
crates/gris/src/server.rs:
