/root/repo/target/release/deps/bench_dit-cbc254dd2d077e44.d: crates/bench/benches/bench_dit.rs

/root/repo/target/release/deps/bench_dit-cbc254dd2d077e44: crates/bench/benches/bench_dit.rs

crates/bench/benches/bench_dit.rs:
