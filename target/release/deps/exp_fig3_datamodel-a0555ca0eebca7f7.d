/root/repo/target/release/deps/exp_fig3_datamodel-a0555ca0eebca7f7.d: crates/bench/src/bin/exp_fig3_datamodel.rs

/root/repo/target/release/deps/exp_fig3_datamodel-a0555ca0eebca7f7: crates/bench/src/bin/exp_fig3_datamodel.rs

crates/bench/src/bin/exp_fig3_datamodel.rs:
