/root/repo/target/release/deps/exp_a2_push_pull-179a2510d0aa52ac.d: crates/bench/src/bin/exp_a2_push_pull.rs

/root/repo/target/release/deps/exp_a2_push_pull-179a2510d0aa52ac: crates/bench/src/bin/exp_a2_push_pull.rs

crates/bench/src/bin/exp_a2_push_pull.rs:
