/root/repo/target/release/deps/exp_fig1_partition-07e1eb691e3f6d23.d: crates/bench/src/bin/exp_fig1_partition.rs

/root/repo/target/release/deps/exp_fig1_partition-07e1eb691e3f6d23: crates/bench/src/bin/exp_fig1_partition.rs

crates/bench/src/bin/exp_fig1_partition.rs:
