/root/repo/target/release/deps/exp_e6_failure_detection-cce221c2be669cb9.d: crates/bench/src/bin/exp_e6_failure_detection.rs

/root/repo/target/release/deps/exp_e6_failure_detection-cce221c2be669cb9: crates/bench/src/bin/exp_e6_failure_detection.rs

crates/bench/src/bin/exp_e6_failure_detection.rs:
