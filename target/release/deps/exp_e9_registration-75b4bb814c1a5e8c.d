/root/repo/target/release/deps/exp_e9_registration-75b4bb814c1a5e8c.d: crates/bench/src/bin/exp_e9_registration.rs

/root/repo/target/release/deps/exp_e9_registration-75b4bb814c1a5e8c: crates/bench/src/bin/exp_e9_registration.rs

crates/bench/src/bin/exp_e9_registration.rs:
