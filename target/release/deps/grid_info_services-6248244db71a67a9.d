/root/repo/target/release/deps/grid_info_services-6248244db71a67a9.d: src/lib.rs

/root/repo/target/release/deps/libgrid_info_services-6248244db71a67a9.rlib: src/lib.rs

/root/repo/target/release/deps/libgrid_info_services-6248244db71a67a9.rmeta: src/lib.rs

src/lib.rs:
