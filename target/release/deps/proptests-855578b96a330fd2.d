/root/repo/target/release/deps/proptests-855578b96a330fd2.d: crates/proto/tests/proptests.rs

/root/repo/target/release/deps/proptests-855578b96a330fd2: crates/proto/tests/proptests.rs

crates/proto/tests/proptests.rs:
