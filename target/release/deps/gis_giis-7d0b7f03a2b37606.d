/root/repo/target/release/deps/gis_giis-7d0b7f03a2b37606.d: crates/giis/src/lib.rs crates/giis/src/bloom.rs crates/giis/src/server.rs

/root/repo/target/release/deps/gis_giis-7d0b7f03a2b37606: crates/giis/src/lib.rs crates/giis/src/bloom.rs crates/giis/src/server.rs

crates/giis/src/lib.rs:
crates/giis/src/bloom.rs:
crates/giis/src/server.rs:
