/root/repo/target/release/deps/exp_fig2_architecture-318cd22a43647fe8.d: crates/bench/src/bin/exp_fig2_architecture.rs

/root/repo/target/release/deps/exp_fig2_architecture-318cd22a43647fe8: crates/bench/src/bin/exp_fig2_architecture.rs

crates/bench/src/bin/exp_fig2_architecture.rs:
