/root/repo/target/release/deps/serde-ea76a70e7bc50947.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-ea76a70e7bc50947.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-ea76a70e7bc50947.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
