/root/repo/target/release/deps/gis_giis-f21c442a352a03e2.d: crates/giis/src/lib.rs crates/giis/src/bloom.rs crates/giis/src/server.rs

/root/repo/target/release/deps/libgis_giis-f21c442a352a03e2.rlib: crates/giis/src/lib.rs crates/giis/src/bloom.rs crates/giis/src/server.rs

/root/repo/target/release/deps/libgis_giis-f21c442a352a03e2.rmeta: crates/giis/src/lib.rs crates/giis/src/bloom.rs crates/giis/src/server.rs

crates/giis/src/lib.rs:
crates/giis/src/bloom.rs:
crates/giis/src/server.rs:
