/root/repo/target/release/deps/gis_netsim-51b65debf14a1cfb.d: crates/netsim/src/lib.rs crates/netsim/src/rng.rs crates/netsim/src/sim.rs crates/netsim/src/time.rs

/root/repo/target/release/deps/libgis_netsim-51b65debf14a1cfb.rlib: crates/netsim/src/lib.rs crates/netsim/src/rng.rs crates/netsim/src/sim.rs crates/netsim/src/time.rs

/root/repo/target/release/deps/libgis_netsim-51b65debf14a1cfb.rmeta: crates/netsim/src/lib.rs crates/netsim/src/rng.rs crates/netsim/src/sim.rs crates/netsim/src/time.rs

crates/netsim/src/lib.rs:
crates/netsim/src/rng.rs:
crates/netsim/src/sim.rs:
crates/netsim/src/time.rs:
