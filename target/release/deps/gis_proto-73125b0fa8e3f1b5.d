/root/repo/target/release/deps/gis_proto-73125b0fa8e3f1b5.d: crates/proto/src/lib.rs crates/proto/src/grip.rs crates/proto/src/grrp.rs crates/proto/src/wire.rs

/root/repo/target/release/deps/gis_proto-73125b0fa8e3f1b5: crates/proto/src/lib.rs crates/proto/src/grip.rs crates/proto/src/grrp.rs crates/proto/src/wire.rs

crates/proto/src/lib.rs:
crates/proto/src/grip.rs:
crates/proto/src/grrp.rs:
crates/proto/src/wire.rs:
