/root/repo/target/release/deps/gis_baselines-9a7728e373673747.d: crates/baselines/src/lib.rs crates/baselines/src/mds1.rs crates/baselines/src/multicast.rs

/root/repo/target/release/deps/libgis_baselines-9a7728e373673747.rlib: crates/baselines/src/lib.rs crates/baselines/src/mds1.rs crates/baselines/src/multicast.rs

/root/repo/target/release/deps/libgis_baselines-9a7728e373673747.rmeta: crates/baselines/src/lib.rs crates/baselines/src/mds1.rs crates/baselines/src/multicast.rs

crates/baselines/src/lib.rs:
crates/baselines/src/mds1.rs:
crates/baselines/src/multicast.rs:
