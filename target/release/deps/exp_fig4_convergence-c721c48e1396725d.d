/root/repo/target/release/deps/exp_fig4_convergence-c721c48e1396725d.d: crates/bench/src/bin/exp_fig4_convergence.rs

/root/repo/target/release/deps/exp_fig4_convergence-c721c48e1396725d: crates/bench/src/bin/exp_fig4_convergence.rs

crates/bench/src/bin/exp_fig4_convergence.rs:
