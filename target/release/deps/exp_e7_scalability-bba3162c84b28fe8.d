/root/repo/target/release/deps/exp_e7_scalability-bba3162c84b28fe8.d: crates/bench/src/bin/exp_e7_scalability.rs

/root/repo/target/release/deps/exp_e7_scalability-bba3162c84b28fe8: crates/bench/src/bin/exp_e7_scalability.rs

crates/bench/src/bin/exp_e7_scalability.rs:
