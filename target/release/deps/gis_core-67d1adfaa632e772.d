/root/repo/target/release/deps/gis_core-67d1adfaa632e772.d: crates/core/src/lib.rs crates/core/src/actors.rs crates/core/src/bootstrap.rs crates/core/src/deploy.rs crates/core/src/live.rs crates/core/src/naming.rs crates/core/src/scenario.rs

/root/repo/target/release/deps/libgis_core-67d1adfaa632e772.rlib: crates/core/src/lib.rs crates/core/src/actors.rs crates/core/src/bootstrap.rs crates/core/src/deploy.rs crates/core/src/live.rs crates/core/src/naming.rs crates/core/src/scenario.rs

/root/repo/target/release/deps/libgis_core-67d1adfaa632e772.rmeta: crates/core/src/lib.rs crates/core/src/actors.rs crates/core/src/bootstrap.rs crates/core/src/deploy.rs crates/core/src/live.rs crates/core/src/naming.rs crates/core/src/scenario.rs

crates/core/src/lib.rs:
crates/core/src/actors.rs:
crates/core/src/bootstrap.rs:
crates/core/src/deploy.rs:
crates/core/src/live.rs:
crates/core/src/naming.rs:
crates/core/src/scenario.rs:
