/root/repo/target/release/deps/exp_e11_vo_scoping-c7d6d18ea45fa29f.d: crates/bench/src/bin/exp_e11_vo_scoping.rs

/root/repo/target/release/deps/exp_e11_vo_scoping-c7d6d18ea45fa29f: crates/bench/src/bin/exp_e11_vo_scoping.rs

crates/bench/src/bin/exp_e11_vo_scoping.rs:
