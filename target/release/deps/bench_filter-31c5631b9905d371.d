/root/repo/target/release/deps/bench_filter-31c5631b9905d371.d: crates/bench/benches/bench_filter.rs

/root/repo/target/release/deps/bench_filter-31c5631b9905d371: crates/bench/benches/bench_filter.rs

crates/bench/benches/bench_filter.rs:
