/root/repo/target/release/deps/exp_e8_cache_ttl-7ede87500d67b7e8.d: crates/bench/src/bin/exp_e8_cache_ttl.rs

/root/repo/target/release/deps/exp_e8_cache_ttl-7ede87500d67b7e8: crates/bench/src/bin/exp_e8_cache_ttl.rs

crates/bench/src/bin/exp_e8_cache_ttl.rs:
