/root/repo/target/release/deps/gis_nws-42f61a854010be3c.d: crates/nws/src/lib.rs crates/nws/src/forecast.rs crates/nws/src/sensor.rs crates/nws/src/system.rs

/root/repo/target/release/deps/libgis_nws-42f61a854010be3c.rlib: crates/nws/src/lib.rs crates/nws/src/forecast.rs crates/nws/src/sensor.rs crates/nws/src/system.rs

/root/repo/target/release/deps/libgis_nws-42f61a854010be3c.rmeta: crates/nws/src/lib.rs crates/nws/src/forecast.rs crates/nws/src/sensor.rs crates/nws/src/system.rs

crates/nws/src/lib.rs:
crates/nws/src/forecast.rs:
crates/nws/src/sensor.rs:
crates/nws/src/system.rs:
