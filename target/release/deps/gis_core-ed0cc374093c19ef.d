/root/repo/target/release/deps/gis_core-ed0cc374093c19ef.d: crates/core/src/lib.rs crates/core/src/actors.rs crates/core/src/bootstrap.rs crates/core/src/deploy.rs crates/core/src/live.rs crates/core/src/naming.rs crates/core/src/scenario.rs

/root/repo/target/release/deps/gis_core-ed0cc374093c19ef: crates/core/src/lib.rs crates/core/src/actors.rs crates/core/src/bootstrap.rs crates/core/src/deploy.rs crates/core/src/live.rs crates/core/src/naming.rs crates/core/src/scenario.rs

crates/core/src/lib.rs:
crates/core/src/actors.rs:
crates/core/src/bootstrap.rs:
crates/core/src/deploy.rs:
crates/core/src/live.rs:
crates/core/src/naming.rs:
crates/core/src/scenario.rs:
