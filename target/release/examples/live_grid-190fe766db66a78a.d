/root/repo/target/release/examples/live_grid-190fe766db66a78a.d: examples/live_grid.rs

/root/repo/target/release/examples/live_grid-190fe766db66a78a: examples/live_grid.rs

examples/live_grid.rs:
