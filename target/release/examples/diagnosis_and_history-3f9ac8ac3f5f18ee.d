/root/repo/target/release/examples/diagnosis_and_history-3f9ac8ac3f5f18ee.d: examples/diagnosis_and_history.rs

/root/repo/target/release/examples/diagnosis_and_history-3f9ac8ac3f5f18ee: examples/diagnosis_and_history.rs

examples/diagnosis_and_history.rs:
