/root/repo/target/release/examples/monitoring-7d7797fd013dc778.d: examples/monitoring.rs

/root/repo/target/release/examples/monitoring-7d7797fd013dc778: examples/monitoring.rs

examples/monitoring.rs:
