/root/repo/target/release/examples/quickstart-7c80ad4d94a661fc.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-7c80ad4d94a661fc: examples/quickstart.rs

examples/quickstart.rs:
