/root/repo/target/debug/libgis_netsim.rlib: /root/repo/crates/netsim/src/lib.rs /root/repo/crates/netsim/src/rng.rs /root/repo/crates/netsim/src/sim.rs /root/repo/crates/netsim/src/time.rs
