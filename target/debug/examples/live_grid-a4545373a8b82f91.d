/root/repo/target/debug/examples/live_grid-a4545373a8b82f91.d: examples/live_grid.rs

/root/repo/target/debug/examples/live_grid-a4545373a8b82f91: examples/live_grid.rs

examples/live_grid.rs:
