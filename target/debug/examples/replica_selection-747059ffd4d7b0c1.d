/root/repo/target/debug/examples/replica_selection-747059ffd4d7b0c1.d: examples/replica_selection.rs

/root/repo/target/debug/examples/replica_selection-747059ffd4d7b0c1: examples/replica_selection.rs

examples/replica_selection.rs:
