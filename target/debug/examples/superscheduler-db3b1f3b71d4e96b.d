/root/repo/target/debug/examples/superscheduler-db3b1f3b71d4e96b.d: examples/superscheduler.rs

/root/repo/target/debug/examples/superscheduler-db3b1f3b71d4e96b: examples/superscheduler.rs

examples/superscheduler.rs:
