/root/repo/target/debug/examples/secure_vo-6fb1dc3ef831504a.d: examples/secure_vo.rs

/root/repo/target/debug/examples/secure_vo-6fb1dc3ef831504a: examples/secure_vo.rs

examples/secure_vo.rs:
