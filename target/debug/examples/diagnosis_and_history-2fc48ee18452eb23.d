/root/repo/target/debug/examples/diagnosis_and_history-2fc48ee18452eb23.d: examples/diagnosis_and_history.rs

/root/repo/target/debug/examples/diagnosis_and_history-2fc48ee18452eb23: examples/diagnosis_and_history.rs

examples/diagnosis_and_history.rs:
