/root/repo/target/debug/examples/monitoring-48b2c6461a0d51a0.d: examples/monitoring.rs

/root/repo/target/debug/examples/monitoring-48b2c6461a0d51a0: examples/monitoring.rs

examples/monitoring.rs:
