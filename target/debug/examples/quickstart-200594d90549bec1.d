/root/repo/target/debug/examples/quickstart-200594d90549bec1.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-200594d90549bec1: examples/quickstart.rs

examples/quickstart.rs:
