/root/repo/target/debug/examples/partition_tolerance-1db1c66e420e30ac.d: examples/partition_tolerance.rs

/root/repo/target/debug/examples/partition_tolerance-1db1c66e420e30ac: examples/partition_tolerance.rs

examples/partition_tolerance.rs:
