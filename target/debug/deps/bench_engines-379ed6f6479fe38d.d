/root/repo/target/debug/deps/bench_engines-379ed6f6479fe38d.d: crates/bench/benches/bench_engines.rs

/root/repo/target/debug/deps/bench_engines-379ed6f6479fe38d: crates/bench/benches/bench_engines.rs

crates/bench/benches/bench_engines.rs:
