/root/repo/target/debug/deps/exp_e12_nws-a62b87340dd819c1.d: crates/bench/src/bin/exp_e12_nws.rs Cargo.toml

/root/repo/target/debug/deps/libexp_e12_nws-a62b87340dd819c1.rmeta: crates/bench/src/bin/exp_e12_nws.rs Cargo.toml

crates/bench/src/bin/exp_e12_nws.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
