/root/repo/target/debug/deps/gis_bench-48a25ae3ffd14cf5.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgis_bench-48a25ae3ffd14cf5.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgis_bench-48a25ae3ffd14cf5.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
