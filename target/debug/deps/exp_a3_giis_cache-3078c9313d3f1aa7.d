/root/repo/target/debug/deps/exp_a3_giis_cache-3078c9313d3f1aa7.d: crates/bench/src/bin/exp_a3_giis_cache.rs

/root/repo/target/debug/deps/exp_a3_giis_cache-3078c9313d3f1aa7: crates/bench/src/bin/exp_a3_giis_cache.rs

crates/bench/src/bin/exp_a3_giis_cache.rs:
