/root/repo/target/debug/deps/exp_fig2_architecture-27cfed0e619120b1.d: crates/bench/src/bin/exp_fig2_architecture.rs

/root/repo/target/debug/deps/exp_fig2_architecture-27cfed0e619120b1: crates/bench/src/bin/exp_fig2_architecture.rs

crates/bench/src/bin/exp_fig2_architecture.rs:
