/root/repo/target/debug/deps/exp_e10_security-f11f6b9ae5e697cd.d: crates/bench/src/bin/exp_e10_security.rs Cargo.toml

/root/repo/target/debug/deps/libexp_e10_security-f11f6b9ae5e697cd.rmeta: crates/bench/src/bin/exp_e10_security.rs Cargo.toml

crates/bench/src/bin/exp_e10_security.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
