/root/repo/target/debug/deps/bench_dit-5f4f511fa9ebcd7d.d: crates/bench/benches/bench_dit.rs

/root/repo/target/debug/deps/bench_dit-5f4f511fa9ebcd7d: crates/bench/benches/bench_dit.rs

crates/bench/benches/bench_dit.rs:
