/root/repo/target/debug/deps/exp_e13_degraded_mode-386bfb3458aa97c8.d: crates/bench/src/bin/exp_e13_degraded_mode.rs

/root/repo/target/debug/deps/exp_e13_degraded_mode-386bfb3458aa97c8: crates/bench/src/bin/exp_e13_degraded_mode.rs

crates/bench/src/bin/exp_e13_degraded_mode.rs:
