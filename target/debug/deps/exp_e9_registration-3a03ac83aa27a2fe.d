/root/repo/target/debug/deps/exp_e9_registration-3a03ac83aa27a2fe.d: crates/bench/src/bin/exp_e9_registration.rs

/root/repo/target/debug/deps/exp_e9_registration-3a03ac83aa27a2fe: crates/bench/src/bin/exp_e9_registration.rs

crates/bench/src/bin/exp_e9_registration.rs:
