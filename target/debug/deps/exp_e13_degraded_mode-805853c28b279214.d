/root/repo/target/debug/deps/exp_e13_degraded_mode-805853c28b279214.d: crates/bench/src/bin/exp_e13_degraded_mode.rs

/root/repo/target/debug/deps/exp_e13_degraded_mode-805853c28b279214: crates/bench/src/bin/exp_e13_degraded_mode.rs

crates/bench/src/bin/exp_e13_degraded_mode.rs:
