/root/repo/target/debug/deps/exp_fig1_partition-9d5568f34458cc2f.d: crates/bench/src/bin/exp_fig1_partition.rs

/root/repo/target/debug/deps/exp_fig1_partition-9d5568f34458cc2f: crates/bench/src/bin/exp_fig1_partition.rs

crates/bench/src/bin/exp_fig1_partition.rs:
