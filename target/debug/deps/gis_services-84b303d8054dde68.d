/root/repo/target/debug/deps/gis_services-84b303d8054dde68.d: crates/services/src/lib.rs crates/services/src/adapt.rs crates/services/src/broker.rs crates/services/src/diagnose.rs crates/services/src/heartbeat.rs crates/services/src/matchmaker.rs crates/services/src/replica.rs crates/services/src/troubleshoot.rs

/root/repo/target/debug/deps/gis_services-84b303d8054dde68: crates/services/src/lib.rs crates/services/src/adapt.rs crates/services/src/broker.rs crates/services/src/diagnose.rs crates/services/src/heartbeat.rs crates/services/src/matchmaker.rs crates/services/src/replica.rs crates/services/src/troubleshoot.rs

crates/services/src/lib.rs:
crates/services/src/adapt.rs:
crates/services/src/broker.rs:
crates/services/src/diagnose.rs:
crates/services/src/heartbeat.rs:
crates/services/src/matchmaker.rs:
crates/services/src/replica.rs:
crates/services/src/troubleshoot.rs:
