/root/repo/target/debug/deps/exp_e13_degraded_mode-576def5fd055fa0a.d: crates/bench/src/bin/exp_e13_degraded_mode.rs Cargo.toml

/root/repo/target/debug/deps/libexp_e13_degraded_mode-576def5fd055fa0a.rmeta: crates/bench/src/bin/exp_e13_degraded_mode.rs Cargo.toml

crates/bench/src/bin/exp_e13_degraded_mode.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
