/root/repo/target/debug/deps/exp_fig4_convergence-dad6f0878d012123.d: crates/bench/src/bin/exp_fig4_convergence.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig4_convergence-dad6f0878d012123.rmeta: crates/bench/src/bin/exp_fig4_convergence.rs Cargo.toml

crates/bench/src/bin/exp_fig4_convergence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
