/root/repo/target/debug/deps/exp_e7_scalability-d81ed74df2339630.d: crates/bench/src/bin/exp_e7_scalability.rs

/root/repo/target/debug/deps/exp_e7_scalability-d81ed74df2339630: crates/bench/src/bin/exp_e7_scalability.rs

crates/bench/src/bin/exp_e7_scalability.rs:
