/root/repo/target/debug/deps/gis_proto-35999d8ff302bbb7.d: crates/proto/src/lib.rs crates/proto/src/grip.rs crates/proto/src/grrp.rs crates/proto/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libgis_proto-35999d8ff302bbb7.rmeta: crates/proto/src/lib.rs crates/proto/src/grip.rs crates/proto/src/grrp.rs crates/proto/src/wire.rs Cargo.toml

crates/proto/src/lib.rs:
crates/proto/src/grip.rs:
crates/proto/src/grrp.rs:
crates/proto/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
