/root/repo/target/debug/deps/gis_core-ed7633c64e62979a.d: crates/core/src/lib.rs crates/core/src/actors.rs crates/core/src/bootstrap.rs crates/core/src/deploy.rs crates/core/src/live.rs crates/core/src/naming.rs crates/core/src/scenario.rs Cargo.toml

/root/repo/target/debug/deps/libgis_core-ed7633c64e62979a.rmeta: crates/core/src/lib.rs crates/core/src/actors.rs crates/core/src/bootstrap.rs crates/core/src/deploy.rs crates/core/src/live.rs crates/core/src/naming.rs crates/core/src/scenario.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/actors.rs:
crates/core/src/bootstrap.rs:
crates/core/src/deploy.rs:
crates/core/src/live.rs:
crates/core/src/naming.rs:
crates/core/src/scenario.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
