/root/repo/target/debug/deps/exp_e11_vo_scoping-e38ccd094f83bfde.d: crates/bench/src/bin/exp_e11_vo_scoping.rs Cargo.toml

/root/repo/target/debug/deps/libexp_e11_vo_scoping-e38ccd094f83bfde.rmeta: crates/bench/src/bin/exp_e11_vo_scoping.rs Cargo.toml

crates/bench/src/bin/exp_e11_vo_scoping.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
