/root/repo/target/debug/deps/proptests-a5319469f3315fca.d: crates/gsi/tests/proptests.rs

/root/repo/target/debug/deps/proptests-a5319469f3315fca: crates/gsi/tests/proptests.rs

crates/gsi/tests/proptests.rs:
