/root/repo/target/debug/deps/proptests-4349dd4dc3d20108.d: crates/proto/tests/proptests.rs

/root/repo/target/debug/deps/proptests-4349dd4dc3d20108: crates/proto/tests/proptests.rs

crates/proto/tests/proptests.rs:
