/root/repo/target/debug/deps/gis_giis-18e363e5d4309f8c.d: crates/giis/src/lib.rs crates/giis/src/bloom.rs crates/giis/src/server.rs

/root/repo/target/debug/deps/libgis_giis-18e363e5d4309f8c.rlib: crates/giis/src/lib.rs crates/giis/src/bloom.rs crates/giis/src/server.rs

/root/repo/target/debug/deps/libgis_giis-18e363e5d4309f8c.rmeta: crates/giis/src/lib.rs crates/giis/src/bloom.rs crates/giis/src/server.rs

crates/giis/src/lib.rs:
crates/giis/src/bloom.rs:
crates/giis/src/server.rs:
