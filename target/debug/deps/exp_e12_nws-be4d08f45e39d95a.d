/root/repo/target/debug/deps/exp_e12_nws-be4d08f45e39d95a.d: crates/bench/src/bin/exp_e12_nws.rs

/root/repo/target/debug/deps/exp_e12_nws-be4d08f45e39d95a: crates/bench/src/bin/exp_e12_nws.rs

crates/bench/src/bin/exp_e12_nws.rs:
