/root/repo/target/debug/deps/gis_baselines-7c4cee218c85b1ed.d: crates/baselines/src/lib.rs crates/baselines/src/mds1.rs crates/baselines/src/multicast.rs

/root/repo/target/debug/deps/libgis_baselines-7c4cee218c85b1ed.rlib: crates/baselines/src/lib.rs crates/baselines/src/mds1.rs crates/baselines/src/multicast.rs

/root/repo/target/debug/deps/libgis_baselines-7c4cee218c85b1ed.rmeta: crates/baselines/src/lib.rs crates/baselines/src/mds1.rs crates/baselines/src/multicast.rs

crates/baselines/src/lib.rs:
crates/baselines/src/mds1.rs:
crates/baselines/src/multicast.rs:
