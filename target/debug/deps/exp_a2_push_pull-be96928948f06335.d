/root/repo/target/debug/deps/exp_a2_push_pull-be96928948f06335.d: crates/bench/src/bin/exp_a2_push_pull.rs Cargo.toml

/root/repo/target/debug/deps/libexp_a2_push_pull-be96928948f06335.rmeta: crates/bench/src/bin/exp_a2_push_pull.rs Cargo.toml

crates/bench/src/bin/exp_a2_push_pull.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
