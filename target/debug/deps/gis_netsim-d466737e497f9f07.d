/root/repo/target/debug/deps/gis_netsim-d466737e497f9f07.d: crates/netsim/src/lib.rs crates/netsim/src/rng.rs crates/netsim/src/sim.rs crates/netsim/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libgis_netsim-d466737e497f9f07.rmeta: crates/netsim/src/lib.rs crates/netsim/src/rng.rs crates/netsim/src/sim.rs crates/netsim/src/time.rs Cargo.toml

crates/netsim/src/lib.rs:
crates/netsim/src/rng.rs:
crates/netsim/src/sim.rs:
crates/netsim/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
