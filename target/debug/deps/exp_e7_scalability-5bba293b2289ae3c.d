/root/repo/target/debug/deps/exp_e7_scalability-5bba293b2289ae3c.d: crates/bench/src/bin/exp_e7_scalability.rs Cargo.toml

/root/repo/target/debug/deps/libexp_e7_scalability-5bba293b2289ae3c.rmeta: crates/bench/src/bin/exp_e7_scalability.rs Cargo.toml

crates/bench/src/bin/exp_e7_scalability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
