/root/repo/target/debug/deps/exp_fig4_convergence-718ba4c82069117a.d: crates/bench/src/bin/exp_fig4_convergence.rs

/root/repo/target/debug/deps/exp_fig4_convergence-718ba4c82069117a: crates/bench/src/bin/exp_fig4_convergence.rs

crates/bench/src/bin/exp_fig4_convergence.rs:
