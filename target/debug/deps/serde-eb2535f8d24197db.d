/root/repo/target/debug/deps/serde-eb2535f8d24197db.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-eb2535f8d24197db.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
