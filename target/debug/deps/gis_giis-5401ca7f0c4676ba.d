/root/repo/target/debug/deps/gis_giis-5401ca7f0c4676ba.d: crates/giis/src/lib.rs crates/giis/src/bloom.rs crates/giis/src/server.rs

/root/repo/target/debug/deps/gis_giis-5401ca7f0c4676ba: crates/giis/src/lib.rs crates/giis/src/bloom.rs crates/giis/src/server.rs

crates/giis/src/lib.rs:
crates/giis/src/bloom.rs:
crates/giis/src/server.rs:
