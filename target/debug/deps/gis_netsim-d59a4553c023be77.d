/root/repo/target/debug/deps/gis_netsim-d59a4553c023be77.d: crates/netsim/src/lib.rs crates/netsim/src/rng.rs crates/netsim/src/sim.rs crates/netsim/src/time.rs

/root/repo/target/debug/deps/gis_netsim-d59a4553c023be77: crates/netsim/src/lib.rs crates/netsim/src/rng.rs crates/netsim/src/sim.rs crates/netsim/src/time.rs

crates/netsim/src/lib.rs:
crates/netsim/src/rng.rs:
crates/netsim/src/sim.rs:
crates/netsim/src/time.rs:
