/root/repo/target/debug/deps/exp_fig1_partition-57b4450661a7f0dc.d: crates/bench/src/bin/exp_fig1_partition.rs

/root/repo/target/debug/deps/exp_fig1_partition-57b4450661a7f0dc: crates/bench/src/bin/exp_fig1_partition.rs

crates/bench/src/bin/exp_fig1_partition.rs:
