/root/repo/target/debug/deps/exp_live_throughput-6927143f7f6b6d3b.d: crates/bench/src/bin/exp_live_throughput.rs

/root/repo/target/debug/deps/exp_live_throughput-6927143f7f6b6d3b: crates/bench/src/bin/exp_live_throughput.rs

crates/bench/src/bin/exp_live_throughput.rs:
