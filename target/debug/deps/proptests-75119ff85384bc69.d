/root/repo/target/debug/deps/proptests-75119ff85384bc69.d: crates/ldap/tests/proptests.rs

/root/repo/target/debug/deps/proptests-75119ff85384bc69: crates/ldap/tests/proptests.rs

crates/ldap/tests/proptests.rs:
