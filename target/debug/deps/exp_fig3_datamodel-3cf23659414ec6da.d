/root/repo/target/debug/deps/exp_fig3_datamodel-3cf23659414ec6da.d: crates/bench/src/bin/exp_fig3_datamodel.rs

/root/repo/target/debug/deps/exp_fig3_datamodel-3cf23659414ec6da: crates/bench/src/bin/exp_fig3_datamodel.rs

crates/bench/src/bin/exp_fig3_datamodel.rs:
