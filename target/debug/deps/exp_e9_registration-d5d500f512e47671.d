/root/repo/target/debug/deps/exp_e9_registration-d5d500f512e47671.d: crates/bench/src/bin/exp_e9_registration.rs

/root/repo/target/debug/deps/exp_e9_registration-d5d500f512e47671: crates/bench/src/bin/exp_e9_registration.rs

crates/bench/src/bin/exp_e9_registration.rs:
