/root/repo/target/debug/deps/exp_e10_security-13b816c84245c040.d: crates/bench/src/bin/exp_e10_security.rs

/root/repo/target/debug/deps/exp_e10_security-13b816c84245c040: crates/bench/src/bin/exp_e10_security.rs

crates/bench/src/bin/exp_e10_security.rs:
