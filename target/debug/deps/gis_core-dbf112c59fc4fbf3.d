/root/repo/target/debug/deps/gis_core-dbf112c59fc4fbf3.d: crates/core/src/lib.rs crates/core/src/actors.rs crates/core/src/bootstrap.rs crates/core/src/deploy.rs crates/core/src/live.rs crates/core/src/naming.rs crates/core/src/scenario.rs

/root/repo/target/debug/deps/libgis_core-dbf112c59fc4fbf3.rlib: crates/core/src/lib.rs crates/core/src/actors.rs crates/core/src/bootstrap.rs crates/core/src/deploy.rs crates/core/src/live.rs crates/core/src/naming.rs crates/core/src/scenario.rs

/root/repo/target/debug/deps/libgis_core-dbf112c59fc4fbf3.rmeta: crates/core/src/lib.rs crates/core/src/actors.rs crates/core/src/bootstrap.rs crates/core/src/deploy.rs crates/core/src/live.rs crates/core/src/naming.rs crates/core/src/scenario.rs

crates/core/src/lib.rs:
crates/core/src/actors.rs:
crates/core/src/bootstrap.rs:
crates/core/src/deploy.rs:
crates/core/src/live.rs:
crates/core/src/naming.rs:
crates/core/src/scenario.rs:
