/root/repo/target/debug/deps/gis_netsim-7b410bcab2c8a059.d: crates/netsim/src/lib.rs crates/netsim/src/rng.rs crates/netsim/src/sim.rs crates/netsim/src/time.rs

/root/repo/target/debug/deps/libgis_netsim-7b410bcab2c8a059.rlib: crates/netsim/src/lib.rs crates/netsim/src/rng.rs crates/netsim/src/sim.rs crates/netsim/src/time.rs

/root/repo/target/debug/deps/libgis_netsim-7b410bcab2c8a059.rmeta: crates/netsim/src/lib.rs crates/netsim/src/rng.rs crates/netsim/src/sim.rs crates/netsim/src/time.rs

crates/netsim/src/lib.rs:
crates/netsim/src/rng.rs:
crates/netsim/src/sim.rs:
crates/netsim/src/time.rs:
