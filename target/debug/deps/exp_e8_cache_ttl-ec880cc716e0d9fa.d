/root/repo/target/debug/deps/exp_e8_cache_ttl-ec880cc716e0d9fa.d: crates/bench/src/bin/exp_e8_cache_ttl.rs Cargo.toml

/root/repo/target/debug/deps/libexp_e8_cache_ttl-ec880cc716e0d9fa.rmeta: crates/bench/src/bin/exp_e8_cache_ttl.rs Cargo.toml

crates/bench/src/bin/exp_e8_cache_ttl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
