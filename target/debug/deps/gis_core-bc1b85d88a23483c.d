/root/repo/target/debug/deps/gis_core-bc1b85d88a23483c.d: crates/core/src/lib.rs crates/core/src/actors.rs crates/core/src/bootstrap.rs crates/core/src/deploy.rs crates/core/src/live.rs crates/core/src/naming.rs crates/core/src/scenario.rs

/root/repo/target/debug/deps/gis_core-bc1b85d88a23483c: crates/core/src/lib.rs crates/core/src/actors.rs crates/core/src/bootstrap.rs crates/core/src/deploy.rs crates/core/src/live.rs crates/core/src/naming.rs crates/core/src/scenario.rs

crates/core/src/lib.rs:
crates/core/src/actors.rs:
crates/core/src/bootstrap.rs:
crates/core/src/deploy.rs:
crates/core/src/live.rs:
crates/core/src/naming.rs:
crates/core/src/scenario.rs:
