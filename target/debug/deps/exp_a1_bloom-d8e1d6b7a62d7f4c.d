/root/repo/target/debug/deps/exp_a1_bloom-d8e1d6b7a62d7f4c.d: crates/bench/src/bin/exp_a1_bloom.rs Cargo.toml

/root/repo/target/debug/deps/libexp_a1_bloom-d8e1d6b7a62d7f4c.rmeta: crates/bench/src/bin/exp_a1_bloom.rs Cargo.toml

crates/bench/src/bin/exp_a1_bloom.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
