/root/repo/target/debug/deps/gis_nws-c08c67e5cd540c59.d: crates/nws/src/lib.rs crates/nws/src/forecast.rs crates/nws/src/sensor.rs crates/nws/src/system.rs Cargo.toml

/root/repo/target/debug/deps/libgis_nws-c08c67e5cd540c59.rmeta: crates/nws/src/lib.rs crates/nws/src/forecast.rs crates/nws/src/sensor.rs crates/nws/src/system.rs Cargo.toml

crates/nws/src/lib.rs:
crates/nws/src/forecast.rs:
crates/nws/src/sensor.rs:
crates/nws/src/system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
