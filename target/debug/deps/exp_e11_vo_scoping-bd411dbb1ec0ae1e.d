/root/repo/target/debug/deps/exp_e11_vo_scoping-bd411dbb1ec0ae1e.d: crates/bench/src/bin/exp_e11_vo_scoping.rs

/root/repo/target/debug/deps/exp_e11_vo_scoping-bd411dbb1ec0ae1e: crates/bench/src/bin/exp_e11_vo_scoping.rs

crates/bench/src/bin/exp_e11_vo_scoping.rs:
