/root/repo/target/debug/deps/exp_fig4_convergence-e423e6f95d56b163.d: crates/bench/src/bin/exp_fig4_convergence.rs

/root/repo/target/debug/deps/exp_fig4_convergence-e423e6f95d56b163: crates/bench/src/bin/exp_fig4_convergence.rs

crates/bench/src/bin/exp_fig4_convergence.rs:
