/root/repo/target/debug/deps/exp_a1_bloom-8c2ba479a7b89296.d: crates/bench/src/bin/exp_a1_bloom.rs

/root/repo/target/debug/deps/exp_a1_bloom-8c2ba479a7b89296: crates/bench/src/bin/exp_a1_bloom.rs

crates/bench/src/bin/exp_a1_bloom.rs:
