/root/repo/target/debug/deps/exp_fig5_hierarchy-0139097afc5d56d5.d: crates/bench/src/bin/exp_fig5_hierarchy.rs

/root/repo/target/debug/deps/exp_fig5_hierarchy-0139097afc5d56d5: crates/bench/src/bin/exp_fig5_hierarchy.rs

crates/bench/src/bin/exp_fig5_hierarchy.rs:
