/root/repo/target/debug/deps/exp_a2_push_pull-0d7280dba3cc41e2.d: crates/bench/src/bin/exp_a2_push_pull.rs

/root/repo/target/debug/deps/exp_a2_push_pull-0d7280dba3cc41e2: crates/bench/src/bin/exp_a2_push_pull.rs

crates/bench/src/bin/exp_a2_push_pull.rs:
