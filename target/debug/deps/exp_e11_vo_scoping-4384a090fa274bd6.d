/root/repo/target/debug/deps/exp_e11_vo_scoping-4384a090fa274bd6.d: crates/bench/src/bin/exp_e11_vo_scoping.rs

/root/repo/target/debug/deps/exp_e11_vo_scoping-4384a090fa274bd6: crates/bench/src/bin/exp_e11_vo_scoping.rs

crates/bench/src/bin/exp_e11_vo_scoping.rs:
