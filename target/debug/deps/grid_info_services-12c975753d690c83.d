/root/repo/target/debug/deps/grid_info_services-12c975753d690c83.d: src/lib.rs

/root/repo/target/debug/deps/libgrid_info_services-12c975753d690c83.rlib: src/lib.rs

/root/repo/target/debug/deps/libgrid_info_services-12c975753d690c83.rmeta: src/lib.rs

src/lib.rs:
