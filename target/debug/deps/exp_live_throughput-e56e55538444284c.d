/root/repo/target/debug/deps/exp_live_throughput-e56e55538444284c.d: crates/bench/src/bin/exp_live_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libexp_live_throughput-e56e55538444284c.rmeta: crates/bench/src/bin/exp_live_throughput.rs Cargo.toml

crates/bench/src/bin/exp_live_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
