/root/repo/target/debug/deps/exp_fig3_datamodel-9a87010d5beacbc7.d: crates/bench/src/bin/exp_fig3_datamodel.rs

/root/repo/target/debug/deps/exp_fig3_datamodel-9a87010d5beacbc7: crates/bench/src/bin/exp_fig3_datamodel.rs

crates/bench/src/bin/exp_fig3_datamodel.rs:
