/root/repo/target/debug/deps/gis_ldap-154ff203e778d23f.d: crates/ldap/src/lib.rs crates/ldap/src/codec.rs crates/ldap/src/dit.rs crates/ldap/src/dn.rs crates/ldap/src/entry.rs crates/ldap/src/error.rs crates/ldap/src/filter.rs crates/ldap/src/ldif.rs crates/ldap/src/schema.rs crates/ldap/src/url.rs

/root/repo/target/debug/deps/libgis_ldap-154ff203e778d23f.rlib: crates/ldap/src/lib.rs crates/ldap/src/codec.rs crates/ldap/src/dit.rs crates/ldap/src/dn.rs crates/ldap/src/entry.rs crates/ldap/src/error.rs crates/ldap/src/filter.rs crates/ldap/src/ldif.rs crates/ldap/src/schema.rs crates/ldap/src/url.rs

/root/repo/target/debug/deps/libgis_ldap-154ff203e778d23f.rmeta: crates/ldap/src/lib.rs crates/ldap/src/codec.rs crates/ldap/src/dit.rs crates/ldap/src/dn.rs crates/ldap/src/entry.rs crates/ldap/src/error.rs crates/ldap/src/filter.rs crates/ldap/src/ldif.rs crates/ldap/src/schema.rs crates/ldap/src/url.rs

crates/ldap/src/lib.rs:
crates/ldap/src/codec.rs:
crates/ldap/src/dit.rs:
crates/ldap/src/dn.rs:
crates/ldap/src/entry.rs:
crates/ldap/src/error.rs:
crates/ldap/src/filter.rs:
crates/ldap/src/ldif.rs:
crates/ldap/src/schema.rs:
crates/ldap/src/url.rs:
