/root/repo/target/debug/deps/exp_fig5_hierarchy-04d2de932806a2a9.d: crates/bench/src/bin/exp_fig5_hierarchy.rs

/root/repo/target/debug/deps/exp_fig5_hierarchy-04d2de932806a2a9: crates/bench/src/bin/exp_fig5_hierarchy.rs

crates/bench/src/bin/exp_fig5_hierarchy.rs:
