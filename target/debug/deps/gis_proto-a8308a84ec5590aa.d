/root/repo/target/debug/deps/gis_proto-a8308a84ec5590aa.d: crates/proto/src/lib.rs crates/proto/src/grip.rs crates/proto/src/grrp.rs crates/proto/src/wire.rs

/root/repo/target/debug/deps/libgis_proto-a8308a84ec5590aa.rlib: crates/proto/src/lib.rs crates/proto/src/grip.rs crates/proto/src/grrp.rs crates/proto/src/wire.rs

/root/repo/target/debug/deps/libgis_proto-a8308a84ec5590aa.rmeta: crates/proto/src/lib.rs crates/proto/src/grip.rs crates/proto/src/grrp.rs crates/proto/src/wire.rs

crates/proto/src/lib.rs:
crates/proto/src/grip.rs:
crates/proto/src/grrp.rs:
crates/proto/src/wire.rs:
