/root/repo/target/debug/deps/exp_e8_cache_ttl-5672d2b2a9815472.d: crates/bench/src/bin/exp_e8_cache_ttl.rs

/root/repo/target/debug/deps/exp_e8_cache_ttl-5672d2b2a9815472: crates/bench/src/bin/exp_e8_cache_ttl.rs

crates/bench/src/bin/exp_e8_cache_ttl.rs:
