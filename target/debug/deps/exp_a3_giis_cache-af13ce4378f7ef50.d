/root/repo/target/debug/deps/exp_a3_giis_cache-af13ce4378f7ef50.d: crates/bench/src/bin/exp_a3_giis_cache.rs Cargo.toml

/root/repo/target/debug/deps/libexp_a3_giis_cache-af13ce4378f7ef50.rmeta: crates/bench/src/bin/exp_a3_giis_cache.rs Cargo.toml

crates/bench/src/bin/exp_a3_giis_cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
