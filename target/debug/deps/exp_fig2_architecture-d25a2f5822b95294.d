/root/repo/target/debug/deps/exp_fig2_architecture-d25a2f5822b95294.d: crates/bench/src/bin/exp_fig2_architecture.rs

/root/repo/target/debug/deps/exp_fig2_architecture-d25a2f5822b95294: crates/bench/src/bin/exp_fig2_architecture.rs

crates/bench/src/bin/exp_fig2_architecture.rs:
