/root/repo/target/debug/deps/bench_bloom-2c15660c72e3f7ab.d: crates/bench/benches/bench_bloom.rs

/root/repo/target/debug/deps/bench_bloom-2c15660c72e3f7ab: crates/bench/benches/bench_bloom.rs

crates/bench/benches/bench_bloom.rs:
