/root/repo/target/debug/deps/gis_giis-930709a85d51a879.d: crates/giis/src/lib.rs crates/giis/src/bloom.rs crates/giis/src/server.rs Cargo.toml

/root/repo/target/debug/deps/libgis_giis-930709a85d51a879.rmeta: crates/giis/src/lib.rs crates/giis/src/bloom.rs crates/giis/src/server.rs Cargo.toml

crates/giis/src/lib.rs:
crates/giis/src/bloom.rs:
crates/giis/src/server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
