/root/repo/target/debug/deps/exp_a2_push_pull-a273e333f55ea8b4.d: crates/bench/src/bin/exp_a2_push_pull.rs

/root/repo/target/debug/deps/exp_a2_push_pull-a273e333f55ea8b4: crates/bench/src/bin/exp_a2_push_pull.rs

crates/bench/src/bin/exp_a2_push_pull.rs:
