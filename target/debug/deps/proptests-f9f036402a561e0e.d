/root/repo/target/debug/deps/proptests-f9f036402a561e0e.d: crates/giis/tests/proptests.rs

/root/repo/target/debug/deps/proptests-f9f036402a561e0e: crates/giis/tests/proptests.rs

crates/giis/tests/proptests.rs:
