/root/repo/target/debug/deps/grid_info_services-97c52493e066be43.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgrid_info_services-97c52493e066be43.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
