/root/repo/target/debug/deps/exp_e6_failure_detection-25a026cbe51c0f5b.d: crates/bench/src/bin/exp_e6_failure_detection.rs

/root/repo/target/debug/deps/exp_e6_failure_detection-25a026cbe51c0f5b: crates/bench/src/bin/exp_e6_failure_detection.rs

crates/bench/src/bin/exp_e6_failure_detection.rs:
