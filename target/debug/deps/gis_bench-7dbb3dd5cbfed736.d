/root/repo/target/debug/deps/gis_bench-7dbb3dd5cbfed736.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgis_bench-7dbb3dd5cbfed736.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
