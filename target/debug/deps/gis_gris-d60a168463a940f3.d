/root/repo/target/debug/deps/gis_gris-d60a168463a940f3.d: crates/gris/src/lib.rs crates/gris/src/archive.rs crates/gris/src/provider.rs crates/gris/src/providers.rs crates/gris/src/server.rs

/root/repo/target/debug/deps/gis_gris-d60a168463a940f3: crates/gris/src/lib.rs crates/gris/src/archive.rs crates/gris/src/provider.rs crates/gris/src/providers.rs crates/gris/src/server.rs

crates/gris/src/lib.rs:
crates/gris/src/archive.rs:
crates/gris/src/provider.rs:
crates/gris/src/providers.rs:
crates/gris/src/server.rs:
