/root/repo/target/debug/deps/proptests-df6bef611b9a9b75.d: crates/netsim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-df6bef611b9a9b75: crates/netsim/tests/proptests.rs

crates/netsim/tests/proptests.rs:
