/root/repo/target/debug/deps/services_and_runtimes-e027dc6b39074ee5.d: tests/services_and_runtimes.rs

/root/repo/target/debug/deps/services_and_runtimes-e027dc6b39074ee5: tests/services_and_runtimes.rs

tests/services_and_runtimes.rs:
