/root/repo/target/debug/deps/gis_ldap-093186d9f77be7b5.d: crates/ldap/src/lib.rs crates/ldap/src/codec.rs crates/ldap/src/dit.rs crates/ldap/src/dn.rs crates/ldap/src/entry.rs crates/ldap/src/error.rs crates/ldap/src/filter.rs crates/ldap/src/ldif.rs crates/ldap/src/schema.rs crates/ldap/src/url.rs Cargo.toml

/root/repo/target/debug/deps/libgis_ldap-093186d9f77be7b5.rmeta: crates/ldap/src/lib.rs crates/ldap/src/codec.rs crates/ldap/src/dit.rs crates/ldap/src/dn.rs crates/ldap/src/entry.rs crates/ldap/src/error.rs crates/ldap/src/filter.rs crates/ldap/src/ldif.rs crates/ldap/src/schema.rs crates/ldap/src/url.rs Cargo.toml

crates/ldap/src/lib.rs:
crates/ldap/src/codec.rs:
crates/ldap/src/dit.rs:
crates/ldap/src/dn.rs:
crates/ldap/src/entry.rs:
crates/ldap/src/error.rs:
crates/ldap/src/filter.rs:
crates/ldap/src/ldif.rs:
crates/ldap/src/schema.rs:
crates/ldap/src/url.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
