/root/repo/target/debug/deps/exp_fig1_partition-203127c21df05f69.d: crates/bench/src/bin/exp_fig1_partition.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig1_partition-203127c21df05f69.rmeta: crates/bench/src/bin/exp_fig1_partition.rs Cargo.toml

crates/bench/src/bin/exp_fig1_partition.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
