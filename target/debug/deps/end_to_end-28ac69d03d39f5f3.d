/root/repo/target/debug/deps/end_to_end-28ac69d03d39f5f3.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-28ac69d03d39f5f3: tests/end_to_end.rs

tests/end_to_end.rs:
