/root/repo/target/debug/deps/exp_a1_bloom-372170df076a9c89.d: crates/bench/src/bin/exp_a1_bloom.rs

/root/repo/target/debug/deps/exp_a1_bloom-372170df076a9c89: crates/bench/src/bin/exp_a1_bloom.rs

crates/bench/src/bin/exp_a1_bloom.rs:
