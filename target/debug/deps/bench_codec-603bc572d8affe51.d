/root/repo/target/debug/deps/bench_codec-603bc572d8affe51.d: crates/bench/benches/bench_codec.rs

/root/repo/target/debug/deps/bench_codec-603bc572d8affe51: crates/bench/benches/bench_codec.rs

crates/bench/benches/bench_codec.rs:
