/root/repo/target/debug/deps/gis_gris-37756b2aa9b40578.d: crates/gris/src/lib.rs crates/gris/src/archive.rs crates/gris/src/provider.rs crates/gris/src/providers.rs crates/gris/src/server.rs Cargo.toml

/root/repo/target/debug/deps/libgis_gris-37756b2aa9b40578.rmeta: crates/gris/src/lib.rs crates/gris/src/archive.rs crates/gris/src/provider.rs crates/gris/src/providers.rs crates/gris/src/server.rs Cargo.toml

crates/gris/src/lib.rs:
crates/gris/src/archive.rs:
crates/gris/src/provider.rs:
crates/gris/src/providers.rs:
crates/gris/src/server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
