/root/repo/target/debug/deps/exp_e7_scalability-a6f56ab2661ec4db.d: crates/bench/src/bin/exp_e7_scalability.rs

/root/repo/target/debug/deps/exp_e7_scalability-a6f56ab2661ec4db: crates/bench/src/bin/exp_e7_scalability.rs

crates/bench/src/bin/exp_e7_scalability.rs:
