/root/repo/target/debug/deps/gis_baselines-62ef18239571864e.d: crates/baselines/src/lib.rs crates/baselines/src/mds1.rs crates/baselines/src/multicast.rs

/root/repo/target/debug/deps/gis_baselines-62ef18239571864e: crates/baselines/src/lib.rs crates/baselines/src/mds1.rs crates/baselines/src/multicast.rs

crates/baselines/src/lib.rs:
crates/baselines/src/mds1.rs:
crates/baselines/src/multicast.rs:
