/root/repo/target/debug/deps/exp_e8_cache_ttl-faa0272f24cb63cc.d: crates/bench/src/bin/exp_e8_cache_ttl.rs

/root/repo/target/debug/deps/exp_e8_cache_ttl-faa0272f24cb63cc: crates/bench/src/bin/exp_e8_cache_ttl.rs

crates/bench/src/bin/exp_e8_cache_ttl.rs:
