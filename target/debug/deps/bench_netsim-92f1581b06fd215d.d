/root/repo/target/debug/deps/bench_netsim-92f1581b06fd215d.d: crates/bench/benches/bench_netsim.rs

/root/repo/target/debug/deps/bench_netsim-92f1581b06fd215d: crates/bench/benches/bench_netsim.rs

crates/bench/benches/bench_netsim.rs:
