/root/repo/target/debug/deps/bench_gsi-84e1c827406cceb0.d: crates/bench/benches/bench_gsi.rs

/root/repo/target/debug/deps/bench_gsi-84e1c827406cceb0: crates/bench/benches/bench_gsi.rs

crates/bench/benches/bench_gsi.rs:
