/root/repo/target/debug/deps/gis_nws-ca7132c721f744d1.d: crates/nws/src/lib.rs crates/nws/src/forecast.rs crates/nws/src/sensor.rs crates/nws/src/system.rs

/root/repo/target/debug/deps/gis_nws-ca7132c721f744d1: crates/nws/src/lib.rs crates/nws/src/forecast.rs crates/nws/src/sensor.rs crates/nws/src/system.rs

crates/nws/src/lib.rs:
crates/nws/src/forecast.rs:
crates/nws/src/sensor.rs:
crates/nws/src/system.rs:
