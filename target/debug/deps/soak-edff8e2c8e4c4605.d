/root/repo/target/debug/deps/soak-edff8e2c8e4c4605.d: tests/soak.rs

/root/repo/target/debug/deps/soak-edff8e2c8e4c4605: tests/soak.rs

tests/soak.rs:
