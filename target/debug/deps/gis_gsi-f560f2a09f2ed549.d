/root/repo/target/debug/deps/gis_gsi-f560f2a09f2ed549.d: crates/gsi/src/lib.rs crates/gsi/src/acl.rs crates/gsi/src/auth.rs crates/gsi/src/cert.rs crates/gsi/src/keys.rs

/root/repo/target/debug/deps/gis_gsi-f560f2a09f2ed549: crates/gsi/src/lib.rs crates/gsi/src/acl.rs crates/gsi/src/auth.rs crates/gsi/src/cert.rs crates/gsi/src/keys.rs

crates/gsi/src/lib.rs:
crates/gsi/src/acl.rs:
crates/gsi/src/auth.rs:
crates/gsi/src/cert.rs:
crates/gsi/src/keys.rs:
