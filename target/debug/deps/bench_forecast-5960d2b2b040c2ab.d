/root/repo/target/debug/deps/bench_forecast-5960d2b2b040c2ab.d: crates/bench/benches/bench_forecast.rs

/root/repo/target/debug/deps/bench_forecast-5960d2b2b040c2ab: crates/bench/benches/bench_forecast.rs

crates/bench/benches/bench_forecast.rs:
