/root/repo/target/debug/deps/exp_live_throughput-9aa8a90c867872b9.d: crates/bench/src/bin/exp_live_throughput.rs

/root/repo/target/debug/deps/exp_live_throughput-9aa8a90c867872b9: crates/bench/src/bin/exp_live_throughput.rs

crates/bench/src/bin/exp_live_throughput.rs:
