/root/repo/target/debug/deps/gis_gris-0363d1c50b66a9b0.d: crates/gris/src/lib.rs crates/gris/src/archive.rs crates/gris/src/provider.rs crates/gris/src/providers.rs crates/gris/src/server.rs

/root/repo/target/debug/deps/libgis_gris-0363d1c50b66a9b0.rlib: crates/gris/src/lib.rs crates/gris/src/archive.rs crates/gris/src/provider.rs crates/gris/src/providers.rs crates/gris/src/server.rs

/root/repo/target/debug/deps/libgis_gris-0363d1c50b66a9b0.rmeta: crates/gris/src/lib.rs crates/gris/src/archive.rs crates/gris/src/provider.rs crates/gris/src/providers.rs crates/gris/src/server.rs

crates/gris/src/lib.rs:
crates/gris/src/archive.rs:
crates/gris/src/provider.rs:
crates/gris/src/providers.rs:
crates/gris/src/server.rs:
