/root/repo/target/debug/deps/gis_bench-ba0db313bad71d48.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/gis_bench-ba0db313bad71d48: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
