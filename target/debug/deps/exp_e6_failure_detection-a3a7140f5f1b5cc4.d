/root/repo/target/debug/deps/exp_e6_failure_detection-a3a7140f5f1b5cc4.d: crates/bench/src/bin/exp_e6_failure_detection.rs

/root/repo/target/debug/deps/exp_e6_failure_detection-a3a7140f5f1b5cc4: crates/bench/src/bin/exp_e6_failure_detection.rs

crates/bench/src/bin/exp_e6_failure_detection.rs:
