/root/repo/target/debug/deps/exp_e12_nws-9e297b56018f0045.d: crates/bench/src/bin/exp_e12_nws.rs

/root/repo/target/debug/deps/exp_e12_nws-9e297b56018f0045: crates/bench/src/bin/exp_e12_nws.rs

crates/bench/src/bin/exp_e12_nws.rs:
