/root/repo/target/debug/deps/exp_e9_registration-d6c8804e945fe3c8.d: crates/bench/src/bin/exp_e9_registration.rs Cargo.toml

/root/repo/target/debug/deps/libexp_e9_registration-d6c8804e945fe3c8.rmeta: crates/bench/src/bin/exp_e9_registration.rs Cargo.toml

crates/bench/src/bin/exp_e9_registration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
