/root/repo/target/debug/deps/exp_e6_failure_detection-d8991ed34533f543.d: crates/bench/src/bin/exp_e6_failure_detection.rs Cargo.toml

/root/repo/target/debug/deps/libexp_e6_failure_detection-d8991ed34533f543.rmeta: crates/bench/src/bin/exp_e6_failure_detection.rs Cargo.toml

crates/bench/src/bin/exp_e6_failure_detection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
