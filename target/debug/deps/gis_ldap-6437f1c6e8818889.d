/root/repo/target/debug/deps/gis_ldap-6437f1c6e8818889.d: crates/ldap/src/lib.rs crates/ldap/src/codec.rs crates/ldap/src/dit.rs crates/ldap/src/dn.rs crates/ldap/src/entry.rs crates/ldap/src/error.rs crates/ldap/src/filter.rs crates/ldap/src/ldif.rs crates/ldap/src/schema.rs crates/ldap/src/url.rs

/root/repo/target/debug/deps/gis_ldap-6437f1c6e8818889: crates/ldap/src/lib.rs crates/ldap/src/codec.rs crates/ldap/src/dit.rs crates/ldap/src/dn.rs crates/ldap/src/entry.rs crates/ldap/src/error.rs crates/ldap/src/filter.rs crates/ldap/src/ldif.rs crates/ldap/src/schema.rs crates/ldap/src/url.rs

crates/ldap/src/lib.rs:
crates/ldap/src/codec.rs:
crates/ldap/src/dit.rs:
crates/ldap/src/dn.rs:
crates/ldap/src/entry.rs:
crates/ldap/src/error.rs:
crates/ldap/src/filter.rs:
crates/ldap/src/ldif.rs:
crates/ldap/src/schema.rs:
crates/ldap/src/url.rs:
