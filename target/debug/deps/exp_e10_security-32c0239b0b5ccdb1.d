/root/repo/target/debug/deps/exp_e10_security-32c0239b0b5ccdb1.d: crates/bench/src/bin/exp_e10_security.rs

/root/repo/target/debug/deps/exp_e10_security-32c0239b0b5ccdb1: crates/bench/src/bin/exp_e10_security.rs

crates/bench/src/bin/exp_e10_security.rs:
