/root/repo/target/debug/deps/bench_filter-411ba2cae9610d5c.d: crates/bench/benches/bench_filter.rs

/root/repo/target/debug/deps/bench_filter-411ba2cae9610d5c: crates/bench/benches/bench_filter.rs

crates/bench/benches/bench_filter.rs:
