/root/repo/target/debug/deps/bench_softstate-f74a71a6308f8325.d: crates/bench/benches/bench_softstate.rs

/root/repo/target/debug/deps/bench_softstate-f74a71a6308f8325: crates/bench/benches/bench_softstate.rs

crates/bench/benches/bench_softstate.rs:
