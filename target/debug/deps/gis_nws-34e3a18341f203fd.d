/root/repo/target/debug/deps/gis_nws-34e3a18341f203fd.d: crates/nws/src/lib.rs crates/nws/src/forecast.rs crates/nws/src/sensor.rs crates/nws/src/system.rs

/root/repo/target/debug/deps/libgis_nws-34e3a18341f203fd.rlib: crates/nws/src/lib.rs crates/nws/src/forecast.rs crates/nws/src/sensor.rs crates/nws/src/system.rs

/root/repo/target/debug/deps/libgis_nws-34e3a18341f203fd.rmeta: crates/nws/src/lib.rs crates/nws/src/forecast.rs crates/nws/src/sensor.rs crates/nws/src/system.rs

crates/nws/src/lib.rs:
crates/nws/src/forecast.rs:
crates/nws/src/sensor.rs:
crates/nws/src/system.rs:
