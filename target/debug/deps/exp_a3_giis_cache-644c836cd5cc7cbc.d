/root/repo/target/debug/deps/exp_a3_giis_cache-644c836cd5cc7cbc.d: crates/bench/src/bin/exp_a3_giis_cache.rs

/root/repo/target/debug/deps/exp_a3_giis_cache-644c836cd5cc7cbc: crates/bench/src/bin/exp_a3_giis_cache.rs

crates/bench/src/bin/exp_a3_giis_cache.rs:
