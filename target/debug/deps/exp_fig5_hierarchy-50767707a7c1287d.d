/root/repo/target/debug/deps/exp_fig5_hierarchy-50767707a7c1287d.d: crates/bench/src/bin/exp_fig5_hierarchy.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig5_hierarchy-50767707a7c1287d.rmeta: crates/bench/src/bin/exp_fig5_hierarchy.rs Cargo.toml

crates/bench/src/bin/exp_fig5_hierarchy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
