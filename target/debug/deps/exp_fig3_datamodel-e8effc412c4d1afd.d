/root/repo/target/debug/deps/exp_fig3_datamodel-e8effc412c4d1afd.d: crates/bench/src/bin/exp_fig3_datamodel.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig3_datamodel-e8effc412c4d1afd.rmeta: crates/bench/src/bin/exp_fig3_datamodel.rs Cargo.toml

crates/bench/src/bin/exp_fig3_datamodel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
