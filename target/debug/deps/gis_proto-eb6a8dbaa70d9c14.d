/root/repo/target/debug/deps/gis_proto-eb6a8dbaa70d9c14.d: crates/proto/src/lib.rs crates/proto/src/grip.rs crates/proto/src/grrp.rs crates/proto/src/wire.rs

/root/repo/target/debug/deps/gis_proto-eb6a8dbaa70d9c14: crates/proto/src/lib.rs crates/proto/src/grip.rs crates/proto/src/grrp.rs crates/proto/src/wire.rs

crates/proto/src/lib.rs:
crates/proto/src/grip.rs:
crates/proto/src/grrp.rs:
crates/proto/src/wire.rs:
