/root/repo/target/debug/deps/gis_services-3995d680af922967.d: crates/services/src/lib.rs crates/services/src/adapt.rs crates/services/src/broker.rs crates/services/src/diagnose.rs crates/services/src/heartbeat.rs crates/services/src/matchmaker.rs crates/services/src/replica.rs crates/services/src/troubleshoot.rs Cargo.toml

/root/repo/target/debug/deps/libgis_services-3995d680af922967.rmeta: crates/services/src/lib.rs crates/services/src/adapt.rs crates/services/src/broker.rs crates/services/src/diagnose.rs crates/services/src/heartbeat.rs crates/services/src/matchmaker.rs crates/services/src/replica.rs crates/services/src/troubleshoot.rs Cargo.toml

crates/services/src/lib.rs:
crates/services/src/adapt.rs:
crates/services/src/broker.rs:
crates/services/src/diagnose.rs:
crates/services/src/heartbeat.rs:
crates/services/src/matchmaker.rs:
crates/services/src/replica.rs:
crates/services/src/troubleshoot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
