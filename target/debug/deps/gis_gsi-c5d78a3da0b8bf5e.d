/root/repo/target/debug/deps/gis_gsi-c5d78a3da0b8bf5e.d: crates/gsi/src/lib.rs crates/gsi/src/acl.rs crates/gsi/src/auth.rs crates/gsi/src/cert.rs crates/gsi/src/keys.rs

/root/repo/target/debug/deps/libgis_gsi-c5d78a3da0b8bf5e.rlib: crates/gsi/src/lib.rs crates/gsi/src/acl.rs crates/gsi/src/auth.rs crates/gsi/src/cert.rs crates/gsi/src/keys.rs

/root/repo/target/debug/deps/libgis_gsi-c5d78a3da0b8bf5e.rmeta: crates/gsi/src/lib.rs crates/gsi/src/acl.rs crates/gsi/src/auth.rs crates/gsi/src/cert.rs crates/gsi/src/keys.rs

crates/gsi/src/lib.rs:
crates/gsi/src/acl.rs:
crates/gsi/src/auth.rs:
crates/gsi/src/cert.rs:
crates/gsi/src/keys.rs:
