/root/repo/target/debug/deps/gis_baselines-e6ffae7854d7baae.d: crates/baselines/src/lib.rs crates/baselines/src/mds1.rs crates/baselines/src/multicast.rs Cargo.toml

/root/repo/target/debug/deps/libgis_baselines-e6ffae7854d7baae.rmeta: crates/baselines/src/lib.rs crates/baselines/src/mds1.rs crates/baselines/src/multicast.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/mds1.rs:
crates/baselines/src/multicast.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
