/root/repo/target/debug/deps/grid_info_services-17a795c2cbe5dd4b.d: src/lib.rs

/root/repo/target/debug/deps/grid_info_services-17a795c2cbe5dd4b: src/lib.rs

src/lib.rs:
