/root/repo/target/debug/deps/gis_services-364532f95062bfd1.d: crates/services/src/lib.rs crates/services/src/adapt.rs crates/services/src/broker.rs crates/services/src/diagnose.rs crates/services/src/heartbeat.rs crates/services/src/matchmaker.rs crates/services/src/replica.rs crates/services/src/troubleshoot.rs

/root/repo/target/debug/deps/libgis_services-364532f95062bfd1.rlib: crates/services/src/lib.rs crates/services/src/adapt.rs crates/services/src/broker.rs crates/services/src/diagnose.rs crates/services/src/heartbeat.rs crates/services/src/matchmaker.rs crates/services/src/replica.rs crates/services/src/troubleshoot.rs

/root/repo/target/debug/deps/libgis_services-364532f95062bfd1.rmeta: crates/services/src/lib.rs crates/services/src/adapt.rs crates/services/src/broker.rs crates/services/src/diagnose.rs crates/services/src/heartbeat.rs crates/services/src/matchmaker.rs crates/services/src/replica.rs crates/services/src/troubleshoot.rs

crates/services/src/lib.rs:
crates/services/src/adapt.rs:
crates/services/src/broker.rs:
crates/services/src/diagnose.rs:
crates/services/src/heartbeat.rs:
crates/services/src/matchmaker.rs:
crates/services/src/replica.rs:
crates/services/src/troubleshoot.rs:
