/root/repo/target/debug/deps/gis_gsi-e56de85d9997929e.d: crates/gsi/src/lib.rs crates/gsi/src/acl.rs crates/gsi/src/auth.rs crates/gsi/src/cert.rs crates/gsi/src/keys.rs Cargo.toml

/root/repo/target/debug/deps/libgis_gsi-e56de85d9997929e.rmeta: crates/gsi/src/lib.rs crates/gsi/src/acl.rs crates/gsi/src/auth.rs crates/gsi/src/cert.rs crates/gsi/src/keys.rs Cargo.toml

crates/gsi/src/lib.rs:
crates/gsi/src/acl.rs:
crates/gsi/src/auth.rs:
crates/gsi/src/cert.rs:
crates/gsi/src/keys.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
