#!/usr/bin/env bash
# Full local gate: release build, workspace tests, clippy (deny warnings),
# and formatting. Run before every push; CI runs the same sequence.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> checking no build artifacts are git-tracked"
if git ls-files -- 'target/' '*/target/' | grep -q .; then
    echo "error: build artifacts under target/ are git-tracked:" >&2
    git ls-files -- 'target/' '*/target/' | head >&2
    exit 1
fi

echo "==> cargo build --release"
cargo build --release --offline --workspace

echo "==> cargo test (workspace)"
cargo test -q --offline --workspace

echo "==> exp_observability --smoke (instrumentation overhead gate)"
cargo build --release --offline -p gis-bench --bin exp_observability
./target/release/exp_observability --smoke

echo "==> exp_tcp_loopback --smoke (TCP wire gate: framed GRIP over 127.0.0.1)"
cargo build --release --offline -p gis-bench --bin exp_tcp_loopback
./target/release/exp_tcp_loopback --smoke

echo "==> exp_tcp_saturation --smoke (multiplexing gate: completeness, wire tax, WAN speedup)"
cargo build --release --offline -p gis-bench --bin exp_tcp_saturation
./target/release/exp_tcp_saturation --smoke

echo "==> exp_persistence --smoke (durability gate: kill matrix, crash recovery, restart budget)"
cargo build --release --offline -p gis-bench --bin exp_persistence
./target/release/exp_persistence --smoke

echo "==> exp_c10k --smoke (reactor gate: held connections vs transport threads)"
# The binary raises RLIMIT_NOFILE to the hard cap itself and skips with
# a warning (exit 0) on runners whose cap cannot hold the smallest row.
cargo build --release --offline -p gis-bench --bin exp_c10k
./target/release/exp_c10k --smoke

echo "==> exp_federation --smoke (federation gate: local reads, staleness, chaining speedup, bulk ingest)"
cargo build --release --offline -p gis-bench --bin exp_federation
./target/release/exp_federation --smoke

echo "==> exp_trust_matrix --smoke (wire security gate: §7 tiers, ACL tax, auth-fed breaker)"
cargo build --release --offline -p gis-bench --bin exp_trust_matrix
./target/release/exp_trust_matrix --smoke

echo "==> cargo clippy (deny warnings)"
cargo clippy --offline --workspace -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "All checks passed."
