#!/usr/bin/env bash
# Full local gate: release build, workspace tests, clippy (deny warnings),
# and formatting. Run before every push; CI runs the same sequence.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline --workspace

echo "==> cargo test (workspace)"
cargo test -q --offline --workspace

echo "==> cargo clippy (deny warnings)"
cargo clippy --offline --workspace -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "All checks passed."
