#!/usr/bin/env bash
# Runs the query-path benchmarks and collects their criterion estimates
# plus the live-runtime throughput sweep, the observability-overhead
# A/B, the channel-vs-TCP loopback comparison, the multiplexed
# saturation sweep, and the persistence restart timings into a single
# JSON snapshot (BENCH_PR10.json by default) for before/after
# comparison. Criterion mean estimates are in nanoseconds; live-runtime
# and tcp-loopback rows carry qps and p50/p99 latency in microseconds;
# the observability block carries the instrumented vs baseline
# throughput and overhead percentage; the saturation block carries
# conns x depth throughput on loopback and through the emulated WAN
# link; the persistence block carries million-entry snapshot-load and
# WAL-replay wall times plus the journal-recovery vs
# re-registration-storm comparison; the c10k block carries the
# held-connections sweep with server thread/RSS samples per row; the
# federation block carries the replicated-root local-read, staleness
# and chaining-speedup measurements from the 3-level netsim topology;
# the trust_matrix block carries the §7 tier costs over real sockets
# (per-connection handshake RTT and the identity-tier ACL filter tax).
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_PR10.json}"
LIVE_JSON="$(mktemp)"
OBS_JSON="$(mktemp)"
TCP_JSON="$(mktemp)"
SAT_JSON="$(mktemp)"
PERSIST_JSON="$(mktemp)"
C10K_JSON="$(mktemp)"
FED_JSON="$(mktemp)"
TRUST_JSON="$(mktemp)"
trap 'rm -f "$LIVE_JSON" "$OBS_JSON" "$TCP_JSON" "$SAT_JSON" "$PERSIST_JSON" "$C10K_JSON" "$FED_JSON" "$TRUST_JSON"' EXIT

for bench in bench_dit bench_filter bench_softstate; do
    echo "==> cargo bench --bench $bench"
    cargo bench --offline -p gis-bench --bench "$bench"
done

echo "==> exp_live_throughput (worker sweep)"
cargo build --release --offline -p gis-bench --bin exp_live_throughput
./target/release/exp_live_throughput --json "$LIVE_JSON" >/dev/null

echo "==> exp_observability (instrumentation overhead A/B)"
cargo build --release --offline -p gis-bench --bin exp_observability
./target/release/exp_observability --json "$OBS_JSON" >/dev/null

echo "==> exp_tcp_loopback (channel vs TCP wire on 127.0.0.1)"
cargo build --release --offline -p gis-bench --bin exp_tcp_loopback
./target/release/exp_tcp_loopback --json "$TCP_JSON" >/dev/null

echo "==> exp_tcp_saturation (conns x in-flight depth on the multiplexed wire)"
cargo build --release --offline -p gis-bench --bin exp_tcp_saturation
./target/release/exp_tcp_saturation --json "$SAT_JSON" >/dev/null

echo "==> exp_persistence (snapshot load + WAL replay at paper scale)"
cargo build --release --offline -p gis-bench --bin exp_persistence
./target/release/exp_persistence --json "$PERSIST_JSON" >/dev/null

echo "==> exp_c10k (held connections vs reactor transport threads)"
cargo build --release --offline -p gis-bench --bin exp_c10k
./target/release/exp_c10k --json "$C10K_JSON" >/dev/null
# On fd-constrained runners exp_c10k skips (exit 0) without writing json.
[ -s "$C10K_JSON" ] || echo '{"rows": [], "derived": {}}' > "$C10K_JSON"

echo "==> exp_federation (replicated roots over the 3-level netsim topology)"
cargo build --release --offline -p gis-bench --bin exp_federation
./target/release/exp_federation --json "$FED_JSON" >/dev/null

echo "==> exp_trust_matrix (the §7 trust tiers over real sockets)"
cargo build --release --offline -p gis-bench --bin exp_trust_matrix
./target/release/exp_trust_matrix --json "$TRUST_JSON" >/dev/null

echo "==> harvesting estimates into $OUT"
python3 - "$OUT" "$LIVE_JSON" "$OBS_JSON" "$TCP_JSON" "$SAT_JSON" "$PERSIST_JSON" "$C10K_JSON" "$FED_JSON" "$TRUST_JSON" <<'EOF'
import json, os, sys

root = "target/criterion"
snapshot = {}
for group in sorted(os.listdir(root)):
    gdir = os.path.join(root, group)
    if not os.path.isdir(gdir):
        continue
    for name in sorted(os.listdir(gdir)):
        est = os.path.join(gdir, name, "new", "estimates.json")
        if not os.path.isfile(est):
            continue
        with open(est) as f:
            data = json.load(f)
        snapshot[f"{group}/{name}"] = {
            "mean_ns": round(data["mean"]["point_estimate"], 2),
            "median_ns": round(data["median"]["point_estimate"], 2),
        }

def mean(key):
    return snapshot[key]["mean_ns"] if key in snapshot else None

# Headline ratios for the PR's acceptance criteria.
derived = {}
scan = mean("dit_deep/root_scan_unpinned")
host = mean("dit_deep/subtree_host_unpinned")
org = mean("dit_deep/subtree_org_unpinned")
if scan and host:
    derived["deep_scan_over_host_subtree"] = round(scan / host, 1)
if scan and org:
    derived["deep_scan_over_org_subtree"] = round(scan / org, 1)
s100 = mean("softstate/sweep_none_expired_100")
s10k = mean("softstate/sweep_none_expired_10000")
if s100 and s10k:
    derived["sweep_noop_10k_over_100"] = round(s10k / s100, 1)

with open(sys.argv[2]) as f:
    live = json.load(f)
with open(sys.argv[3]) as f:
    obs = json.load(f)
with open(sys.argv[4]) as f:
    tcp = json.load(f)
with open(sys.argv[5]) as f:
    sat = json.load(f)
with open(sys.argv[6]) as f:
    persist = json.load(f)
with open(sys.argv[7]) as f:
    c10k = json.load(f)
with open(sys.argv[8]) as f:
    fed = json.load(f)
with open(sys.argv[9]) as f:
    trust = json.load(f)

# Worker-scaling headlines: pooled throughput relative to one worker,
# and 1-worker tail latency relative to the single-threaded owner loop.
by_workers = {
    row["workers"]: row
    for row in live["runs"]
    if row["workload"] == "worker_sweep"
}
if 1 in by_workers and 4 in by_workers:
    derived["live_qps_4_workers_over_1"] = round(
        by_workers[4]["qps"] / by_workers[1]["qps"], 2
    )
if 0 in by_workers and 1 in by_workers:
    derived["live_p99_1_worker_over_owner_loop"] = round(
        by_workers[1]["p99_us"] / by_workers[0]["p99_us"], 2
    )
derived["observability_overhead_pct"] = obs["overhead_pct"]

# Wire tax: channel throughput over TCP-loopback throughput, per
# workload — how much the real socket path costs on one machine.
by_wire = {
    (row["transport"], row["workload"]): row for row in tcp["runs"]
}
for workload in ("direct_lookup", "chained_discovery"):
    chan = by_wire.get(("channel", workload))
    sock = by_wire.get(("tcp", workload))
    if chan and sock and sock["qps"]:
        derived[f"tcp_wire_tax_{workload}"] = round(
            chan["qps"] / sock["qps"], 2
        )

# Multiplexing headlines: depth-8 vs depth-1 on one connection through
# the emulated WAN link, and the best loopback wire tax a single
# pipelined connection achieves.
for key in ("mux_speedup_depth8", "mux_speedup_depth32",
            "best_single_conn_wire_tax"):
    if key in sat.get("derived", {}):
        derived[key] = round(sat["derived"][key], 2)

# Persistence headlines: restart wall times at paper scale, and how
# many times cheaper journal recovery is than the (zero-network,
# flattered) re-registration storm rebuilding the same state.
derived["snapshot_load_s_1m_entries"] = persist["snapshot_load_s"]
derived["wal_replay_s_20k_records"] = persist["wal_replay_s"]
if persist.get("journal_recover_ms"):
    derived["storm_over_journal_recovery"] = round(
        persist["storm_rebuild_ms"] / persist["journal_recover_ms"], 1
    )

# Reactor headlines: the largest fully-answered held-connection row and
# the server's OS thread count while holding it — the O(shards) claim.
for key in ("c10k_max_conns", "threads_at_10k"):
    if key in c10k.get("derived", {}):
        derived[key] = c10k["derived"][key]

# Federation headlines: a replicated root answers from its own DIT
# (local-read cost and end-to-end speedup over per-query chaining)
# while the p99 replica age stays inside the pull budget.
derived["fed_local_read_us"] = fed["fed_local_read_us"]
derived["fed_staleness_p99_ms"] = fed["fed_staleness_p99_ms"]
derived["fed_speedup_vs_chaining"] = fed["fed_speedup_vs_chaining"]

# Wire-security headlines: the one-off mutual-auth handshake RTT and
# the steady-state cost of identity-tier ACL redaction on the query
# path (gated <10% or inside the loopback noise floor by check.sh).
derived["handshake_rtt_us"] = trust["handshake_rtt_us"]
derived["acl_filter_tax"] = trust["acl_filter_tax"]

out = sys.argv[1]
with open(out, "w") as f:
    json.dump(
        {
            "benchmarks": snapshot,
            "derived": derived,
            "live_runtime": live,
            "observability": obs,
            "tcp_loopback": tcp,
            "tcp_saturation": sat,
            "persistence": persist,
            "c10k": c10k,
            "federation": fed,
            "trust_matrix": trust,
        },
        f,
        indent=2,
        sort_keys=True,
    )
    f.write("\n")
print(f"wrote {out} ({len(snapshot)} benchmarks, "
      f"{len(live['runs'])} live-runtime rows)")
EOF
