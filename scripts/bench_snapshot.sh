#!/usr/bin/env bash
# Runs the query-path benchmarks and collects their criterion estimates
# into a single JSON snapshot (BENCH_PR1.json) for before/after
# comparison. Mean estimates are in nanoseconds.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_PR1.json}"

for bench in bench_dit bench_filter bench_softstate; do
    echo "==> cargo bench --bench $bench"
    cargo bench --offline -p gis-bench --bench "$bench"
done

echo "==> harvesting estimates into $OUT"
python3 - "$OUT" <<'EOF'
import json, os, sys

root = "target/criterion"
snapshot = {}
for group in sorted(os.listdir(root)):
    gdir = os.path.join(root, group)
    if not os.path.isdir(gdir):
        continue
    for name in sorted(os.listdir(gdir)):
        est = os.path.join(gdir, name, "new", "estimates.json")
        if not os.path.isfile(est):
            continue
        with open(est) as f:
            data = json.load(f)
        snapshot[f"{group}/{name}"] = {
            "mean_ns": round(data["mean"]["point_estimate"], 2),
            "median_ns": round(data["median"]["point_estimate"], 2),
        }

def mean(key):
    return snapshot[key]["mean_ns"] if key in snapshot else None

# Headline ratios for the PR's acceptance criteria.
derived = {}
scan = mean("dit_deep/root_scan_unpinned")
host = mean("dit_deep/subtree_host_unpinned")
org = mean("dit_deep/subtree_org_unpinned")
if scan and host:
    derived["deep_scan_over_host_subtree"] = round(scan / host, 1)
if scan and org:
    derived["deep_scan_over_org_subtree"] = round(scan / org, 1)
s100 = mean("softstate/sweep_none_expired_100")
s10k = mean("softstate/sweep_none_expired_10000")
if s100 and s10k:
    derived["sweep_noop_10k_over_100"] = round(s10k / s100, 1)

out = sys.argv[1]
with open(out, "w") as f:
    json.dump({"benchmarks": snapshot, "derived": derived}, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out} ({len(snapshot)} benchmarks)")
EOF
