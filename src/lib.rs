//! Umbrella crate for the MDS-2 Grid Information Services reproduction.
//!
//! Re-exports every workspace crate under one root so examples and
//! integration tests can use a single dependency. See `README.md` for the
//! architecture overview and `DESIGN.md` for the system inventory.

pub use gis_baselines as baselines;
pub use gis_core as core;
pub use gis_giis as giis;
pub use gis_gris as gris;
pub use gis_gsi as gsi;
pub use gis_ldap as ldap;
pub use gis_netsim as netsim;
pub use gis_nws as nws;
pub use gis_proto as proto;
pub use gis_services as services;
pub use gis_store as store;
