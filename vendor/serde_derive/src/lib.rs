//! Offline stand-in for `serde_derive`.
//!
//! Nothing in this workspace actually serializes through serde today —
//! the derives are forward-looking annotations — so in the network-less
//! build environment the derive macros simply emit no code. The `serde`
//! helper attribute is declared so `#[serde(...)]` annotations remain
//! legal.

use proc_macro::TokenStream;

/// Derives a (no-op) `Serialize` implementation.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derives a (no-op) `Deserialize` implementation.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
