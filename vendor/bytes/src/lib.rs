//! Offline stand-in for the `bytes` crate: the `Bytes` / `BytesMut` /
//! `BufMut` surface the workspace's TLV codecs and frame decoder use.
//!
//! `BytesMut` is a readable window onto a refcounted allocation:
//!
//! * [`split_to`](BytesMut::split_to) / [`freeze`](BytesMut::freeze)
//!   hand out [`Bytes`] views that **share** the allocation — no copy,
//!   no memmove of the remainder;
//! * [`advance`](BytesMut::advance) consumes from the front by moving
//!   the window start;
//! * appending ([`extend_from_slice`](BytesMut::extend_from_slice))
//!   mutates in place while the allocation is uniquely owned, and
//!   copies only the *remaining* window (typically a partial frame, not
//!   everything ever received) into a fresh allocation when split-off
//!   slices still hold the old one alive.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Growable byte buffer: a uniquely-writable window over a refcounted
/// allocation that [`Bytes`] views may share.
#[derive(Debug, Clone)]
pub struct BytesMut {
    data: Arc<Vec<u8>>,
    /// Start of the readable window within `data`; bytes before it have
    /// been consumed (`advance`) or split off (`split_to`).
    start: usize,
    /// End of the readable window. Equal to `data.len()` for an "open"
    /// buffer that can append in place; less for a bounded split-off
    /// front, which reallocates on its first append.
    end: usize,
}

impl Default for BytesMut {
    fn default() -> Self {
        BytesMut {
            data: Arc::new(Vec::new()),
            start: 0,
            end: 0,
        }
    }
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Arc::new(Vec::with_capacity(cap)),
            start: 0,
            end: 0,
        }
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self[..].to_vec()
    }

    /// Number of readable bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when no bytes are readable.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clears the buffer. Retains capacity when the allocation is not
    /// shared with split-off [`Bytes`].
    pub fn clear(&mut self) {
        self.start = 0;
        self.end = 0;
        if let Some(v) = Arc::get_mut(&mut self.data) {
            v.clear();
        } else {
            self.data = Arc::new(Vec::new());
        }
    }

    /// Shortens the readable window to `len` bytes (no-op if already
    /// shorter).
    pub fn truncate(&mut self, len: usize) {
        if len >= self.len() {
            return;
        }
        self.end = self.start + len;
        if self.end == 0 || Arc::strong_count(&self.data) == 1 {
            if let Some(v) = Arc::get_mut(&mut self.data) {
                v.truncate(self.end);
            }
        }
    }

    /// Appends a slice of bytes. In place while the allocation is
    /// uniquely owned and the window reaches its end; otherwise the
    /// remaining window (only) is copied into a fresh allocation first.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        if self.end == self.data.len() {
            if let Some(v) = Arc::get_mut(&mut self.data) {
                v.extend_from_slice(s);
                self.end = v.len();
                return;
            }
        }
        let mut fresh = Vec::with_capacity(self.len() + s.len());
        fresh.extend_from_slice(&self.data[self.start..self.end]);
        fresh.extend_from_slice(s);
        self.start = 0;
        self.end = fresh.len();
        self.data = Arc::new(fresh);
    }

    /// Consume `n` bytes from the front of the window without moving or
    /// copying anything.
    ///
    /// # Panics
    /// If `n` exceeds the readable length.
    pub fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        self.start += n;
    }

    /// Split off the first `n` bytes as a [`BytesMut`] sharing this
    /// allocation; `self` keeps the remainder without copying it.
    ///
    /// # Panics
    /// If `n` exceeds the readable length.
    pub fn split_to(&mut self, n: usize) -> BytesMut {
        assert!(n <= self.len(), "split_to past end of buffer");
        let front = BytesMut {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + n,
        };
        self.start += n;
        front
    }

    /// Split off the entire readable window (equivalent to
    /// `split_to(self.len())`).
    pub fn split(&mut self) -> BytesMut {
        self.split_to(self.len())
    }

    /// Freeze into an immutable [`Bytes`] view of the readable window,
    /// sharing the allocation.
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            start: self.start,
            len: self.end - self.start,
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        // Writable access requires unique ownership; clone the window
        // out when split-off views still share the allocation.
        if Arc::get_mut(&mut self.data).is_none() {
            let window = self.data[self.start..self.end].to_vec();
            self.start = 0;
            self.end = window.len();
            self.data = Arc::new(window);
        }
        let (start, end) = (self.start, self.end);
        let v = Arc::get_mut(&mut self.data).expect("just made unique");
        &mut v[start..end]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for BytesMut {
    fn eq(&self, other: &BytesMut) -> bool {
        self[..] == other[..]
    }
}

impl Eq for BytesMut {}

impl std::hash::Hash for BytesMut {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        if b.start == 0 && b.end == b.data.len() {
            match Arc::try_unwrap(b.data) {
                Ok(v) => return v,
                Err(shared) => return shared[..].to_vec(),
            }
        }
        b.data[b.start..b.end].to_vec()
    }
}

/// Immutable, cheaply cloneable view of a refcounted byte allocation.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    len: usize,
}

impl Bytes {
    /// Empty view.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copy a slice into a fresh allocation.
    pub fn copy_from_slice(s: &[u8]) -> Bytes {
        Bytes {
            data: Arc::new(s.to_vec()),
            start: 0,
            len: s.len(),
        }
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Narrow to a sub-range of this view (sharing the allocation).
    ///
    /// # Panics
    /// If the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len);
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            len: range.end - range.start,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.start + self.len]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let len = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            len,
        }
    }
}

/// Byte-sink trait; implemented for [`BytesMut`].
pub trait BufMut {
    /// Appends a single byte.
    fn put_u8(&mut self, b: u8);
    /// Appends a slice of bytes.
    fn put_slice(&mut self, s: &[u8]);
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, b: u8) {
        self.extend_from_slice(&[b]);
    }

    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_to_shares_the_allocation() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"hello world");
        let front = b.split_to(5).freeze();
        assert_eq!(&front[..], b"hello");
        assert_eq!(&b[..], b" world");
        // Front and remainder come from the same allocation.
        let end = front.as_ptr() as usize + front.len();
        assert_eq!(end, b.as_ptr() as usize);
    }

    #[test]
    fn advance_consumes_without_copying() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"abcdef");
        let before = b.as_ptr() as usize;
        b.advance(2);
        assert_eq!(&b[..], b"cdef");
        assert_eq!(b.as_ptr() as usize, before + 2);
    }

    #[test]
    fn extend_while_shared_copies_only_the_window() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"0123456789");
        let kept = b.split_to(8).freeze(); // allocation now shared
        b.extend_from_slice(b"AB");
        assert_eq!(&b[..], b"89AB");
        assert_eq!(&kept[..], b"01234567", "split-off view unaffected");
    }

    #[test]
    fn freeze_and_slice() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"abcdef");
        let all = b.freeze();
        let mid = all.slice(2..5);
        assert_eq!(&mid[..], b"cde");
        assert_eq!(mid.as_ptr() as usize, all.as_ptr() as usize + 2);
    }

    #[test]
    fn truncate_and_deref_mut_respect_sharing() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"abcdef");
        let frozen = b.clone().freeze();
        b.truncate(3);
        assert_eq!(&b[..], b"abc");
        b[0] = b'X';
        assert_eq!(&b[..], b"Xbc");
        assert_eq!(&frozen[..], b"abcdef", "shared view never mutated");
    }
}
