//! Offline stand-in for the `bytes` crate: exactly the `BytesMut` /
//! `BufMut` surface the workspace's TLV codecs use, backed by `Vec<u8>`.

use std::ops::{Deref, DerefMut};

/// Growable byte buffer backed by a `Vec<u8>`.
#[derive(Debug, Default, Clone, PartialEq, Eq, Hash)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self { inner: Vec::new() }
    }

    /// Creates an empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Clears the buffer, retaining capacity.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Shortens the buffer to `len` bytes (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        self.inner.truncate(len);
    }

    /// Appends a slice of bytes.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.inner.extend_from_slice(s);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.inner
    }
}

/// Byte-sink trait; implemented for [`BytesMut`].
pub trait BufMut {
    /// Appends a single byte.
    fn put_u8(&mut self, b: u8);
    /// Appends a slice of bytes.
    fn put_slice(&mut self, s: &[u8]);
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, b: u8) {
        self.inner.push(b);
    }

    fn put_slice(&mut self, s: &[u8]) {
        self.inner.extend_from_slice(s);
    }
}
