//! Offline stand-in for `serde`.
//!
//! The workspace imports `serde::{Serialize, Deserialize}` purely as
//! derive annotations; no serializer ever runs. This stub provides the
//! trait names (empty marker traits) and re-exports the no-op derive
//! macros from the companion `serde_derive` stub so `#[derive(...)]`
//! attributes resolve.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
