//! Option strategies (`prop::option::of`).

use crate::rng::TestRng;
use crate::strategy::{Rejection, Strategy};

/// Strategy for `Option<T>`: even odds of `None` and `Some`.
pub struct OptionStrategy<S> {
    inner: S,
}

/// Generates `None` or `Some` of a value from `inner`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn try_gen(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection> {
        if rng.next_bool() {
            Ok(Some(self.inner.try_gen(rng)?))
        } else {
            Ok(None)
        }
    }
}
