//! Boolean strategies (`prop::bool::ANY`).

use crate::rng::TestRng;
use crate::strategy::{Rejection, Strategy};

/// Strategy type behind [`ANY`].
#[derive(Debug, Clone, Copy)]
pub struct BoolAny;

/// Fair coin-flip strategy.
pub const ANY: BoolAny = BoolAny;

impl Strategy for BoolAny {
    type Value = bool;
    fn try_gen(&self, rng: &mut TestRng) -> Result<bool, Rejection> {
        Ok(rng.next_bool())
    }
}
