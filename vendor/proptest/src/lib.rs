//! Offline stand-in for `proptest`.
//!
//! A real (if miniature) property-testing engine: deterministic PRNG
//! seeded per test, strategy combinators (`prop_map`, `prop_filter`,
//! `prop_recursive`, tuples, ranges, regex-subset strings, collections)
//! and a case runner honouring `ProptestConfig::with_cases`. It covers
//! the API surface this workspace's test suites use; shrinking is not
//! implemented — failures report the generated inputs instead.

pub mod arbitrary;
pub mod bool_any;
pub mod collection;
pub mod option;
pub mod rng;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Namespaced strategies (`prop::collection::vec`, `prop::option::of`,
/// `prop::bool::ANY`), mirroring proptest's module layout.
pub mod prop {
    pub use crate::bool_any as bool;
    pub use crate::collection;
    pub use crate::option;
}

/// Common imports for test modules.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Fails the current case (with an optional formatted message) when the
/// condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case when the two values are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Fails the current case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Discards the current case when the condition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[allow(unreachable_code, unused_mut)]
        fn $name() {
            let config = $cfg;
            let strategies = ($($strat,)+);
            $crate::test_runner::run(
                &config,
                concat!(module_path!(), "::", stringify!($name)),
                |rng| {
                    let generated = match $crate::strategy::Strategy::try_gen(&strategies, rng) {
                        ::std::result::Result::Ok(v) => v,
                        ::std::result::Result::Err(rej) => {
                            return ::std::result::Result::Err(
                                $crate::test_runner::TestCaseError::Reject(rej.0),
                            )
                        }
                    };
                    let repr = format!("{:?}", generated);
                    let ($($pat,)+) = generated;
                    let outcome = (move || -> ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    outcome.map_err(|e| match e {
                        $crate::test_runner::TestCaseError::Fail(msg) => {
                            $crate::test_runner::TestCaseError::Fail(
                                format!("{msg}\n  inputs: {repr}"),
                            )
                        }
                        reject => reject,
                    })
                },
            );
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}
