//! Deterministic PRNG for test-case generation (splitmix64, seeded from
//! the fully-qualified test name so runs are reproducible).

/// Deterministic generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary name via FNV-1a.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h | 1 }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`. `n` must be non-zero.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Fair coin flip.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}
