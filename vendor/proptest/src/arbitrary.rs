//! `any::<T>()` strategies for primitive types.

use crate::rng::TestRng;
use crate::strategy::{Rejection, Strategy};
use std::fmt;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized + fmt::Debug {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_bool()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn try_gen(&self, rng: &mut TestRng) -> Result<T, Rejection> {
        Ok(T::arbitrary(rng))
    }
}
