//! The case runner driving `proptest!` blocks.

use crate::rng::TestRng;

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Ceiling on discarded cases before the run aborts.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

/// Outcome of a single failing or discarded case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property did not hold.
    Fail(String),
    /// The case was discarded (`prop_assume!` / filter exhaustion).
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        Self::Reject(msg.into())
    }
}

/// Runs `case` until `config.cases` successes, panicking on the first
/// failure. Generation is deterministic per test name.
pub fn run<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::from_name(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(why)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!("{name}: too many rejected cases (last reason: {why})");
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: property failed after {passed} passing case(s)\n{msg}");
            }
        }
    }
}
