//! The `Strategy` trait and core combinators: map, filter, recursion,
//! boxing, unions, numeric ranges, tuples and `Just`.

use crate::rng::TestRng;
use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// Why a generation attempt was discarded (filter miss or `prop_assume!`).
#[derive(Debug, Clone)]
pub struct Rejection(pub String);

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Attempts to generate one value.
    fn try_gen(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection>;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `pred` (retrying a bounded
    /// number of times before rejecting the whole case).
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Builds a recursive strategy: at each of `depth` levels, either a
    /// leaf from `self` or one application of `recurse` over the
    /// previous level.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(cur).boxed();
            cur = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        cur
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe bridge used by [`BoxedStrategy`].
trait StrategyObj<V> {
    fn try_gen_obj(&self, rng: &mut TestRng) -> Result<V, Rejection>;
}

impl<S: Strategy> StrategyObj<S::Value> for S {
    fn try_gen_obj(&self, rng: &mut TestRng) -> Result<S::Value, Rejection> {
        self.try_gen(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Arc<dyn StrategyObj<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        Self(Arc::clone(&self.0))
    }
}

impl<V> fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<V: fmt::Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn try_gen(&self, rng: &mut TestRng) -> Result<V, Rejection> {
        self.0.try_gen_obj(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn try_gen(&self, rng: &mut TestRng) -> Result<O, Rejection> {
        self.inner.try_gen(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn try_gen(&self, rng: &mut TestRng) -> Result<S::Value, Rejection> {
        for _ in 0..32 {
            let v = self.inner.try_gen(rng)?;
            if (self.pred)(&v) {
                return Ok(v);
            }
        }
        Err(Rejection(self.reason.clone()))
    }
}

/// Uniform choice between alternative strategies of one value type.
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<V> Union<V> {
    /// Builds a union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<V: fmt::Debug> Strategy for Union<V> {
    type Value = V;
    fn try_gen(&self, rng: &mut TestRng) -> Result<V, Rejection> {
        let pick = rng.below(self.options.len());
        self.options[pick].try_gen(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn try_gen(&self, _rng: &mut TestRng) -> Result<T, Rejection> {
        Ok(self.0.clone())
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn try_gen(&self, rng: &mut TestRng) -> Result<$t, Rejection> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                let off = (rng.next_u64() as u128) % span;
                Ok(self.start + off as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn try_gen(&self, rng: &mut TestRng) -> Result<$t, Rejection> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                let off = (rng.next_u64() as u128) % span;
                Ok(lo + off as $t)
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn try_gen(&self, rng: &mut TestRng) -> Result<f64, Rejection> {
        Ok(self.start + rng.next_f64() * (self.end - self.start))
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident . $idx:tt),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn try_gen(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection> {
                Ok(($(self.$idx.try_gen(rng)?,)+))
            }
        }
    )+};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}
