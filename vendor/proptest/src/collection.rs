//! Collection strategies (`prop::collection::vec`).

use crate::rng::TestRng;
use crate::strategy::{Rejection, Strategy};
use std::ops::{Range, RangeInclusive};

/// Inclusive bounds on a generated collection's length.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        Self {
            lo: r.start,
            hi: r.end.saturating_sub(1).max(r.start),
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: (*r.end()).max(*r.start()),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

/// Strategy for `Vec<T>` with lengths drawn from a [`SizeRange`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors of values from `element` with length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn try_gen(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection> {
        let len = self.size.lo + rng.below(self.size.hi - self.size.lo + 1);
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.element.try_gen(rng)?);
        }
        Ok(out)
    }
}
