//! `&str` regex-pattern strategies: the subset of regex syntax this
//! workspace's tests use — character classes with ranges, `{n}`/`{m,n}`
//! repetition, `?`, literal characters, and top-level alternation.

use crate::rng::TestRng;
use crate::strategy::{Rejection, Strategy};

impl Strategy for &str {
    type Value = String;
    fn try_gen(&self, rng: &mut TestRng) -> Result<String, Rejection> {
        Ok(gen_from_pattern(self, rng))
    }
}

fn gen_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let alts = split_alternatives(pattern);
    let pick = alts[rng.below(alts.len())];
    gen_sequence(pick, rng)
}

/// Splits on `|` outside character classes. Groups are unsupported.
fn split_alternatives(pattern: &str) -> Vec<&str> {
    let bytes = pattern.as_bytes();
    let mut alts = Vec::new();
    let mut start = 0;
    let mut in_class = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 1,
            b'[' => in_class = true,
            b']' => in_class = false,
            b'|' if !in_class => {
                alts.push(&pattern[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    alts.push(&pattern[start..]);
    alts
}

fn gen_sequence(pattern: &str, rng: &mut TestRng) -> String {
    let bytes = pattern.as_bytes();
    let mut out = String::new();
    let mut i = 0;
    while i < bytes.len() {
        let (choices, next) = parse_atom(pattern, i);
        i = next;
        let (lo, hi, next) = parse_repeat(pattern, i);
        i = next;
        let n = lo + rng.below(hi - lo + 1);
        for _ in 0..n {
            out.push(choices[rng.below(choices.len())]);
        }
    }
    out
}

/// Parses one atom at byte offset `i`: a character class, an escaped
/// character, or a literal. Returns the candidate characters and the
/// offset just past the atom.
fn parse_atom(pattern: &str, i: usize) -> (Vec<char>, usize) {
    let bytes = pattern.as_bytes();
    match bytes[i] {
        b'[' => parse_class(pattern, i),
        b'\\' => (vec![bytes[i + 1] as char], i + 2),
        b => (vec![b as char], i + 1),
    }
}

/// Parses a character class starting at `[`. Supports ranges (`a-z`),
/// literal members, and a literal `-` when first or last.
fn parse_class(pattern: &str, open: usize) -> (Vec<char>, usize) {
    let bytes = pattern.as_bytes();
    let mut set = Vec::new();
    let mut j = open + 1;
    while j < bytes.len() && bytes[j] != b']' {
        if bytes[j] == b'\\' {
            set.push(bytes[j + 1] as char);
            j += 2;
        } else if j + 2 < bytes.len() && bytes[j + 1] == b'-' && bytes[j + 2] != b']' {
            for c in bytes[j]..=bytes[j + 2] {
                set.push(c as char);
            }
            j += 3;
        } else {
            set.push(bytes[j] as char);
            j += 1;
        }
    }
    assert!(
        j < bytes.len() && !set.is_empty(),
        "malformed character class in pattern {pattern:?}"
    );
    (set, j + 1)
}

/// Parses an optional repetition suffix (`{n}`, `{m,n}`, `?`) at `i`.
/// Returns (min, max, next offset).
fn parse_repeat(pattern: &str, i: usize) -> (usize, usize, usize) {
    let bytes = pattern.as_bytes();
    if i < bytes.len() && bytes[i] == b'?' {
        return (0, 1, i + 1);
    }
    if i >= bytes.len() || bytes[i] != b'{' {
        return (1, 1, i);
    }
    let close = pattern[i..]
        .find('}')
        .map(|o| i + o)
        .unwrap_or_else(|| panic!("unterminated repetition in pattern {pattern:?}"));
    let body = &pattern[i + 1..close];
    let (lo, hi) = match body.split_once(',') {
        Some((lo, hi)) => (
            lo.parse().expect("bad repetition bound"),
            hi.parse().expect("bad repetition bound"),
        ),
        None => {
            let n = body.parse().expect("bad repetition count");
            (n, n)
        }
    };
    (lo, hi, close + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_name("string-tests")
    }

    #[test]
    fn class_with_range_and_trailing_dash() {
        let mut r = rng();
        for _ in 0..200 {
            let s = gen_from_pattern("[a-z0-9-]{1,8}", &mut r);
            assert!((1..=8).contains(&s.len()));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
        }
    }

    #[test]
    fn space_to_tilde_covers_printables() {
        let mut r = rng();
        for _ in 0..200 {
            let s = gen_from_pattern("[ -~]{1,12}", &mut r);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn alternation_and_concatenation() {
        let mut r = rng();
        for _ in 0..200 {
            let s = gen_from_pattern("[A-Z][0-9]|x", &mut r);
            assert!(
                s == "x"
                    || (s.len() == 2
                        && s.chars().next().unwrap().is_ascii_uppercase()
                        && s.chars().nth(1).unwrap().is_ascii_digit()),
                "unexpected {s:?}"
            );
        }
    }

    #[test]
    fn fixed_count_repetition() {
        let mut r = rng();
        let s = gen_from_pattern("[ab]{4}", &mut r);
        assert_eq!(s.len(), 4);
    }
}
