//! Offline stand-in for the `rand` crate.
//!
//! The workspace declares `rand` as a dependency but has no call sites
//! (the simulator carries its own deterministic PRNG), so this vendored
//! stub only needs to satisfy dependency resolution in a network-less
//! build environment.
