/root/repo/vendor/criterion/target/debug/deps/criterion-a12a515c8ad1ae6a.d: src/lib.rs

/root/repo/vendor/criterion/target/debug/deps/libcriterion-a12a515c8ad1ae6a.rmeta: src/lib.rs

src/lib.rs:
