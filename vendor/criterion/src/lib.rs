//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API this workspace's benches
//! use — `benchmark_group`, `sample_size`/`measurement_time`,
//! `bench_function`, `Bencher::{iter, iter_batched}` — with real
//! wall-clock measurement. Results are printed one line per benchmark
//! and written to `target/criterion/<group>/<bench>/new/estimates.json`
//! in the same shape real criterion uses (`mean.point_estimate` etc. in
//! nanoseconds), so downstream tooling like `scripts/bench_snapshot.sh`
//! can harvest them identically.

use std::env;
use std::fs;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Benchmark driver; owns global defaults.
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 20,
            default_measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Accepts (and ignores) CLI configuration, mirroring criterion's
    /// builder API.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            measurement_time: self.default_measurement_time,
            _parent: self,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (n, t) = (self.default_sample_size, self.default_measurement_time);
        run_bench("standalone", &id.into(), n, t, f);
        self
    }

    /// No-op summary hook, for API parity.
    pub fn final_summary(&mut self) {}
}

/// A named collection of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Measures `f` and records the estimate under this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(
            &self.name,
            &id.into(),
            self.sample_size,
            self.measurement_time,
            f,
        );
        self
    }

    /// Ends the group (no-op; estimates are written eagerly).
    pub fn finish(self) {}
}

/// How batched inputs are grouped; only a hint in this stand-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `iters` times back-to-back.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over inputs produced by `setup`; only the routine
    /// is on the clock — the returned value is dropped after the timer
    /// stops, so benchmarks can move expensive-to-drop state into their
    /// output to keep deallocation off the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            let output = black_box(routine(input));
            total += start.elapsed();
            drop(output);
        }
        self.elapsed = total;
    }
}

/// Locates the criterion output directory: `$CRITERION_HOME`, then
/// `$CARGO_TARGET_DIR/criterion`, then the nearest enclosing `target/`.
fn criterion_dir() -> PathBuf {
    if let Ok(home) = env::var("CRITERION_HOME") {
        return PathBuf::from(home);
    }
    if let Ok(target) = env::var("CARGO_TARGET_DIR") {
        return PathBuf::from(target).join("criterion");
    }
    let mut dir = env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let t = dir.join("target");
        if t.is_dir() {
            return t.join("criterion");
        }
        if !dir.pop() {
            return PathBuf::from("target/criterion");
        }
    }
}

fn run_bench<F>(group: &str, name: &str, samples: usize, mtime: Duration, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibration pass: estimate per-iteration cost from a single run,
    // then refine with a short growing warm-up so fast routines get
    // enough iterations per sample to out-resolve timer noise. Sizing is
    // based on *wall* time per iteration — which includes un-timed
    // iter_batched setup work — so a cheap routine with an expensive
    // setup doesn't get scheduled for millions of iterations.
    let mut wall_per_iter_ns = {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let wall = Instant::now();
        f(&mut b);
        (wall.elapsed().as_nanos() as f64).max(1.0)
    };
    let mut warm_iters: u64 = 1;
    while wall_per_iter_ns * (warm_iters as f64) < 1_000_000.0 && warm_iters < (1 << 20) {
        warm_iters *= 2;
        let mut b = Bencher {
            iters: warm_iters,
            elapsed: Duration::ZERO,
        };
        let wall = Instant::now();
        f(&mut b);
        wall_per_iter_ns = (wall.elapsed().as_nanos() as f64 / warm_iters as f64).max(0.1);
    }

    let per_sample_budget_ns =
        (mtime.as_nanos() as f64 / samples as f64).max(200_000.0);
    let iters = ((per_sample_budget_ns / wall_per_iter_ns).floor() as u64).clamp(1, 1 << 28);

    let mut sample_means = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        sample_means.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    sample_means.sort_by(f64::total_cmp);
    let mean = sample_means.iter().sum::<f64>() / sample_means.len() as f64;
    let median = sample_means[sample_means.len() / 2];
    let lo = sample_means[0];
    let hi = sample_means[sample_means.len() - 1];

    println!("{group}/{name:<40} time: [{lo:>12.2} ns {mean:>12.2} ns {hi:>12.2} ns]");

    let dir = criterion_dir().join(group).join(name).join("new");
    if fs::create_dir_all(&dir).is_ok() {
        let json = format!(
            concat!(
                "{{\"mean\":{{\"point_estimate\":{mean}}},",
                "\"median\":{{\"point_estimate\":{median}}},",
                "\"min\":{{\"point_estimate\":{lo}}},",
                "\"max\":{{\"point_estimate\":{hi}}},",
                "\"iters_per_sample\":{iters},\"samples\":{samples}}}"
            ),
            mean = mean,
            median = median,
            lo = lo,
            hi = hi,
            iters = iters,
            samples = samples,
        );
        let _ = fs::write(dir.join("estimates.json"), json);
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
