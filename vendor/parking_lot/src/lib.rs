//! Offline stand-in for `parking_lot`: wraps the std synchronization
//! primitives with parking_lot's non-poisoning API (guards returned
//! directly, not behind `Result`).

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Reader-writer lock with parking_lot's panic-free locking API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock around `value`.
    pub fn new(value: T) -> Self {
        Self(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Mutual-exclusion lock with parking_lot's panic-free locking API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex around `value`.
    pub fn new(value: T) -> Self {
        Self(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}
