//! Offline stand-in for `crossbeam`: just the `channel` module surface
//! the live runtime uses — MPMC channels with timeout receive and
//! disconnect detection, built on `Mutex` + `Condvar`.

pub mod channel {
    //! MPMC channels with crossbeam's API shape.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        ready: Condvar,
    }

    /// Sending half of a channel. Cloneable (multi-producer).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of a channel. Cloneable (multi-consumer).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the undelivered message.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the timeout elapsed.
        Timeout,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The queue is currently empty.
        Empty,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// Creates a channel with unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Creates a channel with bounded capacity. This stand-in does not
    /// enforce the bound (sends never block); the workspace only uses
    /// bounded channels as ample mailboxes, not for backpressure.
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, failing if every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            if inner.receivers == 0 {
                return Err(SendError(msg));
            }
            inner.queue.push_back(msg);
            drop(inner);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.senders += 1;
            drop(inner);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.senders -= 1;
            let none_left = inner.senders == 0;
            drop(inner);
            if none_left {
                // Wake blocked receivers so they observe the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, waiting at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .ready
                    .wait_timeout(inner, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                inner = guard;
            }
        }

        /// Receives a message, blocking until one arrives or all senders
        /// disconnect.
        pub fn recv(&self) -> Result<T, RecvTimeoutError> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                inner = self
                    .shared
                    .ready
                    .wait(inner)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Number of messages currently queued (crossbeam's
        /// `Receiver::len`; a point-in-time reading, instantly stale
        /// under concurrent senders).
        pub fn len(&self) -> usize {
            self.shared
                .inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .queue
                .len()
        }

        /// True when no messages are queued right now.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(msg) = inner.queue.pop_front() {
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.receivers += 1;
            drop(inner);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(7u32).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
        }

        #[test]
        fn timeout_when_empty() {
            let (_tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn disconnected_when_senders_gone() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(1));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = bounded(4);
            let t = thread::spawn(move || {
                for i in 0..100u64 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            while got.len() < 100 {
                got.push(rx.recv_timeout(Duration::from_secs(1)).unwrap());
            }
            t.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
