//! Partition tolerance (Figures 1 and 4): a VO split by network failure
//! keeps operating as two disjoint fragments, each serving the partial
//! view it can reach, and re-converges after healing.
//!
//! ```text
//! cargo run --example partition_tolerance
//! ```

use grid_info_services::core::scenario::two_vos;
use grid_info_services::ldap::{Dn, Filter};
use grid_info_services::netsim::secs;
use grid_info_services::proto::SearchSpec;

fn main() {
    let mut sc = two_vos(7, 3); // 3 hosts per group
    sc.dep.run_for(secs(5));

    let q = || SearchSpec::subtree(Dn::root(), Filter::parse("(objectclass=computer)").unwrap());
    let count = |sc: &mut grid_info_services::core::TwoVoScenario, client, url: &_| {
        sc.dep
            .search_and_wait(client, url, q(), secs(20))
            .map(|(code, entries, _)| (code, entries.len()))
    };

    println!("t={:>6}  -- before partition --", sc.dep.now());
    let (vo_b0_url, vo_b1_url) = (sc.vo_b[0].1.clone(), sc.vo_b[1].1.clone());
    let (c_a, c_b0, c_b1) = (sc.clients[0], sc.clients[1], sc.clients[2]);
    let vo_a_url = sc.vo_a.1.clone();
    println!("  VO-A  view: {:?}", count(&mut sc, c_a, &vo_a_url));
    println!("  VO-B0 view: {:?}", count(&mut sc, c_b0, &vo_b0_url));
    println!("  VO-B1 view: {:?}", count(&mut sc, c_b1, &vo_b1_url));

    // Split VO-B down the middle (Figure 1's lightning bolt).
    let side0: Vec<_> = sc.hosts_b[0]
        .iter()
        .map(|(n, _)| *n)
        .chain([sc.vo_b[0].0, c_b0])
        .collect();
    let side1: Vec<_> = sc.hosts_b[1]
        .iter()
        .map(|(n, _)| *n)
        .chain([sc.vo_b[1].0, c_b1])
        .collect();
    sc.dep.sim.partition_between(&side0, &side1);
    println!("\n*** network partition splits VO-B ***");

    // Soft state for unreachable providers expires (TTL 30s).
    sc.dep.run_for(secs(45));
    println!(
        "\nt={:>6}  -- during partition (soft state expired) --",
        sc.dep.now()
    );
    println!(
        "  VO-A  view: {:?}  (unaffected)",
        count(&mut sc, c_a, &vo_a_url)
    );
    println!(
        "  VO-B0 view: {:?}  (its half + shared pool)",
        count(&mut sc, c_b0, &vo_b0_url)
    );
    println!(
        "  VO-B1 view: {:?}  (disjoint fragment keeps working)",
        count(&mut sc, c_b1, &vo_b1_url)
    );

    // Heal: replicas re-converge via ordinary soft-state refresh.
    sc.dep.sim.heal_all();
    sc.dep.run_for(secs(30));
    println!("\n*** partition heals ***\n");
    println!("t={:>6}  -- after healing --", sc.dep.now());
    println!("  VO-B0 view: {:?}", count(&mut sc, c_b0, &vo_b0_url));
    println!("  VO-B1 view: {:?}", count(&mut sc, c_b1, &vo_b1_url));

    let m = sc.dep.sim.metrics();
    println!(
        "\nnetwork: {} sent, {} delivered, {} dropped by partition",
        m.sent, m.delivered, m.dropped_partition
    );
}
