//! Quickstart: stand up a one-host Grid information service, register it
//! in a VO directory, and run discovery + enquiry queries.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use grid_info_services::core::SimDeployment;
use grid_info_services::giis::{Giis, GiisConfig};
use grid_info_services::gris::HostSpec;
use grid_info_services::ldap::{to_ldif, Dn, Filter, LdapUrl};
use grid_info_services::netsim::secs;
use grid_info_services::proto::SearchSpec;

fn main() {
    // A deterministic simulated deployment (seed 42).
    let mut dep = SimDeployment::new(42);

    // A VO aggregate directory (GIIS) in chaining mode.
    let vo_url = LdapUrl::server("giis.demo-vo");
    dep.add_giis(Giis::new(
        GiisConfig::chaining(vo_url.clone(), Dn::root()),
        secs(30), // registration refresh interval
        secs(90), // registration TTL (3x interval survives lost messages)
    ));

    // One compute host with the standard provider set (static host info,
    // dynamic load, filesystem, batch queue), registering with the VO.
    let host = HostSpec::irix("hostX", 8);
    let (_, gris_url) = dep.add_standard_host(&host, 7, std::slice::from_ref(&vo_url));

    // A user.
    let client = dep.add_client("alice");

    // Let the soft-state registration flow.
    dep.run_for(secs(2));

    // --- Discovery: ask the VO directory for computers. -----------------
    let (code, entries, _) = dep
        .search_and_wait(
            client,
            &vo_url,
            SearchSpec::subtree(Dn::root(), Filter::parse("(objectclass=computer)").unwrap()),
            secs(10),
        )
        .expect("directory reply");
    println!("== discovery via {vo_url} ({code:?}) ==");
    println!("{}", to_ldif(&entries));

    // --- Enquiry: look up the host's full subtree directly. -------------
    let (code, entries, _) = dep
        .search_and_wait(
            client,
            &gris_url,
            SearchSpec::subtree(host.dn(), Filter::always()),
            secs(10),
        )
        .expect("GRIS reply");
    println!("== enquiry via {gris_url} ({code:?}) ==");
    println!("{}", to_ldif(&entries));

    // --- A qualitative query: lightly-loaded storage-rich hosts. --------
    let filter = Filter::parse("(&(objectclass=filesystem)(free>=1000))").unwrap();
    let (_, entries, _) = dep
        .search_and_wait(
            client,
            &gris_url,
            SearchSpec::subtree(host.dn(), filter).select(&["free", "path"]),
            secs(10),
        )
        .expect("GRIS reply");
    println!("== filesystems with >= 1 GB free (projected) ==");
    println!("{}", to_ldif(&entries));
}
