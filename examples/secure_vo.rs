//! Security example (§7): GSI mutual authentication, per-attribute
//! access control, and the two-phase restricted query pattern.
//!
//! The provider publishes its OS type to everyone but restricts load
//! averages to VO members; an anonymous query sees the redacted view, a
//! bound VO member sees everything.
//!
//! ```text
//! cargo run --example secure_vo
//! ```

use grid_info_services::core::{ClientActor, SimDeployment};
use grid_info_services::gris::{
    DynamicHostProvider, Gris, GrisConfig, HostSpec, StaticHostProvider,
};
use grid_info_services::gsi::{
    Acl, BindToken, CertAuthority, Grant, Principal, SecurityPolicy, TrustStore,
};
use grid_info_services::ldap::{to_ldif, Filter, LdapUrl};
use grid_info_services::netsim::secs;
use grid_info_services::proto::{GripRequest, SearchSpec};

fn main() {
    // --- Community PKI. --------------------------------------------------
    let ca = CertAuthority::new("/O=Grid/CN=Community CA", 2001);
    let mut trust = TrustStore::new();
    trust.add_ca(&ca);
    let alice = ca.issue("/O=Grid/O=ANL/CN=alice");
    println!("issued credential for {}", alice.subject());

    // --- A GRIS with per-attribute policy. --------------------------------
    let host = HostSpec::irix("hostX", 8);
    let url = LdapUrl::server("gris.hostX");
    let mut config = GrisConfig::open(url.clone(), host.dn());
    config.security = SecurityPolicy::authenticated(ca.issue(&url.to_string()), trust);
    config.security.policy_map.set(
        host.dn(),
        Acl::default()
            // Everyone may see what kind of machine this is...
            .with_rule(
                Principal::Anonymous,
                Grant::Attrs(vec![
                    "objectclass".into(),
                    "system".into(),
                    "arch".into(),
                    "hn".into(),
                    "perf".into(),
                ]),
            )
            // ...but load averages are for named identities only.
            .with_rule(
                Principal::Subject("/O=Grid/O=ANL/CN=alice".into()),
                Grant::All,
            ),
    );
    let mut gris = Gris::new(config, secs(30), secs(90));
    gris.add_provider(Box::new(StaticHostProvider::new(host.clone())));
    gris.add_provider(Box::new(DynamicHostProvider::new(
        &host,
        5,
        1.5,
        secs(10),
        secs(30),
    )));

    let mut dep = SimDeployment::new(5);
    dep.add_gris(gris);
    let anon = dep.add_client("anonymous");
    let member = dep.add_client("alice");
    dep.run_for(secs(1));

    // --- Anonymous view: load5 is invisible; filters cannot probe it. ----
    let spec = SearchSpec::subtree(host.dn(), Filter::always());
    let (_, entries, _) = dep
        .search_and_wait(anon, &url, spec.clone(), secs(10))
        .unwrap();
    println!("\n== anonymous view (load averages redacted) ==");
    println!("{}", to_ldif(&entries));
    let (_, probed, _) = dep
        .search_and_wait(
            anon,
            &url,
            SearchSpec::subtree(host.dn(), Filter::parse("(load5=*)").unwrap()),
            secs(10),
        )
        .unwrap();
    println!(
        "anonymous '(load5=*)' probe matches {} entries (good: 0)",
        probed.len()
    );

    // --- Alice binds with her credential, then sees everything. ----------
    let token = BindToken::create(&alice, &url.to_string()).to_bytes();
    let subject = alice.subject().to_owned();
    dep.sim.invoke::<ClientActor, _>(member, |c, ctx| {
        c.request(ctx, &url, |id| GripRequest::Bind {
            id,
            subject: subject.clone(),
            token,
        })
    });
    dep.run_for(secs(1));
    let (_, entries, _) = dep.search_and_wait(member, &url, spec, secs(10)).unwrap();
    println!("\n== authenticated view for {} ==", alice.subject());
    println!("{}", to_ldif(&entries));

    // --- Delegation: a proxy credential authenticates as alice. ----------
    let proxy = alice.delegate(404);
    println!(
        "proxy chain of {} certificates authenticates as {:?}",
        proxy.chain.len(),
        proxy.subject()
    );
}
