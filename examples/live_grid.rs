//! Live threaded runtime example: the same GRIS/GIIS engines that run in
//! the deterministic simulator, here running on real OS threads with
//! crossbeam channels and wall-clock soft-state TTLs.
//!
//! ```text
//! cargo run --example live_grid
//! ```

use grid_info_services::core::{LiveRuntime, ServeOptions, SimDeployment};
use grid_info_services::giis::{Giis, GiisConfig, GiisMode};
use grid_info_services::gris::HostSpec;
use grid_info_services::ldap::{Dn, Filter, LdapUrl};
use grid_info_services::netsim::SimDuration;
use grid_info_services::proto::SearchSpec;
use std::time::{Duration, Instant};

fn main() {
    let mut rt = LiveRuntime::new(Duration::from_millis(10));

    // VO directory with sub-second cadence so the demo is quick.
    let vo_url = LdapUrl::server("giis.live-vo");
    let mut giis = Giis::new(
        GiisConfig::chaining(vo_url.clone(), Dn::root()),
        SimDuration::from_millis(200),
        SimDuration::from_millis(800),
    );
    giis.config.mode = GiisMode::Chain {
        timeout: SimDuration::from_millis(500),
    };
    rt.spawn_giis(giis, ServeOptions::default()).unwrap();

    // Four hosts, each a GRIS on its own thread.
    let mut kill_url = None;
    for i in 0..4 {
        let host = HostSpec::linux(&format!("live{i}"), 2);
        let mut gris = SimDeployment::standard_host_gris(&host, i);
        gris.agent.interval = SimDuration::from_millis(200);
        gris.agent.ttl = SimDuration::from_millis(800);
        gris.agent.add_target(vo_url.clone());
        if i == 3 {
            kill_url = Some(gris.config.url.clone());
        }
        rt.spawn_gris(gris, ServeOptions::default()).unwrap();
    }

    std::thread::sleep(Duration::from_millis(600));
    let mut client = rt.client();
    let q = SearchSpec::subtree(Dn::root(), Filter::parse("(objectclass=computer)").unwrap());

    let t0 = Instant::now();
    let (code, entries, _) = client
        .request(&vo_url, q.clone())
        .timeout(Duration::from_secs(5))
        .send()
        .outcome
        .expect("live chained search");
    println!(
        "discovered {} hosts ({code:?}) in {:.1} ms over real threads",
        entries.len(),
        t0.elapsed().as_secs_f64() * 1e3
    );
    for e in &entries {
        println!("  {}", e.dn());
    }

    // Kill one host; its soft state expires from the directory.
    println!("\nkilling live3's GRIS thread ...");
    rt.kill_service(&kill_url.unwrap());
    std::thread::sleep(Duration::from_millis(1500));
    let (_, entries, _) = client
        .request(&vo_url, q)
        .timeout(Duration::from_secs(5))
        .send()
        .outcome
        .expect("post-failure search");
    println!("after expiry: {} hosts remain registered", entries.len());

    // Parallel load: 8 client threads hammering the directory.
    println!("\nrunning 8 parallel clients x 25 queries ...");
    let t0 = Instant::now();
    let mut threads = Vec::new();
    for _ in 0..8 {
        let mut c = rt.client();
        let vo = vo_url.clone();
        threads.push(std::thread::spawn(move || {
            let mut ok = 0u32;
            for _ in 0..25 {
                let q = SearchSpec::subtree(
                    Dn::root(),
                    Filter::parse("(objectclass=computer)").unwrap(),
                );
                if c.request(&vo, q)
                    .timeout(Duration::from_secs(5))
                    .send()
                    .outcome
                    .is_some()
                {
                    ok += 1;
                }
            }
            ok
        }));
    }
    let total: u32 = threads.into_iter().map(|t| t.join().unwrap()).sum();
    let dt = t0.elapsed().as_secs_f64();
    println!(
        "{total}/200 queries answered in {dt:.2}s ({:.0} q/s)",
        f64::from(total) / dt
    );

    rt.shutdown();
}
