//! Performance diagnosis + archival history (§1 and §6).
//!
//! A user notices their application is slow. The diagnosis tool sweeps
//! the associated information sources (host, queue, disk, network) and
//! ranks suspected causes; the archival provider then supplies the load
//! history around the incident via a time-range GRIP extension query.
//!
//! ```text
//! cargo run --example diagnosis_and_history
//! ```

use grid_info_services::core::SimDeployment;
use grid_info_services::giis::{Giis, GiisConfig};
use grid_info_services::gris::{
    ArchiveProvider, DynamicHostProvider, Gris, GrisConfig, HostSpec, NwsGatewayProvider,
};
use grid_info_services::ldap::{Dn, Filter, LdapUrl};
use grid_info_services::netsim::secs;
use grid_info_services::nws::Nws;
use grid_info_services::proto::SearchSpec;
use grid_info_services::services::{diagnose, DiagnosisConfig};

fn main() {
    let mut dep = SimDeployment::new(404);
    let vo_url = LdapUrl::server("giis.vo");
    dep.add_giis(Giis::new(
        GiisConfig::chaining(vo_url.clone(), Dn::root()),
        secs(30),
        secs(90),
    ));

    // The application host, with an archival provider alongside the
    // standard set.
    let host = HostSpec::linux("apphost", 2);
    let mut gris = SimDeployment::standard_host_gris(&host, 11);
    gris.add_provider(Box::new(ArchiveProvider::new(DynamicHostProvider::new(
        &host,
        11,
        1.0 + (11 % 3) as f64, // same series as the standard dynamic provider
        secs(10),
        secs(30),
    ))));
    gris.agent.add_target(vo_url.clone());
    let gris_url = gris.config.url.clone();
    dep.add_gris(gris);

    // NWS gateway for the path to the peer.
    let nws_url = LdapUrl::server("gris.nws");
    let mut nws_gris = Gris::new(
        GrisConfig::open(nws_url.clone(), Dn::parse("nn=wan").unwrap()),
        secs(30),
        secs(90),
    );
    nws_gris.add_provider(Box::new(NwsGatewayProvider::new(
        "wan",
        Nws::new(12, secs(10)),
    )));
    dep.add_gris(nws_gris);

    let client = dep.add_client("user");
    dep.run_for(secs(600)); // the application has been running a while

    // --- The diagnosis sweep. --------------------------------------------
    let mut config = DiagnosisConfig::new(vo_url);
    config.nws_gris = Some(nws_url);
    // Deliberately strict thresholds so the demo surfaces findings.
    config.load_per_cpu = 0.5;
    config.min_bandwidth_mbps = 100.0;
    config.min_fraction_free = 0.45;

    let d = diagnose(&mut dep, client, &config, &host.dn(), Some("fileserver"));
    println!("== diagnosis for [{}] talking to fileserver ==", host.dn());
    println!("consulted {} information sources", d.sources_consulted);
    if d.findings.is_empty() {
        println!("no anomalies found");
    }
    for (i, f) in d.findings.iter().enumerate() {
        println!("  #{}: {f:?}", i + 1);
    }

    // --- Historical context from the archive (§6 extension). -------------
    let now_us = dep.now().micros();
    let from = now_us.saturating_sub(120_000_000); // last 2 minutes
    let filter = Filter::parse(&format!(
        "(&(objectclass=perfarchive)(t>={from})(t<={now_us}))"
    ))
    .unwrap();
    let (_, history, _) = dep
        .search_and_wait(
            client,
            &gris_url,
            SearchSpec::subtree(Dn::parse("archive=load, hn=apphost").unwrap(), filter),
            secs(10),
        )
        .expect("archive reply");
    println!(
        "\n== load history, last 2 minutes ({} samples) ==",
        history.len()
    );
    for e in &history {
        let t = e.get_i64("t").unwrap() as f64 / 1e6;
        let load = e.get_f64("load5").unwrap();
        let bar = "#".repeat((load * 10.0).min(60.0) as usize);
        println!("  t={t:>7.0}s  load5={load:>5.2}  {bar}");
    }

    // An unbounded history query is refused — the §6 discipline.
    let (code, _, _) = dep
        .search_and_wait(
            client,
            &gris_url,
            SearchSpec::subtree(
                Dn::parse("archive=load, hn=apphost").unwrap(),
                Filter::parse("(objectclass=perfarchive)").unwrap(),
            ),
            secs(10),
        )
        .expect("archive reply");
    println!("\nunbounded archive query -> {code:?} (range constraints required)");
}
