//! Replica selection example (§1): choose the best copy of a replicated
//! file using storage information from the VO directory plus bandwidth
//! *predictions* from the Network Weather Service gateway's
//! non-enumerable `link=src-dst` namespace (§4.1).
//!
//! ```text
//! cargo run --example replica_selection
//! ```

use grid_info_services::core::SimDeployment;
use grid_info_services::giis::{Giis, GiisConfig};
use grid_info_services::gris::{Gris, GrisConfig, HostSpec, NwsGatewayProvider};
use grid_info_services::ldap::{Dn, LdapUrl};
use grid_info_services::netsim::{secs, SimDuration};
use grid_info_services::nws::Nws;
use grid_info_services::proto::SearchSpec;
use grid_info_services::services::ReplicaSelector;

fn main() {
    let mut dep = SimDeployment::new(1234);

    // A data-grid VO directory.
    let vo_url = LdapUrl::server("giis.datagrid");
    dep.add_giis(Giis::new(
        GiisConfig::chaining(vo_url.clone(), Dn::root()),
        secs(30),
        secs(90),
    ));

    // Four storage sites hold replicas.
    for (i, name) in ["sdsc", "anl", "isi", "npaci"].iter().enumerate() {
        let host = HostSpec::linux(name, 4);
        dep.add_standard_host(&host, 50 + i as u64, std::slice::from_ref(&vo_url));
    }

    // The NWS gateway: an information provider over an *infinite*
    // namespace — links are materialized lazily per query.
    let nws_url = LdapUrl::server("gris.nws");
    let mut nws_gris = Gris::new(
        GrisConfig::open(nws_url.clone(), Dn::parse("nn=wan").unwrap()),
        secs(30),
        secs(90),
    );
    nws_gris.add_provider(Box::new(NwsGatewayProvider::new(
        "wan",
        Nws::new(77, SimDuration::from_secs(10)),
    )));
    dep.add_gris(nws_gris);

    let client = dep.add_client("physicist");
    dep.run_for(secs(3));

    // Show the raw network view first.
    println!("== predicted bandwidth from 'lab' to each replica site ==");
    for site in ["sdsc", "anl", "isi", "npaci"] {
        let dn = Dn::parse(&format!("link=lab-{site}, nn=wan")).unwrap();
        let (_, entries, _) = dep
            .search_and_wait(client, &nws_url, SearchSpec::lookup(dn), secs(10))
            .expect("NWS reply");
        let e = &entries[0];
        println!(
            "  lab -> {site}: measured {:>7.2} Mbit/s, predicted {:>7.2} Mbit/s, latency {:>6.2} ms",
            e.get_f64("bandwidth").unwrap(),
            e.get_f64("predictedbandwidth").unwrap(),
            e.get_f64("latency").unwrap(),
        );
    }

    // The service combines storage + network information.
    let selector = ReplicaSelector::new(vo_url, nws_url, "wan");
    match selector.select(&mut dep, client, "lab", 1_000) {
        Some(choice) => println!(
            "\nselected replica on [{}] ({:.2} Mbit/s predicted, {} replicas considered)\n  store entry: {}",
            choice.host, choice.predicted_bandwidth, choice.considered, choice.store
        ),
        None => println!("\nno replica satisfies the constraints"),
    }
}
