//! TCP quickstart, server half: a VO GIIS and two host GRIS serving
//! GRIP/GRRP on real loopback sockets. Run this in one terminal, then
//! `tcp_client` in another:
//!
//! ```text
//! cargo run --example tcp_server            # terminal 1
//! cargo run --example tcp_client            # terminal 2
//! ```
//!
//! Ports default to 2135 (GIIS, the historical MDS port) and 2136/2137
//! (GRIS); override with `--port N` for the GIIS. The process serves
//! until killed.

use grid_info_services::core::{LiveRuntime, ServeOptions, SimDeployment};
use grid_info_services::giis::{Giis, GiisConfig, GiisMode};
use grid_info_services::gris::HostSpec;
use grid_info_services::ldap::{Dn, LdapUrl};
use grid_info_services::netsim::SimDuration;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let base: u16 = args
        .iter()
        .position(|a| a == "--port")
        .and_then(|i| args.get(i + 1))
        .map(|p| p.parse().expect("--port N"))
        .unwrap_or(2135);

    let mut rt = LiveRuntime::new(Duration::from_millis(10));

    let vo_url = LdapUrl::tcp("127.0.0.1", base);
    let mut giis = Giis::new(
        GiisConfig::chaining(vo_url.clone(), Dn::root()),
        SimDuration::from_millis(200),
        SimDuration::from_secs(5),
    );
    giis.config.mode = GiisMode::Chain {
        timeout: SimDuration::from_millis(500),
    };
    rt.spawn_giis(giis, ServeOptions::tcp())
        .expect("bind GIIS listener");
    println!("GIIS serving on {vo_url}");

    for i in 0..2u64 {
        let host = HostSpec::linux(&format!("host{i}"), 2);
        let mut gris = SimDeployment::standard_host_gris(&host, i);
        // Rebind the serving URL *and* the registration agent's advert
        // to the TCP address (the agent snapshots the URL at
        // construction).
        gris.config.url = LdapUrl::tcp("127.0.0.1", base + 1 + i as u16);
        gris.agent.service_url = gris.config.url.clone();
        gris.agent.interval = SimDuration::from_millis(200);
        gris.agent.ttl = SimDuration::from_secs(5);
        gris.agent.add_target(vo_url.clone());
        let url = gris.config.url.clone();
        rt.spawn_gris(gris, ServeOptions::tcp())
            .expect("bind GRIS listener");
        println!("GRIS serving on {url} (registers with the GIIS over GRRP)");
    }

    println!("\nquery from another process:  cargo run --example tcp_client");
    println!("press Ctrl-C to stop");
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
