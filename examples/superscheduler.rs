//! Superscheduler example (§1): route jobs to the "best" computer in a
//! multi-organization VO using the two-phase broker.
//!
//! ```text
//! cargo run --example superscheduler
//! ```

use grid_info_services::core::scenario::figure5;
use grid_info_services::netsim::secs;
use grid_info_services::services::{Broker, Requirements};

fn main() {
    // Figure 5's hierarchy: centers O1 (3 hosts) and O2 (2 hosts) plus an
    // individual contributor, federated by a VO directory.
    let mut sc = figure5(2026);
    sc.dep.run_for(secs(3));

    let broker = Broker::new(sc.vo_url.clone());

    println!("submitting 5 jobs requiring linux, >=1 cpu, load < 4.0\n");
    for job in 1..=5 {
        match broker.select(&mut sc.dep, sc.client, &Requirements::linux(1, 4.0)) {
            Some(sel) => println!(
                "job {job}: scheduled on [{}]  (load5 {:.2}, {} candidates, {} measured)",
                sel.host, sel.load5, sel.candidates, sel.measured
            ),
            None => println!("job {job}: no acceptable host"),
        }
        // Time passes between submissions; load values evolve.
        sc.dep.run_for(secs(30));
    }

    // A demanding job that no host can satisfy.
    println!();
    match broker.select(&mut sc.dep, sc.client, &Requirements::linux(64, 4.0)) {
        Some(sel) => println!("big job: unexpectedly scheduled on {}", sel.host),
        None => println!("big job (64 cpus): correctly rejected — no such host in the VO"),
    }
}
