//! TCP quickstart, client half: connect to the `tcp_server` example
//! from a separate OS process and run a traced VO-wide discovery query
//! over GRIP.
//!
//! ```text
//! cargo run --example tcp_server            # terminal 1
//! cargo run --example tcp_client            # terminal 2
//! ```
//!
//! `--port N` must match the server's GIIS port (default 2135).

use grid_info_services::core::LiveClient;
use grid_info_services::ldap::{Dn, Filter, LdapUrl};
use grid_info_services::proto::SearchSpec;
use std::time::{Duration, Instant};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let port: u16 = args
        .iter()
        .position(|a| a == "--port")
        .and_then(|i| args.get(i + 1))
        .map(|p| p.parse().expect("--port N"))
        .unwrap_or(2135);

    let vo_url = LdapUrl::tcp("127.0.0.1", port);
    let mut client = match LiveClient::builder(&vo_url).connect() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot reach {vo_url}: {e}");
            eprintln!("start the server first: cargo run --example tcp_server");
            std::process::exit(1);
        }
    };
    println!("connected to {vo_url} (pid {})", std::process::id());

    let spec = SearchSpec::subtree(Dn::root(), Filter::parse("(objectclass=computer)").unwrap());
    let t0 = Instant::now();
    let response = client
        .request(&vo_url, spec)
        .timeout(Duration::from_secs(5))
        .traced()
        .send();
    let elapsed = t0.elapsed();
    let trace = response.trace.expect("traced request mints a trace id");
    match response.outcome {
        Some((code, entries, referrals)) => {
            println!(
                "{code:?}: {} entries, {} referrals in {:.1} ms (trace {trace})",
                entries.len(),
                referrals.len(),
                elapsed.as_secs_f64() * 1e3
            );
            for e in &entries {
                println!("  {}", e.dn());
            }
            println!(
                "\n(the server process holds the GIIS/GRIS spans for trace {trace};\n\
                 this client's own root span lives in its per-process sink)"
            );
        }
        None => {
            println!("no answer within 5 s (registrations may still be warming)");
            std::process::exit(1);
        }
    }
}
