//! Monitoring example (§6): subscriptions (push mode), the
//! troubleshooter, and the heartbeat failure detector working together.
//!
//! ```text
//! cargo run --example monitoring
//! ```

use grid_info_services::core::{ClientActor, SimDeployment};
use grid_info_services::giis::{Giis, GiisConfig};
use grid_info_services::gris::HostSpec;
use grid_info_services::ldap::{Dn, Filter, LdapUrl};
use grid_info_services::netsim::secs;
use grid_info_services::proto::{GripRequest, SearchSpec, SubscriptionMode};
use grid_info_services::services::Troubleshooter;

fn main() {
    let mut dep = SimDeployment::new(99);
    let vo_url = LdapUrl::server("giis.vo");
    dep.add_giis(Giis::new(
        GiisConfig::chaining(vo_url.clone(), Dn::root()),
        secs(10),
        secs(30),
    ));

    let mut gris_urls = Vec::new();
    let mut host_nodes = Vec::new();
    for i in 0..3 {
        let host = HostSpec::linux(&format!("n{i}"), 2);
        let (node, url) = dep.add_standard_host(&host, i, std::slice::from_ref(&vo_url));
        gris_urls.push(url);
        host_nodes.push(node);
    }
    let client = dep.add_client("monitor");
    dep.run_for(secs(2));

    // --- Push mode: subscribe to n0's load with periodic delivery. ------
    let sub_id = dep.sim.invoke::<ClientActor, _>(client, |c, ctx| {
        c.request(ctx, &gris_urls[0], |id| GripRequest::Subscribe {
            id,
            spec: SearchSpec::subtree(
                Dn::parse("hn=n0").unwrap(),
                Filter::parse("(load5=*)").unwrap(),
            ),
            mode: SubscriptionMode::Periodic(secs(15)),
        })
    });
    dep.run_for(secs(61));
    let updates = dep.client(client).updates(sub_id);
    println!(
        "== periodic subscription: {} load updates in 60s ==",
        updates.len()
    );
    for u in &updates {
        if let grid_info_services::proto::GripReply::Update { entries, .. } = u {
            if let Some(load) = entries.first().and_then(|e| e.get_f64("load5")) {
                println!("  load5 = {load:.2}");
            }
        }
    }

    // --- Troubleshooter sweeps through the directory. -------------------
    let mut ts = Troubleshooter::new(1.8);
    let computers_q =
        SearchSpec::subtree(Dn::root(), Filter::parse("(objectclass=computer)").unwrap());
    let loads_q = SearchSpec::subtree(
        Dn::root(),
        Filter::parse("(objectclass=loadaverage)").unwrap(),
    );

    println!("\n== troubleshooter sweeps (threshold load5 > 1.8) ==");
    for sweep in 0..4 {
        if sweep == 2 {
            // Crash n2 between sweeps: its soft state will expire.
            let node = host_nodes[2];
            dep.sim.crash(node);
            println!("  *** n2 crashes ***");
        }
        let (_, computers, _) = dep
            .search_and_wait(client, &vo_url, computers_q.clone(), secs(10))
            .unwrap();
        let (_, loads, _) = dep
            .search_and_wait(client, &vo_url, loads_q.clone(), secs(10))
            .unwrap();
        let alerts = ts.sweep(&computers, &loads, dep.now());
        println!(
            "  sweep {sweep} at t={}: {} hosts visible, {} alerts",
            dep.now(),
            computers.len(),
            alerts.len()
        );
        for a in alerts {
            println!("    alert: {a:?}");
        }
        dep.run_for(secs(40));
    }
}
