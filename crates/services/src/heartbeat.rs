//! Heartbeat monitor: the Globus Heartbeat Monitor successor built on
//! GRRP's unreliable failure detector (§4.3).
//!
//! Wraps [`gis_proto::FailureDetector`] with suspicion-transition
//! tracking so experiments can score *detection latency* against ground
//! truth and count *false suspicions* — the §4.3 tradeoff: "between
//! likelihood of an erroneous decision and timeliness of failure
//! detection."

use gis_ldap::LdapUrl;
use gis_netsim::{SimDuration, SimTime};
use gis_proto::FailureDetector;
use std::collections::BTreeSet;

/// A suspicion state transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transition {
    /// When the monitor changed its mind.
    pub at: SimTime,
    /// Which service.
    pub service: String,
    /// `true` = now suspected failed, `false` = cleared.
    pub suspected: bool,
}

/// The heartbeat monitor.
#[derive(Debug)]
pub struct HeartbeatMonitor {
    fd: FailureDetector,
    currently_suspected: BTreeSet<String>,
    /// Every suspicion transition, in order.
    pub transitions: Vec<Transition>,
}

impl HeartbeatMonitor {
    /// Create with the given suspicion threshold.
    pub fn new(suspicion_after: SimDuration) -> HeartbeatMonitor {
        HeartbeatMonitor {
            fd: FailureDetector::new(suspicion_after),
            currently_suspected: BTreeSet::new(),
            transitions: Vec::new(),
        }
    }

    /// Record a heartbeat (registration message) from a service.
    pub fn heard_from(&mut self, service: &LdapUrl, now: SimTime) {
        self.fd.heard_from(service, now);
    }

    /// Re-evaluate suspicions; returns the transitions that occurred.
    pub fn scan(&mut self, now: SimTime) -> Vec<Transition> {
        let suspected_now: BTreeSet<String> = self.fd.suspected(now).into_iter().collect();
        let mut out = Vec::new();
        for s in suspected_now.difference(&self.currently_suspected) {
            out.push(Transition {
                at: now,
                service: s.clone(),
                suspected: true,
            });
        }
        for s in self.currently_suspected.difference(&suspected_now) {
            out.push(Transition {
                at: now,
                service: s.clone(),
                suspected: false,
            });
        }
        self.currently_suspected = suspected_now;
        self.transitions.extend(out.clone());
        out
    }

    /// Is this service currently suspected?
    pub fn is_suspected(&self, service: &LdapUrl) -> bool {
        self.currently_suspected.contains(&service.to_string())
    }

    /// Number of services ever heard from.
    pub fn known(&self) -> usize {
        self.fd.known()
    }

    /// Score against ground truth: given the true failure time of a
    /// service, the detection latency is the gap to the first suspicion
    /// transition after it.
    pub fn detection_latency(&self, service: &LdapUrl, failed_at: SimTime) -> Option<SimDuration> {
        let key = service.to_string();
        self.transitions
            .iter()
            .find(|t| t.service == key && t.suspected && t.at >= failed_at)
            .map(|t| t.at.since(failed_at))
    }

    /// Count suspicion transitions for a service strictly before
    /// `failed_at` (false positives caused by message loss).
    pub fn false_suspicions(&self, service: &LdapUrl, failed_at: SimTime) -> usize {
        let key = service.to_string();
        self.transitions
            .iter()
            .filter(|t| t.service == key && t.suspected && t.at < failed_at)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_netsim::secs;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + secs(s)
    }

    fn svc(name: &str) -> LdapUrl {
        LdapUrl::server(name)
    }

    #[test]
    fn detects_silence_after_threshold() {
        let mut hm = HeartbeatMonitor::new(secs(25));
        for s in [0u64, 10, 20, 30] {
            hm.heard_from(&svc("g"), t(s));
            assert!(hm.scan(t(s)).is_empty());
        }
        // Service dies at t=30 (last heartbeat). Scans at 40, 50: quiet.
        assert!(hm.scan(t(40)).is_empty());
        assert!(hm.scan(t(50)).is_empty());
        // At t=56 the 25s threshold has passed.
        let trans = hm.scan(t(56));
        assert_eq!(trans.len(), 1);
        assert!(trans[0].suspected);
        assert!(hm.is_suspected(&svc("g")));
        assert_eq!(hm.detection_latency(&svc("g"), t(30)), Some(secs(26)));
    }

    #[test]
    fn recovery_clears_suspicion() {
        let mut hm = HeartbeatMonitor::new(secs(25));
        hm.heard_from(&svc("g"), t(0));
        hm.scan(t(30));
        assert!(hm.is_suspected(&svc("g")));
        hm.heard_from(&svc("g"), t(35));
        let trans = hm.scan(t(36));
        assert_eq!(trans.len(), 1);
        assert!(!trans[0].suspected);
        assert!(!hm.is_suspected(&svc("g")));
    }

    #[test]
    fn false_suspicion_counting() {
        let mut hm = HeartbeatMonitor::new(secs(15));
        // Heartbeats at 0, then a gap (lost messages), then 40, then real
        // failure at 40.
        hm.heard_from(&svc("g"), t(0));
        hm.scan(t(20)); // false suspicion (messages lost, not dead)
        hm.heard_from(&svc("g"), t(40));
        hm.scan(t(41)); // cleared
        hm.scan(t(60)); // real detection
        assert_eq!(hm.false_suspicions(&svc("g"), t(40)), 1);
        assert_eq!(hm.detection_latency(&svc("g"), t(40)), Some(secs(20)));
    }

    #[test]
    fn multiple_services_tracked_independently() {
        let mut hm = HeartbeatMonitor::new(secs(10));
        hm.heard_from(&svc("a"), t(0));
        hm.heard_from(&svc("b"), t(0));
        hm.heard_from(&svc("a"), t(10));
        let trans = hm.scan(t(15));
        assert_eq!(trans.len(), 1, "only b is silent past threshold");
        assert_eq!(trans[0].service, svc("b").to_string());
        assert_eq!(hm.known(), 2);
    }
}
