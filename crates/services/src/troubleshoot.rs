//! Troubleshooting service (§1).
//!
//! "A troubleshooting service monitors Grid resources, looking for
//! anomalous behaviors such as excessive load or extended failure of
//! critical services."
//!
//! The sweep logic is pure (easily unit-tested): it consumes the current
//! directory view and produces alerts, tracking appearance/disappearance
//! across sweeps so a resource whose soft state expired raises a
//! `ServiceLost` alert.

use gis_ldap::{Dn, Entry};
use gis_netsim::SimTime;
use std::collections::BTreeMap;

/// An anomaly found by the troubleshooter.
#[derive(Debug, Clone, PartialEq)]
pub enum Alert {
    /// A host's load exceeds the configured threshold.
    Overload {
        /// The load entry's DN.
        source: Dn,
        /// Observed 5-minute load.
        load5: f64,
    },
    /// A previously-seen resource vanished from the directory (its soft
    /// state expired — the §4.3 failure-detection signal).
    ServiceLost {
        /// The resource's DN.
        source: Dn,
        /// When it was last observed.
        last_seen: SimTime,
    },
    /// A previously-lost resource reappeared.
    ServiceRecovered {
        /// The resource's DN.
        source: Dn,
    },
}

/// The troubleshooter's persistent state across sweeps.
#[derive(Debug)]
pub struct Troubleshooter {
    /// Load-average threshold above which an overload alert fires.
    pub load_threshold: f64,
    /// Resources currently believed present: DN -> last seen.
    present: BTreeMap<String, (Dn, SimTime)>,
    /// Resources currently believed lost.
    lost: BTreeMap<String, Dn>,
    /// Total alerts raised (all kinds).
    pub alerts_raised: u64,
}

impl Troubleshooter {
    /// Create with a load threshold.
    pub fn new(load_threshold: f64) -> Troubleshooter {
        Troubleshooter {
            load_threshold,
            present: BTreeMap::new(),
            lost: BTreeMap::new(),
            alerts_raised: 0,
        }
    }

    /// Process one directory sweep: `computers` is the current set of
    /// host entries, `loads` the current load-average entries.
    pub fn sweep(&mut self, computers: &[Entry], loads: &[Entry], now: SimTime) -> Vec<Alert> {
        let mut alerts = Vec::new();

        // Overloads.
        for e in loads {
            if let Some(load5) = e.get_f64("load5") {
                if load5 > self.load_threshold {
                    alerts.push(Alert::Overload {
                        source: e.dn().clone(),
                        load5,
                    });
                }
            }
        }

        // Presence tracking.
        let current: BTreeMap<String, Dn> = computers
            .iter()
            .map(|e| (e.dn().to_string(), e.dn().clone()))
            .collect();
        // Disappearances.
        let gone: Vec<(String, Dn, SimTime)> = self
            .present
            .iter()
            .filter(|(k, _)| !current.contains_key(*k))
            .map(|(k, (dn, seen))| (k.clone(), dn.clone(), *seen))
            .collect();
        for (k, dn, last_seen) in gone {
            self.present.remove(&k);
            self.lost.insert(k, dn.clone());
            alerts.push(Alert::ServiceLost {
                source: dn,
                last_seen,
            });
        }
        // Appearances / recoveries.
        for (k, dn) in current {
            if self.lost.remove(&k).is_some() {
                alerts.push(Alert::ServiceRecovered { source: dn.clone() });
            }
            self.present.insert(k, (dn, now));
        }

        self.alerts_raised += alerts.len() as u64;
        alerts
    }

    /// Number of resources currently believed present.
    pub fn present_count(&self) -> usize {
        self.present.len()
    }

    /// Number of resources currently believed lost.
    pub fn lost_count(&self) -> usize {
        self.lost.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_netsim::secs;

    fn host(n: &str) -> Entry {
        Entry::at(&format!("hn={n}"))
            .unwrap()
            .with_class("computer")
    }

    fn load(n: &str, l: f64) -> Entry {
        Entry::at(&format!("perf=load, hn={n}"))
            .unwrap()
            .with_class("loadaverage")
            .with("load5", l)
    }

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + secs(s)
    }

    #[test]
    fn overload_detection() {
        let mut ts = Troubleshooter::new(2.0);
        let alerts = ts.sweep(
            &[host("a"), host("b")],
            &[load("a", 0.5), load("b", 5.5)],
            t(0),
        );
        assert_eq!(alerts.len(), 1);
        assert!(matches!(&alerts[0], Alert::Overload { load5, .. } if *load5 == 5.5));
    }

    #[test]
    fn disappearance_and_recovery() {
        let mut ts = Troubleshooter::new(10.0);
        assert!(ts.sweep(&[host("a"), host("b")], &[], t(0)).is_empty());
        assert_eq!(ts.present_count(), 2);

        // b vanishes.
        let alerts = ts.sweep(&[host("a")], &[], t(60));
        assert_eq!(alerts.len(), 1);
        match &alerts[0] {
            Alert::ServiceLost { source, last_seen } => {
                assert_eq!(source.to_string(), "hn=b");
                assert_eq!(*last_seen, t(0));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(ts.lost_count(), 1);

        // b comes back.
        let alerts = ts.sweep(&[host("a"), host("b")], &[], t(120));
        assert_eq!(alerts.len(), 1);
        assert!(
            matches!(&alerts[0], Alert::ServiceRecovered { source } if source.to_string() == "hn=b")
        );
        assert_eq!(ts.lost_count(), 0);
        assert_eq!(ts.present_count(), 2);
    }

    #[test]
    fn stable_view_raises_nothing() {
        let mut ts = Troubleshooter::new(2.0);
        let hosts = [host("a"), host("b")];
        let loads = [load("a", 0.2), load("b", 0.3)];
        for s in 0..10 {
            assert!(ts.sweep(&hosts, &loads, t(s * 30)).is_empty());
        }
        assert_eq!(ts.alerts_raised, 0);
    }

    #[test]
    fn missing_load_attribute_ignored() {
        let mut ts = Troubleshooter::new(1.0);
        let bad_load = Entry::at("perf=load, hn=x")
            .unwrap()
            .with("note", "no numeric load");
        assert!(ts.sweep(&[host("x")], &[bad_load], t(0)).is_empty());
    }
}
