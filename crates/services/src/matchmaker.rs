//! Condor-style matchmaking over directory contents (§5.3).
//!
//! "We can construct directories that employ the Condor matchmaking
//! algorithm as a query evaluation mechanism" — the paper's example of an
//! *alternative* query model layered on the same GRIP/GRRP substrate
//! (reference \[23], Livny's matchmaker; used by \[38] for replica
//! selection).
//!
//! A simplified ClassAd model: both sides advertise. A **job ad** carries
//! requirements (a filter the machine must satisfy), a rank expression
//! (attribute to maximize/minimize), and its own attributes. A **machine
//! ad** is any directory entry, with optional symmetric requirements over
//! the job's attributes. The matchmaker pairs each job with the
//! best-ranked machine satisfying both sides — the *two-sided* matching
//! that one-directional LDAP search cannot express (§4.2's join
//! limitation, §8's note that Condor needs no enforced type system).

use gis_ldap::{Dn, Entry, Filter};

/// Rank direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rank {
    /// Prefer the machine with the largest value of the attribute.
    Maximize(&'static str),
    /// Prefer the machine with the smallest value of the attribute.
    Minimize(&'static str),
}

/// A job advertisement.
#[derive(Debug, Clone)]
pub struct JobAd {
    /// Job name (diagnostics).
    pub name: String,
    /// What the machine must satisfy.
    pub requirements: Filter,
    /// How to order acceptable machines.
    pub rank: Rank,
    /// The job's own attributes, visible to machine-side requirements
    /// (e.g. `memoryneeded`, `owner`, `vo`).
    pub ad: Entry,
}

impl JobAd {
    /// Build a job ad; `ad_attrs` become the job's advertised attributes.
    pub fn new(name: &str, requirements: Filter, rank: Rank, ad_attrs: &[(&str, &str)]) -> JobAd {
        let mut ad =
            Entry::new(Dn::parse(&format!("job={name}")).expect("valid job dn")).with_class("job");
        for (k, v) in ad_attrs {
            ad.add(k, *v);
        }
        JobAd {
            name: name.to_owned(),
            requirements,
            rank,
            ad,
        }
    }
}

/// A machine advertisement: the entry plus optional symmetric
/// requirements over the job ad.
#[derive(Debug, Clone)]
pub struct MachineAd {
    /// The machine's attributes (typically a `computer` entry from the
    /// directory).
    pub entry: Entry,
    /// What the *job* must satisfy for this machine to accept it; `None`
    /// accepts anything.
    pub requirements: Option<Filter>,
}

impl MachineAd {
    /// A machine that accepts any job.
    pub fn open(entry: Entry) -> MachineAd {
        MachineAd {
            entry,
            requirements: None,
        }
    }

    /// A machine with its own admission policy.
    pub fn demanding(entry: Entry, requirements: Filter) -> MachineAd {
        MachineAd {
            entry,
            requirements: Some(requirements),
        }
    }
}

/// One successful match.
#[derive(Debug, Clone)]
pub struct Match {
    /// The job.
    pub job: String,
    /// The matched machine's DN.
    pub machine: Dn,
    /// The rank value that won.
    pub rank_value: f64,
}

/// Match each job against the machine pool. Machines are not consumed:
/// this is the matchmaking *evaluation*, not the claiming protocol.
/// Returns one best match per matchable job, jobs in input order.
pub fn matchmake(jobs: &[JobAd], machines: &[MachineAd]) -> Vec<Match> {
    let mut out = Vec::new();
    for job in jobs {
        let mut best: Option<(f64, &MachineAd)> = None;
        for m in machines {
            // Two-sided acceptance.
            if !job.requirements.matches(&m.entry) {
                continue;
            }
            if let Some(mreq) = &m.requirements {
                if !mreq.matches(&job.ad) {
                    continue;
                }
            }
            let attr = match job.rank {
                Rank::Maximize(a) | Rank::Minimize(a) => a,
            };
            let Some(v) = m.entry.get_f64(attr) else {
                continue;
            };
            let better = match (&best, job.rank) {
                (None, _) => true,
                (Some((cur, _)), Rank::Maximize(_)) => v > *cur,
                (Some((cur, _)), Rank::Minimize(_)) => v < *cur,
            };
            if better {
                best = Some((v, m));
            }
        }
        if let Some((rank_value, m)) = best {
            out.push(Match {
                job: job.name.clone(),
                machine: m.entry.dn().clone(),
                rank_value,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(name: &str, system: &str, cpus: i64, load: f64) -> Entry {
        Entry::at(&format!("hn={name}"))
            .unwrap()
            .with_class("computer")
            .with("system", system)
            .with("cpucount", cpus)
            .with("load5", load)
    }

    #[test]
    fn basic_match_ranks_machines() {
        let jobs = vec![JobAd::new(
            "sim",
            Filter::parse("(&(objectclass=computer)(system=linux*))").unwrap(),
            Rank::Minimize("load5"),
            &[],
        )];
        let machines = vec![
            MachineAd::open(machine("a", "linux 2.4", 4, 2.0)),
            MachineAd::open(machine("b", "linux 2.4", 4, 0.5)),
            MachineAd::open(machine("c", "mips irix", 8, 0.1)), // wrong OS
        ];
        let matches = matchmake(&jobs, &machines);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].machine.to_string(), "hn=b");
        assert_eq!(matches[0].rank_value, 0.5);
    }

    #[test]
    fn two_sided_requirements() {
        // The machine only accepts jobs from the physics VO — a
        // constraint the job-side filter alone cannot express.
        let accept_physics = Filter::parse("(vo=physics)").unwrap();
        let machines = vec![
            MachineAd::demanding(machine("picky", "linux", 8, 0.1), accept_physics),
            MachineAd::open(machine("open", "linux", 2, 0.9)),
        ];
        let any_linux = Filter::parse("(system=linux)").unwrap();

        let physics_job = JobAd::new(
            "phys",
            any_linux.clone(),
            Rank::Maximize("cpucount"),
            &[("vo", "physics")],
        );
        let bio_job = JobAd::new(
            "bio",
            any_linux,
            Rank::Maximize("cpucount"),
            &[("vo", "biology")],
        );
        let matches = matchmake(&[physics_job, bio_job], &machines);
        assert_eq!(matches.len(), 2);
        assert_eq!(
            matches[0].machine.to_string(),
            "hn=picky",
            "physics gets the big box"
        );
        assert_eq!(
            matches[1].machine.to_string(),
            "hn=open",
            "biology rejected by picky"
        );
    }

    #[test]
    fn unmatched_jobs_absent_from_result() {
        let jobs = vec![JobAd::new(
            "impossible",
            Filter::parse("(cpucount>=512)").unwrap(),
            Rank::Minimize("load5"),
            &[],
        )];
        let machines = vec![MachineAd::open(machine("a", "linux", 4, 0.1))];
        assert!(matchmake(&jobs, &machines).is_empty());
    }

    #[test]
    fn missing_rank_attribute_disqualifies() {
        let jobs = vec![JobAd::new(
            "j",
            Filter::always(),
            Rank::Minimize("load5"),
            &[],
        )];
        let mut no_load = machine("x", "linux", 4, 0.0);
        no_load.remove("load5");
        let machines = vec![
            MachineAd::open(no_load),
            MachineAd::open(machine("y", "linux", 2, 3.0)),
        ];
        let matches = matchmake(&jobs, &machines);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].machine.to_string(), "hn=y");
    }

    #[test]
    fn no_type_enforcement_needed() {
        // §8: the matchmaker "does not enforce a type system" — ads with
        // informal attributes still match.
        let jobs = vec![JobAd::new(
            "adhoc",
            Filter::parse("(&(colour=blue)(wheels>=4))").unwrap(),
            Rank::Maximize("wheels"),
            &[],
        )];
        let mut car = Entry::at("thing=car").unwrap();
        car.add("colour", "blue").add("wheels", "4");
        let mut truck = Entry::at("thing=truck").unwrap();
        truck.add("colour", "blue").add("wheels", "6");
        let machines = vec![MachineAd::open(car), MachineAd::open(truck)];
        let matches = matchmake(&jobs, &machines);
        assert_eq!(matches[0].machine.to_string(), "thing=truck");
    }
}
