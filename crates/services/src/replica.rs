//! Replica selection service (§1).
//!
//! "A replica selection service within a data grid responds to requests
//! for the 'best' copy of files that are replicated on multiple storage
//! systems. Here, information sources can once again include system
//! configuration, instantaneous performance, and predictions, but for
//! storage systems and networks rather than computers."
//!
//! Phase 1 finds storage systems with a replica and enough free space
//! (via the VO directory); phase 2 asks the NWS gateway for the
//! *predicted* bandwidth from the consumer's site to each replica host
//! and picks the best.

use gis_core::SimDeployment;
use gis_ldap::{Dn, Filter, LdapUrl};
use gis_netsim::{NodeId, SimDuration};
use gis_proto::SearchSpec;

/// A replica choice.
#[derive(Debug, Clone)]
pub struct ReplicaChoice {
    /// The chosen storage entry's DN.
    pub store: Dn,
    /// Host part of the replica's location (the `hn` RDN value).
    pub host: String,
    /// Predicted bandwidth from the consumer to that host, Mbit/s.
    pub predicted_bandwidth: f64,
    /// How many replicas were considered.
    pub considered: usize,
}

/// The replica selection service.
#[derive(Debug, Clone)]
pub struct ReplicaSelector {
    /// VO directory listing storage systems.
    pub directory: LdapUrl,
    /// The GRIS fronting the NWS gateway.
    pub nws_gris: LdapUrl,
    /// Network name served by the gateway (`nn=<name>`).
    pub network: String,
    /// Per-query wait bound.
    pub query_wait: SimDuration,
}

impl ReplicaSelector {
    /// Create a selector.
    pub fn new(directory: LdapUrl, nws_gris: LdapUrl, network: &str) -> ReplicaSelector {
        ReplicaSelector {
            directory,
            nws_gris,
            network: network.to_owned(),
            query_wait: SimDuration::from_secs(10),
        }
    }

    /// Pick the replica of best predicted bandwidth to `consumer_site`
    /// among stores with at least `min_free_mb` free.
    pub fn select(
        &self,
        dep: &mut SimDeployment,
        client: NodeId,
        consumer_site: &str,
        min_free_mb: i64,
    ) -> Option<ReplicaChoice> {
        // Phase 1: storage discovery.
        let filter = Filter::parse(&format!("(&(objectclass=filesystem)(free>={min_free_mb}))"))
            .expect("valid filter");
        let (_, stores, _) = dep.search_and_wait(
            client,
            &self.directory,
            SearchSpec::subtree(Dn::root(), filter),
            self.query_wait,
        )?;
        let replicas: Vec<(Dn, String)> = stores
            .iter()
            .filter_map(|e| {
                let host = e
                    .dn()
                    .rdns()
                    .iter()
                    .find(|r| r.attr() == "hn")
                    .map(|r| r.value().to_owned())?;
                Some((e.dn().clone(), host))
            })
            .collect();
        if replicas.is_empty() {
            return None;
        }

        // Phase 2: predicted bandwidth per replica via the NWS gateway's
        // non-enumerable link namespace.
        let mut best: Option<ReplicaChoice> = None;
        let considered = replicas.len();
        for (store, host) in replicas {
            let link_dn = Dn::parse(&format!("link={consumer_site}-{host}, nn={}", self.network))
                .expect("valid link dn");
            let Some((_, entries, _)) = dep.search_and_wait(
                client,
                &self.nws_gris,
                SearchSpec::lookup(link_dn),
                self.query_wait,
            ) else {
                continue;
            };
            let Some(bw) = entries.iter().find_map(|e| e.get_f64("predictedbandwidth")) else {
                continue;
            };
            if best.as_ref().is_none_or(|b| bw > b.predicted_bandwidth) {
                best = Some(ReplicaChoice {
                    store,
                    host,
                    predicted_bandwidth: bw,
                    considered,
                });
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_core::SimDeployment;
    use gis_giis::{Giis, GiisConfig};
    use gis_gris::{Gris, GrisConfig, HostSpec, NwsGatewayProvider};
    use gis_netsim::{secs, SimDuration};
    use gis_nws::Nws;

    /// Deployment: 3 storage hosts registered in a VO directory plus an
    /// NWS gateway GRIS.
    fn build() -> (SimDeployment, ReplicaSelector, NodeId) {
        let mut dep = SimDeployment::new(31);
        let vo_url = LdapUrl::server("giis.datagrid");
        dep.add_giis(Giis::new(
            GiisConfig::chaining(vo_url.clone(), Dn::root()),
            secs(30),
            secs(90),
        ));
        for (i, name) in ["store1", "store2", "store3"].iter().enumerate() {
            let host = HostSpec::linux(name, 2);
            dep.add_standard_host(&host, 100 + i as u64, std::slice::from_ref(&vo_url));
        }
        // NWS gateway GRIS.
        let nws_url = LdapUrl::server("gris.nws");
        let mut nws_gris = Gris::new(
            GrisConfig::open(nws_url.clone(), Dn::parse("nn=wan").unwrap()),
            secs(30),
            secs(90),
        );
        nws_gris.add_provider(Box::new(NwsGatewayProvider::new(
            "wan",
            Nws::new(7, SimDuration::from_secs(10)),
        )));
        dep.add_gris(nws_gris);

        let client = dep.add_client("consumer");
        let selector = ReplicaSelector::new(vo_url, nws_url, "wan");
        (dep, selector, client)
    }

    #[test]
    fn selects_highest_predicted_bandwidth_replica() {
        let (mut dep, selector, client) = build();
        dep.run_for(secs(3));
        let choice = selector
            .select(&mut dep, client, "clientsite", 1)
            .expect("a replica is chosen");
        assert_eq!(choice.considered, 3);
        assert!(choice.predicted_bandwidth > 0.0);
        assert!(["store1", "store2", "store3"].contains(&choice.host.as_str()));

        // The choice is the argmax over the three links: verify against
        // direct gateway queries.
        let mut best_direct: Option<(String, f64)> = None;
        for host in ["store1", "store2", "store3"] {
            let dn = Dn::parse(&format!("link=clientsite-{host}, nn=wan")).unwrap();
            let (_, entries, _) = dep
                .search_and_wait(client, &selector.nws_gris, SearchSpec::lookup(dn), secs(10))
                .unwrap();
            let bw = entries[0].get_f64("predictedbandwidth").unwrap();
            if best_direct.as_ref().is_none_or(|(_, b)| bw > *b) {
                best_direct = Some((host.to_owned(), bw));
            }
        }
        assert_eq!(choice.host, best_direct.unwrap().0);
    }

    #[test]
    fn free_space_floor_filters_replicas() {
        let (mut dep, selector, client) = build();
        dep.run_for(secs(3));
        // An absurd floor removes every replica.
        assert!(selector
            .select(&mut dep, client, "clientsite", 10_000_000)
            .is_none());
    }
}
