//! Application adaptation agent (§1).
//!
//! "An application adaptation agent monitors both a running application
//! and external resource availability and modifies application behavior
//! ... and/or its resource consumption (e.g., migrates to other
//! resources) if ... these changes are thought likely to improve
//! performance."
//!
//! Pure decision logic with hysteresis: the agent requires `patience`
//! consecutive over-threshold observations before migrating, and only
//! migrates when the alternative is meaningfully better (improvement
//! factor), preventing oscillation.

use gis_ldap::Dn;
use gis_netsim::SimTime;

/// One migration record.
#[derive(Debug, Clone, PartialEq)]
pub struct Migration {
    /// When the agent decided to move.
    pub at: SimTime,
    /// Where it moved from.
    pub from: Dn,
    /// Where it moved to.
    pub to: Dn,
}

/// The adaptation agent's decision state.
#[derive(Debug)]
pub struct AdaptationAgent {
    /// Where the application currently runs.
    pub current_host: Dn,
    /// Load above which the host is considered overloaded.
    pub load_threshold: f64,
    /// Consecutive overloaded observations required before migrating.
    pub patience: u32,
    /// The alternative must have load below `improvement_factor ×
    /// current` to justify a move.
    pub improvement_factor: f64,
    consecutive_over: u32,
    /// Completed migrations, oldest first.
    pub migrations: Vec<Migration>,
}

impl AdaptationAgent {
    /// Create an agent running on `host`.
    pub fn new(host: Dn, load_threshold: f64, patience: u32) -> AdaptationAgent {
        AdaptationAgent {
            current_host: host,
            load_threshold,
            patience,
            improvement_factor: 0.5,
            consecutive_over: 0,
            migrations: Vec::new(),
        }
    }

    /// Feed one monitoring observation: the current host's load and the
    /// best known alternative `(host, load)`. Returns the new host when
    /// the agent decides to migrate.
    pub fn observe(
        &mut self,
        now: SimTime,
        current_load: f64,
        best_alternative: Option<(Dn, f64)>,
    ) -> Option<Dn> {
        if current_load <= self.load_threshold {
            self.consecutive_over = 0;
            return None;
        }
        self.consecutive_over += 1;
        if self.consecutive_over < self.patience {
            return None;
        }
        let (alt, alt_load) = best_alternative?;
        if alt == self.current_host {
            return None;
        }
        if alt_load >= current_load * self.improvement_factor {
            return None; // not enough improvement to justify a move
        }
        self.migrations.push(Migration {
            at: now,
            from: self.current_host.clone(),
            to: alt.clone(),
        });
        self.current_host = alt.clone();
        self.consecutive_over = 0;
        Some(alt)
    }

    /// How many consecutive overload observations are pending.
    pub fn pressure(&self) -> u32 {
        self.consecutive_over
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_netsim::secs;

    fn dn(s: &str) -> Dn {
        Dn::parse(s).unwrap()
    }

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + secs(s)
    }

    #[test]
    fn migrates_after_sustained_overload() {
        let mut agent = AdaptationAgent::new(dn("hn=busy"), 2.0, 3);
        let alt = Some((dn("hn=idle"), 0.1));
        assert_eq!(agent.observe(t(0), 5.0, alt.clone()), None);
        assert_eq!(agent.observe(t(10), 5.0, alt.clone()), None);
        assert_eq!(agent.pressure(), 2);
        let moved = agent.observe(t(20), 5.0, alt);
        assert_eq!(moved, Some(dn("hn=idle")));
        assert_eq!(agent.current_host, dn("hn=idle"));
        assert_eq!(agent.migrations.len(), 1);
        assert_eq!(agent.migrations[0].from, dn("hn=busy"));
    }

    #[test]
    fn transient_spike_does_not_migrate() {
        let mut agent = AdaptationAgent::new(dn("hn=a"), 2.0, 3);
        let alt = Some((dn("hn=b"), 0.1));
        agent.observe(t(0), 5.0, alt.clone());
        agent.observe(t(10), 5.0, alt.clone());
        // Load recovers: pressure resets.
        agent.observe(t(20), 1.0, alt.clone());
        assert_eq!(agent.pressure(), 0);
        agent.observe(t(30), 5.0, alt.clone());
        agent.observe(t(40), 5.0, alt);
        assert!(agent.migrations.is_empty());
    }

    #[test]
    fn insufficient_improvement_blocks_migration() {
        let mut agent = AdaptationAgent::new(dn("hn=a"), 2.0, 1);
        // Alternative at 80% of current load: below the 0.5 factor? No.
        assert_eq!(agent.observe(t(0), 5.0, Some((dn("hn=b"), 4.0))), None);
        assert!(agent.migrations.is_empty());
        // A genuinely better host triggers the move.
        assert_eq!(
            agent.observe(t(10), 5.0, Some((dn("hn=b"), 1.0))),
            Some(dn("hn=b"))
        );
    }

    #[test]
    fn no_alternative_means_no_move() {
        let mut agent = AdaptationAgent::new(dn("hn=a"), 2.0, 1);
        assert_eq!(agent.observe(t(0), 9.0, None), None);
        // Alternative equal to current host is not a move.
        assert_eq!(agent.observe(t(1), 9.0, Some((dn("hn=a"), 0.0))), None);
        assert!(agent.migrations.is_empty());
    }
}
