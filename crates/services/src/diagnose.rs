//! Performance diagnosis tool (§1).
//!
//! "A performance diagnosis tool, invoked by a user when anomalous
//! behavior is detected, discovers what information sources are
//! associated with an application and its resources (e.g., application
//! sensors, network sensors, historical information sources) and
//! accesses these information sources as it seeks to diagnose the poor
//! performance."
//!
//! Given where an application runs and which peer it talks to, the tool
//! gathers host load, queue depth, filesystem space and NWS link
//! forecasts through the information service, applies thresholds, and
//! returns a ranked list of suspected causes.

use gis_core::SimDeployment;
use gis_ldap::{Dn, Filter, LdapUrl};
use gis_netsim::{NodeId, SimDuration};
use gis_proto::SearchSpec;

/// A suspected cause of poor performance, ranked by severity.
#[derive(Debug, Clone, PartialEq)]
pub enum Finding {
    /// Host load exceeds the CPU count (compute contention).
    HostOverloaded {
        /// Observed 5-minute load.
        load5: f64,
        /// CPUs available.
        cpus: i64,
    },
    /// Batch queue backlog (scheduling delay).
    QueueBacklog {
        /// Jobs waiting.
        jobs: i64,
    },
    /// Scratch space nearly exhausted (I/O stalls, failed writes).
    DiskNearlyFull {
        /// Free MB remaining.
        free_mb: i64,
        /// Fraction free.
        fraction_free: f64,
    },
    /// The network path to the peer is predicted to be slow.
    SlowLink {
        /// Peer host.
        peer: String,
        /// Predicted bandwidth, Mbit/s.
        predicted_mbps: f64,
    },
    /// A required information source could not be reached — itself a
    /// diagnosis ("extended failure of critical services").
    SourceUnavailable {
        /// What could not be consulted.
        what: String,
    },
}

impl Finding {
    /// Rough severity for ranking (higher = report first).
    fn severity(&self) -> u8 {
        match self {
            Finding::SourceUnavailable { .. } => 5,
            Finding::HostOverloaded { .. } => 4,
            Finding::DiskNearlyFull { .. } => 3,
            Finding::SlowLink { .. } => 2,
            Finding::QueueBacklog { .. } => 1,
        }
    }
}

/// A complete diagnosis.
#[derive(Debug, Clone)]
pub struct Diagnosis {
    /// Suspected causes, most severe first. Empty = nothing anomalous.
    pub findings: Vec<Finding>,
    /// How many information sources were consulted.
    pub sources_consulted: usize,
}

/// Thresholds for the heuristics.
#[derive(Debug, Clone)]
pub struct DiagnosisConfig {
    /// VO directory to discover through.
    pub directory: LdapUrl,
    /// NWS gateway GRIS (optional; link checks skipped without it).
    pub nws_gris: Option<LdapUrl>,
    /// NWS network name.
    pub network: String,
    /// Load per CPU above which the host counts as overloaded.
    pub load_per_cpu: f64,
    /// Queue depth above which backlog is reported.
    pub queue_threshold: i64,
    /// Fraction of disk free below which the disk is "nearly full".
    pub min_fraction_free: f64,
    /// Predicted bandwidth below which the link is "slow" (Mbit/s).
    pub min_bandwidth_mbps: f64,
    /// Per-query wait bound.
    pub query_wait: SimDuration,
}

impl DiagnosisConfig {
    /// Reasonable defaults over a VO directory.
    pub fn new(directory: LdapUrl) -> DiagnosisConfig {
        DiagnosisConfig {
            directory,
            nws_gris: None,
            network: "wan".into(),
            load_per_cpu: 1.0,
            queue_threshold: 10,
            min_fraction_free: 0.10,
            min_bandwidth_mbps: 10.0,
            query_wait: SimDuration::from_secs(10),
        }
    }
}

/// Run a diagnosis for an application on `host` talking to `peer`.
pub fn diagnose(
    dep: &mut SimDeployment,
    client: NodeId,
    config: &DiagnosisConfig,
    host: &Dn,
    peer: Option<&str>,
) -> Diagnosis {
    let mut findings = Vec::new();
    let mut sources = 0;

    // Discover every information source under the host's namespace.
    let subtree = dep.search_and_wait(
        client,
        &config.directory,
        SearchSpec::subtree(host.clone(), Filter::always()),
        config.query_wait,
    );
    let Some((_, entries, _)) = subtree else {
        return Diagnosis {
            findings: vec![Finding::SourceUnavailable {
                what: format!("directory {}", config.directory),
            }],
            sources_consulted: 0,
        };
    };
    if entries.is_empty() {
        findings.push(Finding::SourceUnavailable {
            what: format!("host subtree {host}"),
        });
    }
    sources += 1;

    let mut cpus = 1i64;
    for e in &entries {
        if e.has_class("computer") {
            cpus = e.get_i64("cpucount").unwrap_or(1).max(1);
        }
    }
    for e in &entries {
        if e.has_class("loadaverage") {
            if let Some(load5) = e.get_f64("load5") {
                sources += 1;
                if load5 > config.load_per_cpu * cpus as f64 {
                    findings.push(Finding::HostOverloaded { load5, cpus });
                }
            }
        }
        if e.has_class("queue") {
            if let Some(jobs) = e.get_i64("jobcount") {
                sources += 1;
                if jobs > config.queue_threshold {
                    findings.push(Finding::QueueBacklog { jobs });
                }
            }
        }
        if e.has_class("filesystem") {
            if let (Some(free), Some(total)) = (e.get_i64("free"), e.get_i64("total")) {
                sources += 1;
                let fraction = free as f64 / total.max(1) as f64;
                if fraction < config.min_fraction_free {
                    findings.push(Finding::DiskNearlyFull {
                        free_mb: free,
                        fraction_free: fraction,
                    });
                }
            }
        }
    }

    // Network path to the peer via the NWS gateway.
    if let (Some(nws), Some(peer)) = (&config.nws_gris, peer) {
        let host_name = host
            .rdns()
            .iter()
            .find(|r| r.attr() == "hn")
            .map(|r| r.value().to_owned())
            .unwrap_or_default();
        let link_dn = Dn::parse(&format!("link={host_name}-{peer}, nn={}", config.network))
            .expect("valid link dn");
        match dep.search_and_wait(client, nws, SearchSpec::lookup(link_dn), config.query_wait) {
            Some((_, link_entries, _)) if !link_entries.is_empty() => {
                sources += 1;
                if let Some(bw) = link_entries[0].get_f64("predictedbandwidth") {
                    if bw < config.min_bandwidth_mbps {
                        findings.push(Finding::SlowLink {
                            peer: peer.to_owned(),
                            predicted_mbps: bw,
                        });
                    }
                }
            }
            _ => findings.push(Finding::SourceUnavailable {
                what: format!("NWS gateway {nws}"),
            }),
        }
    }

    findings.sort_by_key(|f| std::cmp::Reverse(f.severity()));
    Diagnosis {
        findings,
        sources_consulted: sources,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_core::SimDeployment;
    use gis_giis::{Giis, GiisConfig};
    use gis_gris::{Gris, GrisConfig, HostSpec, NwsGatewayProvider};
    use gis_netsim::secs;
    use gis_nws::Nws;

    fn build() -> (SimDeployment, DiagnosisConfig, NodeId, Dn) {
        let mut dep = SimDeployment::new(81);
        let vo_url = LdapUrl::server("giis.vo");
        dep.add_giis(Giis::new(
            GiisConfig::chaining(vo_url.clone(), Dn::root()),
            secs(30),
            secs(90),
        ));
        let host = HostSpec::linux("app", 2);
        dep.add_standard_host(&host, 3, std::slice::from_ref(&vo_url));
        // NWS gateway.
        let nws_url = LdapUrl::server("gris.nws");
        let mut nws_gris = Gris::new(
            GrisConfig::open(nws_url.clone(), Dn::parse("nn=wan").unwrap()),
            secs(30),
            secs(90),
        );
        nws_gris.add_provider(Box::new(NwsGatewayProvider::new(
            "wan",
            Nws::new(5, secs(10)),
        )));
        dep.add_gris(nws_gris);
        let client = dep.add_client("diagnoser");
        dep.run_for(secs(2));

        let mut config = DiagnosisConfig::new(vo_url);
        config.nws_gris = Some(nws_url);
        (dep, config, client, host.dn())
    }

    #[test]
    fn healthy_system_yields_no_findings() {
        let (mut dep, mut config, client, host) = build();
        // Thresholds far above anything the synthetic sensors produce.
        config.load_per_cpu = 1000.0;
        config.queue_threshold = 1_000_000;
        config.min_fraction_free = 0.0;
        config.min_bandwidth_mbps = 0.0;
        let d = diagnose(&mut dep, client, &config, &host, Some("peer"));
        assert!(d.findings.is_empty(), "{:?}", d.findings);
        assert!(d.sources_consulted >= 4, "host, load, queue, fs, link");
    }

    #[test]
    fn overload_detected_and_ranked_first() {
        let (mut dep, mut config, client, host) = build();
        // Absurdly strict thresholds: everything fires.
        config.load_per_cpu = 0.0;
        config.queue_threshold = -1;
        config.min_fraction_free = 1.1;
        config.min_bandwidth_mbps = 1e9;
        let d = diagnose(&mut dep, client, &config, &host, Some("peer"));
        assert!(d.findings.len() >= 4);
        // Severity ordering: overload before disk before link before queue.
        let severities: Vec<u8> = d
            .findings
            .iter()
            .map(|f| match f {
                Finding::SourceUnavailable { .. } => 5,
                Finding::HostOverloaded { .. } => 4,
                Finding::DiskNearlyFull { .. } => 3,
                Finding::SlowLink { .. } => 2,
                Finding::QueueBacklog { .. } => 1,
            })
            .collect();
        let mut sorted = severities.clone();
        sorted.sort_by(|a, b| b.cmp(a));
        assert_eq!(severities, sorted, "findings ranked by severity");
    }

    #[test]
    fn missing_nws_reported_as_source_unavailable() {
        let (mut dep, mut config, client, host) = build();
        config.nws_gris = Some(LdapUrl::server("gris.nws-gone"));
        config.load_per_cpu = 1000.0;
        config.queue_threshold = 1_000_000;
        config.min_fraction_free = 0.0;
        let d = diagnose(&mut dep, client, &config, &host, Some("peer"));
        assert_eq!(
            d.findings,
            vec![Finding::SourceUnavailable {
                what: "NWS gateway ldap://gris.nws-gone:389".into()
            }]
        );
    }

    #[test]
    fn unknown_host_reported() {
        let (mut dep, config, client, _) = build();
        let d = diagnose(
            &mut dep,
            client,
            &config,
            &Dn::parse("hn=ghost").unwrap(),
            None,
        );
        assert!(matches!(d.findings[0], Finding::SourceUnavailable { .. }));
    }
}
