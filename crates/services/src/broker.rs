//! Superscheduler / resource broker (§1).
//!
//! "A superscheduler routes computational requests to the 'best'
//! available computer in a Grid ... 'best' can encompass issues of
//! architecture, installed software, performance, availability, and
//! policy."
//!
//! The broker runs the canonical two-phase pattern from §7: a directory
//! search over relatively static attributes narrows the candidate set,
//! then per-candidate enquiries fetch the dynamic load information; the
//! final ranking combines both.

use gis_core::SimDeployment;
use gis_ldap::{Dn, Filter, LdapUrl};
use gis_netsim::{NodeId, SimDuration};
use gis_proto::{ResultCode, SearchSpec};

/// What a job requires of a host.
#[derive(Debug, Clone)]
pub struct Requirements {
    /// Filter over static host attributes, e.g.
    /// `(&(objectclass=computer)(system=linux*))`.
    pub static_filter: Filter,
    /// Minimum CPU count.
    pub min_cpus: i64,
    /// Maximum acceptable 5-minute load average.
    pub max_load: f64,
}

impl Requirements {
    /// Any Linux host with at least `cpus` CPUs and load below `max_load`.
    pub fn linux(cpus: i64, max_load: f64) -> Requirements {
        Requirements {
            static_filter: Filter::parse("(&(objectclass=computer)(system=linux*))")
                .expect("valid filter"),
            min_cpus: cpus,
            max_load,
        }
    }
}

/// A scheduling decision.
#[derive(Debug, Clone)]
pub struct Selection {
    /// The chosen host.
    pub host: Dn,
    /// Its observed 5-minute load.
    pub load5: f64,
    /// How many hosts passed the static phase.
    pub candidates: usize,
    /// How many candidates had usable dynamic information.
    pub measured: usize,
}

/// The broker itself: stateless apart from its directory address.
#[derive(Debug, Clone)]
pub struct Broker {
    /// The VO aggregate directory the broker consults.
    pub directory: LdapUrl,
    /// Per-query wait bound.
    pub query_wait: SimDuration,
}

impl Broker {
    /// Create a broker over a VO directory.
    pub fn new(directory: LdapUrl) -> Broker {
        Broker {
            directory,
            query_wait: SimDuration::from_secs(10),
        }
    }

    /// Select the least-loaded acceptable host, driving the simulated
    /// deployment from `client`.
    pub fn select(
        &self,
        dep: &mut SimDeployment,
        client: NodeId,
        req: &Requirements,
    ) -> Option<Selection> {
        // Phase 1: static discovery through the aggregate directory.
        let (code, computers, _) = dep.search_and_wait(
            client,
            &self.directory,
            SearchSpec::subtree(Dn::root(), req.static_filter.clone()),
            self.query_wait,
        )?;
        if code != ResultCode::Success && code != ResultCode::PartialResults {
            return None;
        }
        let candidates: Vec<Dn> = computers
            .iter()
            .filter(|e| e.get_i64("cpucount").unwrap_or(0) >= req.min_cpus)
            .map(|e| e.dn().clone())
            .collect();
        if candidates.is_empty() {
            return None;
        }

        // Phase 2: per-candidate dynamic enquiry (scoped through the
        // directory, which chains to the authoritative GRIS).
        let mut best: Option<(Dn, f64)> = None;
        let mut measured = 0;
        for host in &candidates {
            let Some((_, loads, _)) = dep.search_and_wait(
                client,
                &self.directory,
                SearchSpec::subtree(host.clone(), Filter::parse("(load5=*)").expect("valid")),
                self.query_wait,
            ) else {
                continue;
            };
            let Some(load5) = loads.iter().find_map(|e| e.get_f64("load5")) else {
                continue;
            };
            measured += 1;
            if load5 > req.max_load {
                continue;
            }
            if best.as_ref().is_none_or(|(_, b)| load5 < *b) {
                best = Some((host.clone(), load5));
            }
        }
        let (host, load5) = best?;
        Some(Selection {
            host,
            load5,
            candidates: candidates.len(),
            measured,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_core::scenario::figure5;
    use gis_netsim::secs;

    #[test]
    fn broker_selects_least_loaded_linux_host() {
        let mut sc = figure5(21);
        sc.dep.run_for(secs(3));
        let broker = Broker::new(sc.vo_url.clone());
        let sel = broker
            .select(&mut sc.dep, sc.client, &Requirements::linux(1, 100.0))
            .expect("a host is selected");
        // Figure 5 has 5 Linux hosts (the individual R1 is IRIX).
        assert_eq!(sel.candidates, 5);
        assert_eq!(sel.measured, 5);
        assert!(sel.load5 >= 0.0);
        assert!(!sel.host.is_root());
    }

    #[test]
    fn broker_respects_cpu_floor() {
        let mut sc = figure5(22);
        sc.dep.run_for(secs(3));
        let broker = Broker::new(sc.vo_url.clone());
        // Impossible requirement: no host has 64 CPUs.
        assert!(broker
            .select(&mut sc.dep, sc.client, &Requirements::linux(64, 100.0))
            .is_none());
    }

    #[test]
    fn broker_respects_load_ceiling() {
        let mut sc = figure5(23);
        sc.dep.run_for(secs(3));
        let broker = Broker::new(sc.vo_url.clone());
        // Load ceiling of 0 is unmeetable (loads are > 0).
        let sel = broker.select(&mut sc.dep, sc.client, &Requirements::linux(1, 0.0));
        assert!(sel.is_none());
    }

    #[test]
    fn broker_survives_partitioned_hosts() {
        let mut sc = figure5(24);
        sc.dep.run_for(secs(3));
        // Partition center O2's hosts away from everything else.
        let o2_hosts: Vec<_> = sc
            .hosts
            .iter()
            .filter(|(_, _, ns)| ns.to_string().ends_with("o=O2"))
            .map(|(n, _, _)| *n)
            .collect();
        let everyone_else: Vec<_> = (0..sc.dep.sim.node_count() as u32)
            .map(gis_netsim::NodeId)
            .filter(|n| !o2_hosts.contains(n))
            .collect();
        sc.dep.sim.partition_between(&o2_hosts, &everyone_else);
        // Soft state expires for the unreachable hosts.
        sc.dep.run_for(secs(120));

        let broker = Broker::new(sc.vo_url.clone());
        let sel = broker
            .select(&mut sc.dep, sc.client, &Requirements::linux(1, 100.0))
            .expect("brokering continues on the surviving fragment");
        assert_eq!(sel.candidates, 3, "only O1's Linux hosts remain visible");
    }
}
