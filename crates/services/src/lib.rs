//! Higher-level Grid services built on the information service (§1, §6
//! of the paper): "these same protocols, and many of the same
//! strategies, can be used to construct a variety of other services and
//! applications, concerned ... with such things as brokering,
//! monitoring, application adaptation, troubleshooting, and performance
//! diagnosis."
//!
//! * [`broker`] — the superscheduler (two-phase static/dynamic
//!   selection);
//! * [`replica`] — replica selection over storage + NWS predictions;
//! * [`troubleshoot`] — anomaly sweeps (overload, lost/recovered
//!   services);
//! * [`mod@diagnose`] — the performance diagnosis tool (source discovery +
//!   ranked findings);
//! * [`adapt`] — the application adaptation agent (migration with
//!   hysteresis);
//! * [`heartbeat`] — the Heartbeat-Monitor successor scoring GRRP's
//!   unreliable failure detector;
//! * [`matchmaker`] — §5.3's Condor-style two-sided matchmaking as an
//!   alternative query-evaluation mechanism over directory contents.

#![warn(missing_docs)]

pub mod adapt;
pub mod broker;
pub mod diagnose;
pub mod heartbeat;
pub mod matchmaker;
pub mod replica;
pub mod troubleshoot;

pub use adapt::{AdaptationAgent, Migration};
pub use broker::{Broker, Requirements, Selection};
#[doc(inline)]
pub use diagnose::{diagnose, Diagnosis, DiagnosisConfig, Finding};
pub use heartbeat::{HeartbeatMonitor, Transition};
pub use matchmaker::{matchmake, JobAd, MachineAd, Match, Rank};
pub use replica::{ReplicaChoice, ReplicaSelector};
pub use troubleshoot::{Alert, Troubleshooter};
