//! Property tests for the security substrate: signature soundness under
//! tampering, chain verification, ACL monotonicity.

use gis_gsi::{
    Acl, Authenticator, BindToken, CertAuthority, Grant, KeyPair, Principal, Requester, TrustStore,
    Visibility,
};
use gis_ldap::Entry;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn signatures_verify_and_bind_to_message(seed in any::<u64>(), msg in prop::collection::vec(any::<u8>(), 0..100), other in prop::collection::vec(any::<u8>(), 0..100)) {
        let kp = KeyPair::generate(seed);
        let sig = kp.sign(&msg);
        prop_assert!(kp.public.verify(&msg, &sig));
        if gis_gsi::hash64(&msg) != gis_gsi::hash64(&other) {
            prop_assert!(!kp.public.verify(&other, &sig), "different digest must not verify");
        }
    }

    #[test]
    fn cross_key_verification_fails(s1 in any::<u64>(), s2 in any::<u64>(), msg in prop::collection::vec(any::<u8>(), 1..64)) {
        prop_assume!(s1 != s2);
        let a = KeyPair::generate(s1);
        let b = KeyPair::generate(s2);
        let sig = a.sign(&msg);
        prop_assert!(!b.public.verify(&msg, &sig));
    }

    #[test]
    fn issued_credentials_always_verify(ca_seed in any::<u64>(), subject in "[a-zA-Z0-9/=_ .-]{1,40}", depth in 0usize..4) {
        let ca = CertAuthority::new("/O=Grid/CN=CA", ca_seed);
        let mut trust = TrustStore::new();
        trust.add_ca(&ca);
        let mut cred = ca.issue(subject.clone());
        for i in 0..depth {
            cred = cred.delegate(ca_seed.wrapping_add(i as u64));
        }
        let verified = trust.verify_chain(&cred.chain);
        prop_assert_eq!(verified.as_deref(), Some(subject.as_str()));
        prop_assert_eq!(cred.subject(), subject);
    }

    #[test]
    fn bind_token_roundtrip_and_target_binding(
        ca_seed in any::<u64>(),
        subject in "[a-zA-Z0-9/=_.-]{1,30}",
        target in "[a-z0-9.:-]{1,20}",
        wrong_target in "[a-z0-9.:-]{1,20}",
    ) {
        let ca = CertAuthority::new("/O=Grid/CN=CA", ca_seed);
        let mut trust = TrustStore::new();
        trust.add_ca(&ca);
        let cred = ca.issue(subject.clone());
        let token = BindToken::create(&cred, &target);
        let bytes = token.to_bytes();
        prop_assert_eq!(BindToken::from_bytes(&bytes).unwrap(), token);

        let auth = Authenticator::new(trust.clone(), target.clone());
        let authed = auth.authenticate(&bytes);
        prop_assert_eq!(authed.as_deref(), Some(subject.as_str()));
        if wrong_target != target {
            let wrong = Authenticator::new(trust, wrong_target);
            prop_assert_eq!(wrong.authenticate(&bytes), None);
        }
    }

    #[test]
    fn tampered_bind_tokens_rejected(
        ca_seed in any::<u64>(),
        flips in prop::collection::vec((any::<usize>(), 0u8..8), 1..6)
    ) {
        let ca = CertAuthority::new("/O=Grid/CN=CA", ca_seed);
        let mut trust = TrustStore::new();
        trust.add_ca(&ca);
        let cred = ca.issue("/CN=alice");
        let mut bytes = BindToken::create(&cred, "svc").to_bytes();
        let mut changed = false;
        for (pos, bit) in flips {
            let idx = pos % bytes.len();
            bytes[idx] ^= 1 << bit;
            changed = true;
        }
        prop_assume!(changed);
        let auth = Authenticator::new(trust, "svc");
        // Either it fails to parse, fails to verify — or (with tiny
        // probability under a 64-bit toy hash) still verifies as alice.
        // What it must NEVER do is authenticate as someone else.
        if let Some(s) = auth.authenticate(&bytes) {
            prop_assert_eq!(s, "/CN=alice");
        }
    }

    #[test]
    fn acl_visibility_is_monotone_in_privilege(
        attrs in prop::collection::vec("[a-z]{1,6}", 1..5),
        subject in "[a-z]{1,8}",
    ) {
        // An authenticated subject must see at least whatever anonymous
        // sees, when the ACL grants by privilege tiers.
        let acl = Acl::default()
            .with_rule(Principal::Anonymous, Grant::Attrs(attrs.clone()))
            .with_rule(Principal::Authenticated, Grant::Attrs(vec!["extra".into()]))
            .with_rule(Principal::Subject(format!("/CN={subject}")), Grant::All);

        let mut entry = Entry::at("hn=h").unwrap().with_class("computer").with("extra", "1");
        for a in &attrs {
            entry.add(a, "v");
        }

        let rank = |v: &Visibility| match v {
            Visibility::Hidden => 0usize,
            Visibility::Existence => 1,
            Visibility::Attrs(set) => 2 + set.len(),
            Visibility::Full => usize::MAX,
        };
        let anon = acl.visibility(&Requester::anonymous());
        let user = acl.visibility(&Requester::subject("/CN=someone"));
        let named = acl.visibility(&Requester::subject(format!("/CN={subject}")));
        prop_assert!(rank(&anon) <= rank(&user));
        prop_assert!(rank(&user) <= rank(&named));

        // Redaction output is consistent with visibility: every attribute
        // in the redacted entry is visible at that level.
        if let Some(red) = acl.redact(&entry, &Requester::subject("/CN=someone")) {
            if let Visibility::Attrs(set) = acl.visibility(&Requester::subject("/CN=someone")) {
                for (name, _) in red.attrs() {
                    // The naming attribute is always present.
                    if name != "hn" {
                        prop_assert!(set.contains(name), "{name} leaked past ACL");
                    }
                }
            }
        }
    }

    #[test]
    fn redaction_never_invents_values(attrs in prop::collection::vec(("[a-z]{1,6}", "[a-z0-9]{1,8}"), 0..6)) {
        let mut entry = Entry::at("hn=h").unwrap().with_class("computer");
        for (a, v) in &attrs {
            entry.add(a, v.clone());
        }
        let acl = Acl::default()
            .with_rule(Principal::Anonymous, Grant::Attrs(vec!["objectclass".into()]));
        if let Some(red) = acl.redact(&entry, &Requester::anonymous()) {
            for (name, values) in red.attrs() {
                for v in values {
                    prop_assert!(
                        entry.get(name).contains(v) || name == "hn",
                        "redacted entry contains fabricated value {name}={v}"
                    );
                }
            }
        }
    }
}
