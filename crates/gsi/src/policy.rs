//! Unified security configuration: one [`SecurityPolicy`] value
//! consumed by every entry point that touches the wire.
//!
//! §7 describes three postures a peer can take towards the information
//! protocols: fully open ("authenticated queries are not required"),
//! mutually authenticated ("GSI public-key security mechanisms are used
//! to ... achieve mutual authentication"), and identity-based policy
//! ("policies based on identity credentials presented by the requesting
//! entity"). Before this module those postures were assembled ad hoc
//! from up to four knobs (`policy`, `authenticator`, `credential`,
//! `grrp_trust`) smeared across the GRIS and GIIS configs; a
//! [`SecurityPolicy`] names the posture once and derives the pieces:
//!
//! * [`SecurityPolicy::anonymous`] — no handshake, no signing, open ACLs;
//! * [`SecurityPolicy::authenticated`] — mutual-auth handshake required,
//!   registrations signed and verified, open ACLs for anyone who
//!   authenticates;
//! * [`SecurityPolicy::identity`] — as authenticated, plus a
//!   [`PolicyMap`] of per-subtree/per-attribute ACLs keyed on the
//!   authenticated identity ([`SecurityPolicy::with_policy_map`]).
//!
//! [`ServiceConfig`] carries the policy together with the knobs every
//! service shares (endpoint URL, observability), so GRIS and GIIS
//! configs hold security in exactly one place.

use crate::acl::PolicyMap;
use crate::auth::Authenticator;
use crate::cert::{Credential, TrustStore};
use gis_ldap::LdapUrl;
use gis_netsim::SimDuration;

/// How much §7 security a peer demands of the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrustTier {
    /// No handshake required or offered; everyone is anonymous
    /// (§7's "no restriction on the information provided" model).
    #[default]
    Anonymous,
    /// Mutual authentication required before any GRIP/GRRP traffic;
    /// any subject chaining to the trust store is served in full.
    Authenticated,
    /// Mutual authentication plus identity-based ACLs: what an
    /// authenticated subject sees is filtered through the policy map.
    Identity,
}

/// One security posture for a service endpoint or client connection.
///
/// Construct with [`SecurityPolicy::anonymous`],
/// [`SecurityPolicy::authenticated`], or [`SecurityPolicy::identity`];
/// refine with [`SecurityPolicy::with_policy_map`]. Consumed uniformly
/// by `ServeOptions::security(...)` and `LiveClient::builder(...)`.
#[derive(Debug, Clone)]
pub struct SecurityPolicy {
    /// The posture.
    pub tier: TrustTier,
    /// This peer's own identity: signs registrations, mints handshake
    /// bind tokens, and (server side) proves the service's identity
    /// back to clients demanding mutual auth.
    pub credential: Option<Credential>,
    /// CAs this peer trusts when verifying the other side.
    pub trust: Option<TrustStore>,
    /// Per-subtree access control applied to outgoing results.
    pub policy_map: PolicyMap,
}

impl Default for SecurityPolicy {
    fn default() -> SecurityPolicy {
        SecurityPolicy {
            tier: TrustTier::Anonymous,
            credential: None,
            trust: None,
            policy_map: PolicyMap::open(),
        }
    }
}

impl SecurityPolicy {
    /// The open model: no handshake, no signing, everything public.
    pub fn anonymous() -> SecurityPolicy {
        SecurityPolicy::default()
    }

    /// Mutual authentication with `credential`, verifying the peer
    /// against `trust`. ACLs stay open: any authenticated subject is
    /// served in full.
    pub fn authenticated(credential: Credential, trust: TrustStore) -> SecurityPolicy {
        SecurityPolicy {
            tier: TrustTier::Authenticated,
            credential: Some(credential),
            trust: Some(trust),
            policy_map: PolicyMap::open(),
        }
    }

    /// Mutual authentication plus identity-based ACLs; attach the map
    /// with [`SecurityPolicy::with_policy_map`].
    pub fn identity(credential: Credential, trust: TrustStore) -> SecurityPolicy {
        SecurityPolicy {
            tier: TrustTier::Identity,
            ..SecurityPolicy::authenticated(credential, trust)
        }
    }

    /// Replace the ACL policy map (builder style).
    pub fn with_policy_map(mut self, map: PolicyMap) -> SecurityPolicy {
        self.policy_map = map;
        self
    }

    /// Attach or replace the signing credential (builder style). Useful
    /// on the Anonymous tier to sign registrations without demanding
    /// authentication from peers.
    pub fn with_credential(mut self, credential: Credential) -> SecurityPolicy {
        self.credential = Some(credential);
        self
    }

    /// True when peers must complete the mutual-auth handshake before
    /// any GRIP/GRRP traffic is served.
    pub fn requires_auth(&self) -> bool {
        self.tier != TrustTier::Anonymous
    }

    /// Build the bind-token verifier for a service answering to
    /// `service_name` (its URL string), when a trust store is present.
    /// Built lazily so an ephemeral `:0` port rewritten at bind time is
    /// reflected in the verifier's target name.
    pub fn authenticator(&self, service_name: impl Into<String>) -> Option<Authenticator> {
        self.trust
            .clone()
            .map(|trust| Authenticator::new(trust, service_name))
    }

    /// True when incoming GRRP registrations must carry a signature
    /// chaining to the trust store.
    pub fn verifies_registrations(&self) -> bool {
        self.requires_auth() && self.trust.is_some()
    }
}

/// The knobs every GIS service shares, including where [`SecurityPolicy`]
/// lives. `GrisConfig` and `GiisConfig` both deref to this, so existing
/// `config.url` / `config.observability` field access keeps compiling.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// The service's own endpoint (its global name, §4.1).
    pub url: LdapUrl,
    /// Security posture for the endpoint: handshake requirements,
    /// signing credential, trust store, ACL policy map.
    pub security: SecurityPolicy,
    /// When true (the default), the engine records latency histograms
    /// and serves its self-description under `Mds-Vo-name=monitoring`.
    pub observability: bool,
    /// Age at which the monitoring-namespace snapshot is rebuilt — the
    /// soft-state timer of the self-description (§4.3 applied to the
    /// system itself).
    pub monitoring_refresh: SimDuration,
}

impl ServiceConfig {
    /// An open service at `url`: anonymous security, observability on.
    pub fn open(url: LdapUrl) -> ServiceConfig {
        ServiceConfig {
            url,
            security: SecurityPolicy::anonymous(),
            observability: true,
            monitoring_refresh: SimDuration::from_secs(5),
        }
    }

    /// Replace the security posture (builder style).
    pub fn with_security(mut self, security: SecurityPolicy) -> ServiceConfig {
        self.security = security;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acl::Acl;
    use crate::cert::CertAuthority;
    use gis_ldap::Dn;

    fn ca_pair() -> (Credential, TrustStore) {
        let ca = CertAuthority::new("/O=Grid/CN=CA", 7);
        let mut trust = TrustStore::new();
        trust.add_ca(&ca);
        (ca.issue("/O=Grid/CN=svc"), trust)
    }

    #[test]
    fn anonymous_demands_nothing() {
        let p = SecurityPolicy::anonymous();
        assert!(!p.requires_auth());
        assert!(!p.verifies_registrations());
        assert!(p.authenticator("svc").is_none());
    }

    #[test]
    fn authenticated_builds_verifier_for_service_name() {
        let (cred, trust) = ca_pair();
        let p = SecurityPolicy::authenticated(cred.clone(), trust);
        assert!(p.requires_auth());
        assert!(p.verifies_registrations());
        let auth = p
            .authenticator("tcp://127.0.0.1:5389")
            .expect("authenticator");
        let token = crate::auth::BindToken::create(&cred, "tcp://127.0.0.1:5389");
        assert_eq!(
            auth.authenticate(&token.to_bytes()).as_deref(),
            Some("/O=Grid/CN=svc")
        );
    }

    #[test]
    fn identity_carries_policy_map() {
        let (cred, trust) = ca_pair();
        let map = PolicyMap::with_default(Acl::existence_only());
        let p = SecurityPolicy::identity(cred, trust).with_policy_map(map.clone());
        assert_eq!(p.tier, TrustTier::Identity);
        assert_eq!(p.policy_map.acl_for(&Dn::root()), map.acl_for(&Dn::root()));
    }

    #[test]
    fn anonymous_with_credential_signs_without_demanding_auth() {
        let (cred, _) = ca_pair();
        let p = SecurityPolicy::anonymous().with_credential(cred);
        assert!(!p.requires_auth());
        assert!(p.credential.is_some());
    }

    #[test]
    fn service_config_defaults_open() {
        let cfg = ServiceConfig::open(LdapUrl::server("gris.site"));
        assert!(cfg.observability);
        assert!(!cfg.security.requires_auth());
    }
}
