//! Mutual authentication: GRIP bind tokens and GRRP message signing.
//!
//! §7: "GSI public-key security mechanisms are used to verify credentials
//! and to achieve mutual authentication between information consumers and
//! information providers", and for registration, "we can
//! cryptographically sign each GRRP message with the credentials of the
//! registering entity."

use crate::cert::{Certificate, Credential, Subject, TrustStore};
use crate::keys::{PublicKey, Signature};
use bytes::{BufMut, BytesMut};
use gis_ldap::codec::{put_bytes, put_str, Wire, WireReader};
use gis_ldap::{LdapError, Result};

impl Wire for Certificate {
    fn encode(&self, buf: &mut BytesMut) {
        put_str(buf, &self.subject);
        put_str(buf, &self.issuer);
        put_bytes(buf, &self.public_key.to_bytes());
        buf.put_u8(u8::from(self.is_proxy));
        put_bytes(buf, &self.signature.to_bytes());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Certificate> {
        let subject = r.read_str()?;
        let issuer = r.read_str()?;
        let public_key = PublicKey::from_bytes(r.read_bytes()?)
            .ok_or_else(|| LdapError::Codec("malformed public key".into()))?;
        let is_proxy = match r.read_u8()? {
            0 => false,
            1 => true,
            b => return Err(LdapError::Codec(format!("bad proxy flag {b}"))),
        };
        let signature = Signature::from_bytes(r.read_bytes()?)
            .ok_or_else(|| LdapError::Codec("malformed signature".into()))?;
        Ok(Certificate {
            subject,
            issuer,
            public_key,
            is_proxy,
            signature,
        })
    }
}

/// A bind token: the byte payload of `gis_proto`'s `GripRequest::Bind`.
/// Carries the client's certificate chain and a proof-of-possession
/// signature binding the authentication to the target service (so a token
/// replayed against another service fails).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BindToken {
    /// The client's certificate chain, leaf first.
    pub chain: Vec<Certificate>,
    /// Signature over `bind:<subject>:<target>` by the leaf key.
    pub proof: Signature,
}

fn bind_payload(subject: &str, target: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(subject.len() + target.len() + 6);
    out.extend_from_slice(b"bind:");
    out.extend_from_slice(subject.as_bytes());
    out.push(b':');
    out.extend_from_slice(target.as_bytes());
    out
}

impl BindToken {
    /// Create a token authenticating `credential` to the service named
    /// `target` (the service's LDAP URL string).
    pub fn create(credential: &Credential, target: &str) -> BindToken {
        let payload = bind_payload(&credential.chain[0].subject, target);
        BindToken {
            chain: credential.chain.clone(),
            proof: credential.sign(&payload),
        }
    }

    /// Serialize to the opaque byte form carried in `GripRequest::Bind`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        self.chain.encode(&mut buf);
        put_bytes(&mut buf, &self.proof.to_bytes());
        buf.to_vec()
    }

    /// Deserialize.
    pub fn from_bytes(bytes: &[u8]) -> Result<BindToken> {
        let mut r = WireReader::new(bytes);
        let chain = Vec::<Certificate>::decode(&mut r)?;
        let proof = Signature::from_bytes(r.read_bytes()?)
            .ok_or_else(|| LdapError::Codec("malformed proof".into()))?;
        if !r.is_done() {
            return Err(LdapError::Codec("trailing bytes in bind token".into()));
        }
        Ok(BindToken { chain, proof })
    }
}

/// Server-side authenticator: a trust store plus the service's own name
/// (tokens are only valid when minted for this service).
#[derive(Debug, Clone)]
pub struct Authenticator {
    /// CAs this service trusts.
    pub trust: TrustStore,
    /// The service's own name, as clients see it.
    pub service_name: String,
}

impl Authenticator {
    /// Create an authenticator for the named service.
    pub fn new(trust: TrustStore, service_name: impl Into<String>) -> Authenticator {
        Authenticator {
            trust,
            service_name: service_name.into(),
        }
    }

    /// Verify an incoming bind token. On success, returns the
    /// authenticated effective subject.
    pub fn authenticate(&self, token_bytes: &[u8]) -> Option<Subject> {
        let token = BindToken::from_bytes(token_bytes).ok()?;
        let subject = self.trust.verify_chain(&token.chain)?;
        let leaf_subject = &token.chain.first()?.subject;
        let payload = bind_payload(leaf_subject, &self.service_name);
        let leaf_key = &token.chain.first()?.public_key;
        if !leaf_key.verify(&payload, &token.proof) {
            return None;
        }
        Some(subject)
    }
}

/// Sign a GRRP message body (its wire bytes) with a credential; the
/// receiver checks it with [`verify_signed_registration`].
pub fn sign_registration(credential: &Credential, body: &[u8]) -> Vec<u8> {
    let mut buf = BytesMut::new();
    credential.chain.encode(&mut buf);
    put_bytes(&mut buf, &credential.sign(body).to_bytes());
    buf.to_vec()
}

/// Verify a signed registration produced by [`sign_registration`]; on
/// success returns the registrant's effective subject.
pub fn verify_signed_registration(
    trust: &TrustStore,
    body: &[u8],
    signature_blob: &[u8],
) -> Option<Subject> {
    let mut r = WireReader::new(signature_blob);
    let chain = Vec::<Certificate>::decode(&mut r).ok()?;
    let sig = Signature::from_bytes(r.read_bytes().ok()?)?;
    let subject = trust.verify_chain(&chain)?;
    if !chain.first()?.public_key.verify(body, &sig) {
        return None;
    }
    Some(subject)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::CertAuthority;

    fn setup() -> (CertAuthority, TrustStore) {
        let ca = CertAuthority::new("/O=Grid/CN=CA", 99);
        let mut trust = TrustStore::new();
        trust.add_ca(&ca);
        (ca, trust)
    }

    #[test]
    fn bind_roundtrip_and_authenticate() {
        let (ca, trust) = setup();
        let alice = ca.issue("/O=Grid/CN=alice");
        let auth = Authenticator::new(trust, "ldap://gris.a:389");
        let token = BindToken::create(&alice, "ldap://gris.a:389");
        let bytes = token.to_bytes();
        assert_eq!(BindToken::from_bytes(&bytes).unwrap(), token);
        assert_eq!(
            auth.authenticate(&bytes).as_deref(),
            Some("/O=Grid/CN=alice")
        );
    }

    #[test]
    fn token_bound_to_target_service() {
        let (ca, trust) = setup();
        let alice = ca.issue("/O=Grid/CN=alice");
        let auth_b = Authenticator::new(trust, "ldap://gris.b:389");
        // Token minted for service A must not authenticate to service B.
        let token = BindToken::create(&alice, "ldap://gris.a:389");
        assert_eq!(auth_b.authenticate(&token.to_bytes()), None);
    }

    #[test]
    fn untrusted_issuer_rejected() {
        let (_, trust) = setup();
        let rogue_ca = CertAuthority::new("/O=Rogue/CN=CA", 13);
        let mallory = rogue_ca.issue("/O=Grid/CN=alice");
        let auth = Authenticator::new(trust, "svc");
        let token = BindToken::create(&mallory, "svc");
        assert_eq!(auth.authenticate(&token.to_bytes()), None);
    }

    #[test]
    fn garbage_token_rejected() {
        let (_, trust) = setup();
        let auth = Authenticator::new(trust, "svc");
        assert_eq!(auth.authenticate(b"not a token"), None);
        assert_eq!(auth.authenticate(&[]), None);
    }

    #[test]
    fn proxy_binds_as_delegator() {
        let (ca, trust) = setup();
        let giis = ca.issue("/O=Grid/CN=giis");
        let proxy = giis.delegate(7);
        let auth = Authenticator::new(trust, "svc");
        let token = BindToken::create(&proxy, "svc");
        assert_eq!(
            auth.authenticate(&token.to_bytes()).as_deref(),
            Some("/O=Grid/CN=giis")
        );
    }

    #[test]
    fn signed_registration_verifies() {
        let (ca, trust) = setup();
        let gris = ca.issue("/O=Grid/CN=gris.a");
        let body = b"grrp message bytes";
        let blob = sign_registration(&gris, body);
        assert_eq!(
            verify_signed_registration(&trust, body, &blob).as_deref(),
            Some("/O=Grid/CN=gris.a")
        );
        // Altered body fails.
        assert_eq!(verify_signed_registration(&trust, b"tampered", &blob), None);
        // Truncated blob fails.
        assert_eq!(verify_signed_registration(&trust, body, &blob[..10]), None);
    }

    #[test]
    fn certificate_wire_roundtrip() {
        let (ca, _) = setup();
        let cred = ca.issue("/O=Grid/CN=x");
        let cert = cred.chain[0].clone();
        let bytes = cert.to_wire();
        assert_eq!(Certificate::from_wire(&bytes).unwrap(), cert);
    }
}
