//! Simulated Grid Security Infrastructure (GSI) for the MDS-2
//! reproduction (§7 and §10.2 of the paper).
//!
//! Provides identities, certificate authorities, proxy delegation,
//! mutual-authentication bind tokens, signed GRRP registrations,
//! capability-based group membership, and per-attribute access control —
//! the full §7 control flow. The cryptography is a self-contained Lamport
//! one-time-signature scheme over a 64-bit hash: real verification
//! mathematics with toy parameters (see DESIGN.md §3 for the
//! substitution rationale).
//!
//! * [`keys`] — key pairs and signatures;
//! * [`cert`] — certificates, CAs, proxy chains, trust stores;
//! * [`auth`] — bind tokens and registration signing;
//! * [`acl`] — principals, capabilities, ACLs, policy maps, and the four
//!   §7 provider/directory trust models;
//! * [`policy`] — the unified [`SecurityPolicy`]/[`ServiceConfig`]
//!   builders consumed by every wire-facing entry point.

#![warn(missing_docs)]

pub mod acl;
pub mod auth;
pub mod cert;
pub mod keys;
pub mod policy;

pub use acl::{
    apply_capability, Acl, AclRule, Capability, CommunityAuthz, Grant, PolicyMap, Principal,
    Requester, TrustModel, Visibility,
};
pub use auth::{sign_registration, verify_signed_registration, Authenticator, BindToken};
pub use cert::{CertAuthority, Certificate, Credential, Subject, TrustStore};
pub use keys::{hash64, KeyPair, PublicKey, Signature};
pub use policy::{SecurityPolicy, ServiceConfig, TrustTier};
