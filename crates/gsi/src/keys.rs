//! Keys and signatures for the simulated GSI.
//!
//! The paper's MDS-2 uses GSI public-key mechanisms (§7, §10.2). Real
//! X.509/RSA adds nothing to the architecture claims, so we substitute a
//! self-contained **Lamport one-time signature** scheme over a 64-bit
//! hash: the verification mathematics is genuine (revealed preimages are
//! checked against the public hash commitments), while parameters are toy
//! sized and key reuse is permitted — sufficient to exercise every
//! authentication/authorization code path. See DESIGN.md §3.

/// A 64-bit FNV-1a hash: the "cryptographic" hash of the simulated PKI.
pub fn hash64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Hash of a 64-bit word (domain-separated from byte-string hashing).
fn hash_word(w: u64) -> u64 {
    let mut buf = [0u8; 9];
    buf[0] = 0x57; // domain tag
    buf[1..].copy_from_slice(&w.to_le_bytes());
    hash64(&buf)
}

/// Number of message-hash bits signed.
const BITS: usize = 64;

/// The private half of a key pair: preimages for each bit value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrivateKey {
    secrets: [[u64; 2]; BITS],
}

/// The public half: hash commitments to each preimage.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PublicKey {
    commitments: [[u64; 2]; BITS],
}

/// A signature: one revealed preimage per message-hash bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    reveals: [u64; BITS],
}

/// A key pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyPair {
    /// Public commitments (distributable).
    pub public: PublicKey,
    /// Secret preimages (never serialized onto the wire).
    pub private: PrivateKey,
}

impl KeyPair {
    /// Deterministically derive a key pair from a seed (the simulation's
    /// entropy source).
    pub fn generate(seed: u64) -> KeyPair {
        let mut state = seed ^ 0x6a09e667f3bcc908;
        let mut next = move || {
            // SplitMix64 step.
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        let mut secrets = [[0u64; 2]; BITS];
        let mut commitments = [[0u64; 2]; BITS];
        for i in 0..BITS {
            for b in 0..2 {
                let s = next();
                secrets[i][b] = s;
                commitments[i][b] = hash_word(s);
            }
        }
        KeyPair {
            public: PublicKey { commitments },
            private: PrivateKey { secrets },
        }
    }

    /// Sign a message.
    pub fn sign(&self, message: &[u8]) -> Signature {
        let digest = hash64(message);
        let mut reveals = [0u64; BITS];
        for (i, slot) in reveals.iter_mut().enumerate() {
            let bit = ((digest >> i) & 1) as usize;
            *slot = self.private.secrets[i][bit];
        }
        Signature { reveals }
    }
}

impl PublicKey {
    /// Verify a signature over `message`.
    pub fn verify(&self, message: &[u8], sig: &Signature) -> bool {
        let digest = hash64(message);
        for i in 0..BITS {
            let bit = ((digest >> i) & 1) as usize;
            if hash_word(sig.reveals[i]) != self.commitments[i][bit] {
                return false;
            }
        }
        true
    }

    /// A compact fingerprint used to name the key in certificates.
    pub fn fingerprint(&self) -> u64 {
        let mut bytes = Vec::with_capacity(BITS * 2 * 8);
        for pair in &self.commitments {
            for &c in pair {
                bytes.extend_from_slice(&c.to_le_bytes());
            }
        }
        hash64(&bytes)
    }

    /// Serialize for embedding in certificates.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(BITS * 2 * 8);
        for pair in &self.commitments {
            for &c in pair {
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
        out
    }

    /// Deserialize; `None` on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Option<PublicKey> {
        if bytes.len() != BITS * 2 * 8 {
            return None;
        }
        let mut commitments = [[0u64; 2]; BITS];
        let mut it = bytes.chunks_exact(8);
        for pair in commitments.iter_mut() {
            for slot in pair.iter_mut() {
                let chunk = it.next()?;
                *slot = u64::from_le_bytes(chunk.try_into().ok()?);
            }
        }
        Some(PublicKey { commitments })
    }
}

impl Signature {
    /// Serialize for embedding in wire tokens.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(BITS * 8);
        for &r in &self.reveals {
            out.extend_from_slice(&r.to_le_bytes());
        }
        out
    }

    /// Deserialize; `None` on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Option<Signature> {
        if bytes.len() != BITS * 8 {
            return None;
        }
        let mut reveals = [0u64; BITS];
        for (slot, chunk) in reveals.iter_mut().zip(bytes.chunks_exact(8)) {
            *slot = u64::from_le_bytes(chunk.try_into().ok()?);
        }
        Some(Signature { reveals })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let kp = KeyPair::generate(42);
        let msg = b"register: ldap://gris.a:389";
        let sig = kp.sign(msg);
        assert!(kp.public.verify(msg, &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let kp = KeyPair::generate(42);
        let sig = kp.sign(b"message one");
        assert!(!kp.public.verify(b"message two", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let kp1 = KeyPair::generate(1);
        let kp2 = KeyPair::generate(2);
        let sig = kp1.sign(b"hello");
        assert!(!kp2.public.verify(b"hello", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let kp = KeyPair::generate(7);
        let mut sig = kp.sign(b"hello");
        sig.reveals[13] ^= 1;
        assert!(!kp.public.verify(b"hello", &sig));
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(KeyPair::generate(5), KeyPair::generate(5));
        assert_ne!(KeyPair::generate(5).public, KeyPair::generate(6).public);
    }

    #[test]
    fn public_key_bytes_roundtrip() {
        let kp = KeyPair::generate(9);
        let bytes = kp.public.to_bytes();
        assert_eq!(PublicKey::from_bytes(&bytes).unwrap(), kp.public);
        assert!(PublicKey::from_bytes(&bytes[1..]).is_none());
    }

    #[test]
    fn signature_bytes_roundtrip() {
        let kp = KeyPair::generate(11);
        let sig = kp.sign(b"x");
        let bytes = sig.to_bytes();
        assert_eq!(Signature::from_bytes(&bytes).unwrap(), sig);
        assert!(Signature::from_bytes(&bytes[..8]).is_none());
    }

    #[test]
    fn fingerprints_distinguish_keys() {
        let a = KeyPair::generate(1).public.fingerprint();
        let b = KeyPair::generate(2).public.fingerprint();
        assert_ne!(a, b);
    }
}
