//! Certificates, certificate authorities, proxy delegation, and trust
//! evaluation.
//!
//! Models the GSI single sign-on world (§7, §10.2): every Grid subject
//! holds a certificate issued by a community CA; services verify chains
//! against their trust store; delegation is expressed by proxy
//! certificates signed by the delegating identity (the §12 "delegation"
//! extension, needed for a GIIS to query providers on a client's behalf).

use crate::keys::{hash64, KeyPair, PublicKey, Signature};
use std::collections::BTreeMap;

/// An X.500-style subject name, e.g. `/O=Grid/O=ANL/CN=alice`.
pub type Subject = String;

/// A certificate binding a subject name to a public key, signed by an
/// issuer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// The certified subject.
    pub subject: Subject,
    /// Who signed this certificate.
    pub issuer: Subject,
    /// The subject's public key.
    pub public_key: PublicKey,
    /// True for proxy certificates (impersonation credentials delegated
    /// by the end entity).
    pub is_proxy: bool,
    /// Issuer's signature over the to-be-signed bytes.
    pub signature: Signature,
}

impl Certificate {
    /// Canonical bytes covered by the issuer signature.
    fn tbs(subject: &str, issuer: &str, public_key: &PublicKey, is_proxy: bool) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(subject.as_bytes());
        out.push(0);
        out.extend_from_slice(issuer.as_bytes());
        out.push(0);
        out.extend_from_slice(&public_key.to_bytes());
        out.push(u8::from(is_proxy));
        out
    }

    /// Verify this certificate's signature with the issuer's public key.
    pub fn verify_with(&self, issuer_key: &PublicKey) -> bool {
        let tbs = Certificate::tbs(&self.subject, &self.issuer, &self.public_key, self.is_proxy);
        issuer_key.verify(&tbs, &self.signature)
    }
}

/// A certificate authority: issues identity certificates for a community.
#[derive(Debug, Clone)]
pub struct CertAuthority {
    /// The CA's own subject name.
    pub name: Subject,
    keys: KeyPair,
}

impl CertAuthority {
    /// Create a CA whose keys derive deterministically from `seed`.
    pub fn new(name: impl Into<String>, seed: u64) -> CertAuthority {
        CertAuthority {
            name: name.into(),
            keys: KeyPair::generate(seed),
        }
    }

    /// The CA's public key, to be placed in trust stores.
    pub fn public_key(&self) -> &PublicKey {
        &self.keys.public
    }

    /// Issue an identity credential for `subject`; the subject's key pair
    /// derives from the CA seed and the subject name.
    pub fn issue(&self, subject: impl Into<String>) -> Credential {
        let subject = subject.into();
        let subject_keys =
            KeyPair::generate(hash64(subject.as_bytes()) ^ self.keys.public.fingerprint());
        let tbs = Certificate::tbs(&subject, &self.name, &subject_keys.public, false);
        let signature = self.keys.sign(&tbs);
        Credential {
            chain: vec![Certificate {
                subject,
                issuer: self.name.clone(),
                public_key: subject_keys.public.clone(),
                is_proxy: false,
                signature,
            }],
            keys: subject_keys,
        }
    }
}

/// A credential: a certificate chain (leaf first) plus the leaf's private
/// key; what a user or service holds to authenticate and sign.
#[derive(Debug, Clone)]
pub struct Credential {
    /// Certificate chain, most specific (leaf) first, ending at a
    /// CA-issued identity certificate.
    pub chain: Vec<Certificate>,
    keys: KeyPair,
}

impl Credential {
    /// The effective subject: proxy certificates act *as* the identity
    /// that delegated them, so this is the first non-proxy subject in the
    /// chain.
    pub fn subject(&self) -> &str {
        self.chain
            .iter()
            .find(|c| !c.is_proxy)
            .map(|c| c.subject.as_str())
            .unwrap_or("")
    }

    /// Sign arbitrary bytes with the leaf key.
    pub fn sign(&self, message: &[u8]) -> Signature {
        self.keys.sign(message)
    }

    /// The leaf public key.
    pub fn public_key(&self) -> &PublicKey {
        &self.keys.public
    }

    /// Delegate a proxy credential: a new key pair whose certificate is
    /// signed by *this* credential's key. The proxy authenticates as the
    /// same subject (GSI single sign-on delegation).
    pub fn delegate(&self, seed: u64) -> Credential {
        let proxy_keys = KeyPair::generate(seed);
        let proxy_subject = format!("{}/CN=proxy", self.chain[0].subject);
        let tbs = Certificate::tbs(
            &proxy_subject,
            &self.chain[0].subject,
            &proxy_keys.public,
            true,
        );
        let signature = self.keys.sign(&tbs);
        let mut chain = Vec::with_capacity(self.chain.len() + 1);
        chain.push(Certificate {
            subject: proxy_subject,
            issuer: self.chain[0].subject.clone(),
            public_key: proxy_keys.public.clone(),
            is_proxy: true,
            signature,
        });
        chain.extend(self.chain.iter().cloned());
        Credential {
            chain,
            keys: proxy_keys,
        }
    }
}

/// A verifier's set of trusted CAs.
#[derive(Debug, Clone, Default)]
pub struct TrustStore {
    cas: BTreeMap<Subject, PublicKey>,
}

impl TrustStore {
    /// Empty store (trusts no one; all verification fails).
    pub fn new() -> TrustStore {
        TrustStore::default()
    }

    /// Trust a CA.
    pub fn add_ca(&mut self, ca: &CertAuthority) {
        self.cas.insert(ca.name.clone(), ca.public_key().clone());
    }

    /// Number of trusted CAs.
    pub fn len(&self) -> usize {
        self.cas.len()
    }

    /// True if no CAs are trusted.
    pub fn is_empty(&self) -> bool {
        self.cas.is_empty()
    }

    /// Verify a certificate chain (leaf first). On success returns the
    /// effective subject (the first non-proxy subject).
    ///
    /// Chain rules: each certificate must be signed by the next one's key
    /// (proxy links), and the final certificate must be signed by a
    /// trusted CA. Proxies may only be issued by the subject they proxy.
    pub fn verify_chain(&self, chain: &[Certificate]) -> Option<Subject> {
        if chain.is_empty() || chain.len() > 8 {
            return None;
        }
        for window in chain.windows(2) {
            let (cert, parent) = (&window[0], &window[1]);
            if !cert.is_proxy {
                // Only proxies may be issued by non-CA links.
                return None;
            }
            if cert.issuer != parent.subject {
                return None;
            }
            if !cert.verify_with(&parent.public_key) {
                return None;
            }
        }
        let root = chain.last().expect("nonempty");
        if root.is_proxy {
            return None;
        }
        let ca_key = self.cas.get(&root.issuer)?;
        if !root.verify_with(ca_key) {
            return None;
        }
        Some(root.subject.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (CertAuthority, TrustStore) {
        let ca = CertAuthority::new("/O=Grid/CN=Community CA", 1000);
        let mut store = TrustStore::new();
        store.add_ca(&ca);
        (ca, store)
    }

    #[test]
    fn issued_credential_verifies() {
        let (ca, store) = setup();
        let cred = ca.issue("/O=Grid/CN=alice");
        assert_eq!(
            store.verify_chain(&cred.chain).as_deref(),
            Some("/O=Grid/CN=alice")
        );
        assert_eq!(cred.subject(), "/O=Grid/CN=alice");
    }

    #[test]
    fn untrusted_ca_rejected() {
        let rogue = CertAuthority::new("/O=Rogue/CN=CA", 666);
        let (_, store) = setup();
        let cred = rogue.issue("/O=Grid/CN=alice");
        assert_eq!(store.verify_chain(&cred.chain), None);
    }

    #[test]
    fn tampered_subject_rejected() {
        let (ca, store) = setup();
        let mut cred = ca.issue("/O=Grid/CN=alice");
        cred.chain[0].subject = "/O=Grid/CN=mallory".into();
        assert_eq!(store.verify_chain(&cred.chain), None);
    }

    #[test]
    fn proxy_chain_verifies_as_delegator() {
        let (ca, store) = setup();
        let cred = ca.issue("/O=Grid/CN=alice");
        let proxy = cred.delegate(777);
        assert_eq!(proxy.chain.len(), 2);
        assert_eq!(
            store.verify_chain(&proxy.chain).as_deref(),
            Some("/O=Grid/CN=alice"),
            "proxy authenticates as the delegating subject"
        );
        assert_eq!(proxy.subject(), "/O=Grid/CN=alice");
    }

    #[test]
    fn second_level_delegation() {
        let (ca, store) = setup();
        let cred = ca.issue("/O=Grid/CN=giis");
        let p1 = cred.delegate(1);
        let p2 = p1.delegate(2);
        assert_eq!(p2.chain.len(), 3);
        assert_eq!(
            store.verify_chain(&p2.chain).as_deref(),
            Some("/O=Grid/CN=giis")
        );
    }

    #[test]
    fn forged_proxy_rejected() {
        let (ca, store) = setup();
        let alice = ca.issue("/O=Grid/CN=alice");
        let mallory = ca.issue("/O=Grid/CN=mallory");
        // Mallory tries to splice her own proxy onto alice's identity.
        let mproxy = mallory.delegate(3);
        let mut forged = vec![mproxy.chain[0].clone()];
        forged.extend(alice.chain.iter().cloned());
        assert_eq!(store.verify_chain(&forged), None);
    }

    #[test]
    fn signatures_bind_to_credential() {
        let (ca, _) = setup();
        let alice = ca.issue("/O=Grid/CN=alice");
        let bob = ca.issue("/O=Grid/CN=bob");
        let sig = alice.sign(b"payload");
        assert!(alice.public_key().verify(b"payload", &sig));
        assert!(!bob.public_key().verify(b"payload", &sig));
    }

    #[test]
    fn empty_and_oversized_chains_rejected() {
        let (ca, store) = setup();
        assert_eq!(store.verify_chain(&[]), None);
        let mut cred = ca.issue("/O=Grid/CN=deep");
        for i in 0..9 {
            cred = cred.delegate(i);
        }
        assert_eq!(store.verify_chain(&cred.chain), None, "chain too long");
    }

    #[test]
    fn non_proxy_mid_chain_rejected() {
        let (ca, store) = setup();
        let alice = ca.issue("/O=Grid/CN=alice");
        let bob = ca.issue("/O=Grid/CN=bob");
        // A non-proxy cert sitting above another identity cert is invalid.
        let forged: Vec<Certificate> = vec![alice.chain[0].clone(), bob.chain[0].clone()];
        assert_eq!(store.verify_chain(&forged), None);
    }
}
