//! Access control: principals, capabilities, per-attribute ACLs and the
//! four provider/directory trust models of §7.
//!
//! "We assume that an information provider may specify, for each piece of
//! information that it maintains, the credentials that must be presented
//! to access that information. These credentials may be identity
//! credentials ... or a capability issued by some authority, in the case
//! of policies based, for example, on group membership."

use crate::cert::{CertAuthority, Credential, Subject, TrustStore};
use crate::keys::Signature;
use gis_ldap::{Dn, Entry};
use std::collections::BTreeSet;

/// Who a rule applies to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Principal {
    /// Anyone, including unauthenticated requesters.
    Anonymous,
    /// Any successfully authenticated requester.
    Authenticated,
    /// A specific subject (access-control-list entry).
    Subject(String),
    /// Holders of a capability for this group (§7's "policies based ...
    /// on group membership", the Community Authorization Service hook of
    /// §10.2).
    Group(String),
}

/// What a rule grants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Grant {
    /// Every attribute.
    All,
    /// Only the named attributes (lowercased).
    Attrs(Vec<String>),
    /// Only that the entry exists: "the directory can only enumerate the
    /// known resources, with no attribute-based indexing possible."
    ExistenceOnly,
}

/// One ACL rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AclRule {
    /// Who this grant applies to.
    pub who: Principal,
    /// What it grants.
    pub grant: Grant,
}

/// An access-control list: the union of its rules' grants applies.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Acl {
    /// The rules; an empty list denies everything (including existence).
    pub rules: Vec<AclRule>,
}

/// A requester's proven attributes: the authenticated subject (if any)
/// plus the groups proven via capabilities.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Requester {
    /// Authenticated subject, `None` when anonymous.
    pub subject: Option<Subject>,
    /// Groups with verified capabilities.
    pub groups: BTreeSet<String>,
}

impl Requester {
    /// An unauthenticated requester.
    pub fn anonymous() -> Requester {
        Requester::default()
    }

    /// An authenticated requester with no group memberships.
    pub fn subject(name: impl Into<String>) -> Requester {
        Requester {
            subject: Some(name.into()),
            groups: BTreeSet::new(),
        }
    }

    /// Add a proven group (builder style).
    pub fn with_group(mut self, group: impl Into<String>) -> Requester {
        self.groups.insert(group.into());
        self
    }
}

/// The effective visibility of an entry for a requester.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Visibility {
    /// Entry entirely invisible.
    Hidden,
    /// Only the entry's existence (DN) is visible.
    Existence,
    /// Only the named attributes are visible.
    Attrs(BTreeSet<String>),
    /// Everything is visible.
    Full,
}

impl Acl {
    /// ACL placing "no restriction on the information provided" — the
    /// fourth §7 model; "authenticated queries are not required."
    pub fn public() -> Acl {
        Acl {
            rules: vec![AclRule {
                who: Principal::Anonymous,
                grant: Grant::All,
            }],
        }
    }

    /// ACL granting everything to authenticated requesters and nothing to
    /// anonymous ones.
    pub fn authenticated_only() -> Acl {
        Acl {
            rules: vec![AclRule {
                who: Principal::Authenticated,
                grant: Grant::All,
            }],
        }
    }

    /// ACL revealing only existence to everyone — the third §7 model.
    pub fn existence_only() -> Acl {
        Acl {
            rules: vec![AclRule {
                who: Principal::Anonymous,
                grant: Grant::ExistenceOnly,
            }],
        }
    }

    /// Append a rule (builder style).
    pub fn with_rule(mut self, who: Principal, grant: Grant) -> Acl {
        self.rules.push(AclRule { who, grant });
        self
    }

    fn principal_matches(who: &Principal, req: &Requester) -> bool {
        match who {
            Principal::Anonymous => true,
            Principal::Authenticated => req.subject.is_some(),
            Principal::Subject(s) => req.subject.as_deref() == Some(s.as_str()),
            Principal::Group(g) => req.groups.contains(g),
        }
    }

    /// Compute the union of grants applicable to `req`.
    pub fn visibility(&self, req: &Requester) -> Visibility {
        let mut vis = Visibility::Hidden;
        for rule in &self.rules {
            if !Acl::principal_matches(&rule.who, req) {
                continue;
            }
            vis = match (&vis, &rule.grant) {
                (_, Grant::All) => return Visibility::Full,
                (Visibility::Full, _) => return Visibility::Full,
                (Visibility::Hidden, Grant::ExistenceOnly) => Visibility::Existence,
                (v, Grant::ExistenceOnly) => v.clone(),
                (Visibility::Attrs(prev), Grant::Attrs(more)) => {
                    let mut set = prev.clone();
                    set.extend(more.iter().map(|a| a.to_ascii_lowercase()));
                    Visibility::Attrs(set)
                }
                (_, Grant::Attrs(attrs)) => {
                    Visibility::Attrs(attrs.iter().map(|a| a.to_ascii_lowercase()).collect())
                }
            };
        }
        vis
    }

    /// Apply this ACL to an entry for a requester: `None` when hidden,
    /// otherwise the redacted entry (§10.3: results are filtered before
    /// leaving the server).
    pub fn redact(&self, entry: &Entry, req: &Requester) -> Option<Entry> {
        match self.visibility(req) {
            Visibility::Hidden => None,
            Visibility::Full => Some(entry.clone()),
            Visibility::Existence => {
                // Existence keeps the DN (with its naming attribute) and
                // the object classes: clients may enumerate entries with
                // the conventional `(objectclass=*)` match-everything
                // filter, but no descriptive attribute is revealed.
                let mut e = entry.project(&["objectclass".into()]);
                e.normalize_naming_attr();
                Some(e)
            }
            Visibility::Attrs(attrs) => {
                let selection: Vec<String> = attrs.into_iter().collect();
                let mut projected = entry.project(&selection);
                projected.normalize_naming_attr();
                Some(projected)
            }
        }
    }
}

/// Maps DN subtrees to ACLs; providers attach policy per namespace
/// region. Most-specific (deepest) matching prefix wins.
#[derive(Debug, Clone)]
pub struct PolicyMap {
    /// Fallback for entries matching no rule.
    pub default_acl: Acl,
    rules: Vec<(Dn, Acl)>,
}

impl PolicyMap {
    /// Everything public unless overridden.
    pub fn open() -> PolicyMap {
        PolicyMap {
            default_acl: Acl::public(),
            rules: Vec::new(),
        }
    }

    /// Create with an explicit default.
    pub fn with_default(default_acl: Acl) -> PolicyMap {
        PolicyMap {
            default_acl,
            rules: Vec::new(),
        }
    }

    /// Attach an ACL to the subtree rooted at `base`.
    pub fn set(&mut self, base: Dn, acl: Acl) {
        self.rules.retain(|(d, _)| d != &base);
        self.rules.push((base, acl));
        // Deepest-first so the first match is the most specific.
        self.rules
            .sort_by_key(|(dn, _)| std::cmp::Reverse(dn.depth()));
    }

    /// The ACL governing `dn`.
    pub fn acl_for(&self, dn: &Dn) -> &Acl {
        self.rules
            .iter()
            .find(|(base, _)| dn.is_under(base))
            .map(|(_, acl)| acl)
            .unwrap_or(&self.default_acl)
    }

    /// Redact an entry according to the governing ACL.
    pub fn redact(&self, entry: &Entry, req: &Requester) -> Option<Entry> {
        self.acl_for(entry.dn()).redact(entry, req)
    }
}

/// A capability: a signed assertion that `holder` belongs to `group`,
/// issued by a community authorization service (§10.2's forthcoming
/// "Globus Community Authorization Service").
#[derive(Debug, Clone)]
pub struct Capability {
    /// The member.
    pub holder: Subject,
    /// The asserted group.
    pub group: String,
    /// Issuing authority's subject name.
    pub issuer: Subject,
    /// Issuer signature over `cap:<holder>:<group>`.
    pub signature: Signature,
}

fn cap_payload(holder: &str, group: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(holder.len() + group.len() + 5);
    out.extend_from_slice(b"cap:");
    out.extend_from_slice(holder.as_bytes());
    out.push(b':');
    out.extend_from_slice(group.as_bytes());
    out
}

/// A community authorization service: issues group-membership
/// capabilities. Internally it is a credential-holding authority whose
/// certificate chains to a community CA.
#[derive(Debug, Clone)]
pub struct CommunityAuthz {
    /// The service's credential (signs capabilities).
    pub credential: Credential,
}

impl CommunityAuthz {
    /// Stand up an authorization service certified by `ca`.
    pub fn new(ca: &CertAuthority, name: &str) -> CommunityAuthz {
        CommunityAuthz {
            credential: ca.issue(name),
        }
    }

    /// Issue a capability asserting `holder ∈ group`.
    pub fn grant(&self, holder: &str, group: &str) -> Capability {
        Capability {
            holder: holder.to_owned(),
            group: group.to_owned(),
            issuer: self.credential.subject().to_owned(),
            signature: self.credential.sign(&cap_payload(holder, group)),
        }
    }
}

/// Verify a capability and, if it is valid, fold the group into the
/// requester. The verifier must know the authorization service's chain
/// (checked against the trust store via the provided CAS credential
/// chain).
pub fn apply_capability(
    trust: &TrustStore,
    cas: &CommunityAuthz,
    cap: &Capability,
    req: &mut Requester,
) -> bool {
    // The requester must already be authenticated as the holder.
    if req.subject.as_deref() != Some(cap.holder.as_str()) {
        return false;
    }
    // The CAS itself must be trusted.
    let Some(cas_subject) = trust.verify_chain(&cas.credential.chain) else {
        return false;
    };
    if cas_subject != cap.issuer {
        return false;
    }
    if !cas
        .credential
        .public_key()
        .verify(&cap_payload(&cap.holder, &cap.group), &cap.signature)
    {
        return false;
    }
    req.groups.insert(cap.group.clone());
    true
}

/// The four provider/aggregate-directory trust models enumerated in §7,
/// used by GIIS caching policy (see `gis-giis`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrustModel {
    /// "The provider(s) trusts the directory ... which it trusts to apply
    /// its policy on its behalf": the directory may cache everything.
    TrustedDirectory,
    /// "The information provider(s) limits the information that is
    /// available to an aggregate directory": the directory caches a
    /// subset; restricted attributes require a second, re-authenticated
    /// query to the provider.
    AttributeRestricted,
    /// "The information provider makes no information known other than
    /// its existence."
    ExistenceOnly,
    /// "No restriction on the information provided."
    Open,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host_entry() -> Entry {
        Entry::at("hn=hostX")
            .unwrap()
            .with_class("computer")
            .with("system", "linux")
            .with("load5", 0.7f64)
    }

    #[test]
    fn public_acl_shows_all_to_anonymous() {
        let acl = Acl::public();
        let e = acl.redact(&host_entry(), &Requester::anonymous()).unwrap();
        assert_eq!(e, host_entry());
    }

    #[test]
    fn authenticated_only_hides_from_anonymous() {
        let acl = Acl::authenticated_only();
        assert!(acl.redact(&host_entry(), &Requester::anonymous()).is_none());
        let e = acl
            .redact(&host_entry(), &Requester::subject("/CN=alice"))
            .unwrap();
        assert_eq!(e, host_entry());
    }

    #[test]
    fn existence_only_reveals_dn() {
        let acl = Acl::existence_only();
        let e = acl.redact(&host_entry(), &Requester::anonymous()).unwrap();
        assert_eq!(e.dn(), host_entry().dn());
        assert!(!e.has("system"));
        assert!(!e.has("load5"));
    }

    #[test]
    fn attribute_restriction_projects() {
        // "provider policy may make operating system type known ... but
        // demand that load averages can only be given to specific users."
        let acl = Acl::default()
            .with_rule(Principal::Anonymous, Grant::Attrs(vec!["system".into()]))
            .with_rule(
                Principal::Subject("/CN=alice".into()),
                Grant::Attrs(vec!["load5".into()]),
            );
        let anon = acl.redact(&host_entry(), &Requester::anonymous()).unwrap();
        assert!(anon.has("system"));
        assert!(!anon.has("load5"));
        let alice = acl
            .redact(&host_entry(), &Requester::subject("/CN=alice"))
            .unwrap();
        assert!(alice.has("system"), "grants union");
        assert!(alice.has("load5"));
    }

    #[test]
    fn group_rule_requires_capability() {
        let acl = Acl::default().with_rule(Principal::Group("vo-a".into()), Grant::All);
        let plain = Requester::subject("/CN=bob");
        assert!(acl.redact(&host_entry(), &plain).is_none());
        let member = Requester::subject("/CN=bob").with_group("vo-a");
        assert!(acl.redact(&host_entry(), &member).is_some());
    }

    #[test]
    fn empty_acl_denies_everything() {
        let acl = Acl::default();
        assert_eq!(acl.visibility(&Requester::anonymous()), Visibility::Hidden);
        assert!(acl
            .redact(&host_entry(), &Requester::subject("/CN=root"))
            .is_none());
    }

    #[test]
    fn visibility_union_escalates() {
        let acl = Acl::default()
            .with_rule(Principal::Anonymous, Grant::ExistenceOnly)
            .with_rule(
                Principal::Authenticated,
                Grant::Attrs(vec!["system".into()]),
            )
            .with_rule(Principal::Subject("/CN=admin".into()), Grant::All);
        assert_eq!(
            acl.visibility(&Requester::anonymous()),
            Visibility::Existence
        );
        match acl.visibility(&Requester::subject("/CN=user")) {
            Visibility::Attrs(attrs) => assert!(attrs.contains("system")),
            v => panic!("expected attrs, got {v:?}"),
        }
        assert_eq!(
            acl.visibility(&Requester::subject("/CN=admin")),
            Visibility::Full
        );
    }

    #[test]
    fn policy_map_most_specific_wins() {
        let mut map = PolicyMap::open();
        map.set(Dn::parse("o=O1").unwrap(), Acl::authenticated_only());
        map.set(Dn::parse("hn=hostX, o=O1").unwrap(), Acl::existence_only());
        let anon = Requester::anonymous();
        // Deepest rule governs the host subtree.
        let host = Entry::at("perf=load5, hn=hostX, o=O1")
            .unwrap()
            .with("load5", 1.0f64);
        let redacted = map.redact(&host, &anon).unwrap();
        assert!(!redacted.has("load5"));
        // Sibling host inherits the org-wide authenticated-only rule.
        let other = Entry::at("hn=hostY, o=O1").unwrap().with("x", "1");
        assert!(map.redact(&other, &anon).is_none());
        // Outside o=O1, the default (open) applies.
        let outside = Entry::at("hn=hostZ, o=O2").unwrap().with("x", "1");
        assert!(map.redact(&outside, &anon).unwrap().has("x"));
    }

    #[test]
    fn capability_flow() {
        let ca = CertAuthority::new("/O=Grid/CN=CA", 5);
        let mut trust = TrustStore::new();
        trust.add_ca(&ca);
        let cas = CommunityAuthz::new(&ca, "/O=Grid/CN=cas");
        let cap = cas.grant("/CN=alice", "vo-a");

        let mut alice = Requester::subject("/CN=alice");
        assert!(apply_capability(&trust, &cas, &cap, &mut alice));
        assert!(alice.groups.contains("vo-a"));

        // Wrong holder cannot use alice's capability.
        let mut bob = Requester::subject("/CN=bob");
        assert!(!apply_capability(&trust, &cas, &cap, &mut bob));
        assert!(bob.groups.is_empty());

        // A CAS from an untrusted CA is rejected.
        let rogue_ca = CertAuthority::new("/O=Rogue/CN=CA", 6);
        let rogue_cas = CommunityAuthz::new(&rogue_ca, "/O=Grid/CN=cas");
        let rogue_cap = rogue_cas.grant("/CN=alice", "vo-a");
        let mut alice2 = Requester::subject("/CN=alice");
        assert!(!apply_capability(
            &trust,
            &rogue_cas,
            &rogue_cap,
            &mut alice2
        ));
    }

    #[test]
    fn tampered_capability_rejected() {
        let ca = CertAuthority::new("/O=Grid/CN=CA", 5);
        let mut trust = TrustStore::new();
        trust.add_ca(&ca);
        let cas = CommunityAuthz::new(&ca, "/O=Grid/CN=cas");
        let mut cap = cas.grant("/CN=alice", "vo-a");
        cap.group = "vo-admin".into(); // escalate the asserted group
        let mut alice = Requester::subject("/CN=alice");
        assert!(!apply_capability(&trust, &cas, &cap, &mut alice));
    }
}
