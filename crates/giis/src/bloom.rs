//! Bloom filters for lossy index aggregation.
//!
//! §5.1: "aggregate directories could also use lossy aggregation
//! techniques, as in the Service Discovery Service, which hashes
//! descriptions and summarizes hashes via Bloom filtering." A GIIS in
//! Bloom-chaining mode summarizes each child's `attr=value` tokens and
//! routes equality queries only to children whose summary may match
//! (ablation experiment A1 sweeps the false-positive tradeoff).

/// A fixed-size Bloom filter over string tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    n_bits: usize,
    n_hashes: u32,
    inserted: usize,
}

fn fnv(data: &[u8], seed: u64) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325 ^ seed;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl BloomFilter {
    /// Create with `n_bits` bits (rounded up to a multiple of 64) and
    /// `n_hashes` hash functions.
    pub fn new(n_bits: usize, n_hashes: u32) -> BloomFilter {
        let n_bits = n_bits.max(64).next_multiple_of(64);
        BloomFilter {
            bits: vec![0; n_bits / 64],
            n_bits,
            n_hashes: n_hashes.max(1),
            inserted: 0,
        }
    }

    /// Sizing helper: bits-per-element and the standard k = b·ln2.
    pub fn for_capacity(elements: usize, bits_per_element: usize) -> BloomFilter {
        let n_bits = elements.max(1) * bits_per_element.max(1);
        let k = ((bits_per_element as f64) * std::f64::consts::LN_2).round() as u32;
        BloomFilter::new(n_bits, k.max(1))
    }

    fn positions(&self, token: &str) -> impl Iterator<Item = usize> + '_ {
        // Double hashing: h1 + i*h2.
        let h1 = fnv(token.as_bytes(), 0);
        let h2 = fnv(token.as_bytes(), 0x9e3779b97f4a7c15) | 1;
        let n = self.n_bits as u64;
        (0..self.n_hashes)
            .map(move |i| (h1.wrapping_add(u64::from(i).wrapping_mul(h2)) % n) as usize)
    }

    /// Insert a token.
    pub fn insert(&mut self, token: &str) {
        let positions: Vec<usize> = self.positions(token).collect();
        for pos in positions {
            self.bits[pos / 64] |= 1u64 << (pos % 64);
        }
        self.inserted += 1;
    }

    /// Might the token have been inserted? (No false negatives.)
    pub fn may_contain(&self, token: &str) -> bool {
        self.positions(token)
            .all(|pos| self.bits[pos / 64] & (1u64 << (pos % 64)) != 0)
    }

    /// Number of insertions performed.
    pub fn inserted(&self) -> usize {
        self.inserted
    }

    /// Size in bits.
    pub fn n_bits(&self) -> usize {
        self.n_bits
    }

    /// Fraction of bits set (load factor; ~0.5 is the classic target).
    pub fn fill_ratio(&self) -> f64 {
        let set: u32 = self.bits.iter().map(|w| w.count_ones()).sum();
        f64::from(set) / self.n_bits as f64
    }

    /// Clear all bits.
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.inserted = 0;
    }
}

/// The canonical token for an `attr=value` pair as summarized by the
/// Bloom index (lowercased attribute, verbatim value).
pub fn attr_token(attr: &str, value: &str) -> String {
    format!("{}={value}", attr.to_ascii_lowercase())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut bf = BloomFilter::for_capacity(100, 10);
        let tokens: Vec<String> = (0..100).map(|i| format!("system=linux-{i}")).collect();
        for t in &tokens {
            bf.insert(t);
        }
        for t in &tokens {
            assert!(bf.may_contain(t));
        }
    }

    #[test]
    fn false_positive_rate_reasonable() {
        let mut bf = BloomFilter::for_capacity(1000, 10);
        for i in 0..1000 {
            bf.insert(&format!("member-{i}"));
        }
        let fp = (0..10_000)
            .filter(|i| bf.may_contain(&format!("absent-{i}")))
            .count();
        // 10 bits/element, k=7 → theoretical ~1%; allow generous slack.
        assert!(fp < 500, "false positives: {fp}/10000");
    }

    #[test]
    fn tiny_filter_saturates() {
        let mut bf = BloomFilter::new(64, 4);
        for i in 0..200 {
            bf.insert(&format!("t{i}"));
        }
        assert!(bf.fill_ratio() > 0.9);
        // Saturated filter says yes to everything — lossy but safe.
        assert!(bf.may_contain("never-inserted"));
    }

    #[test]
    fn clear_resets() {
        let mut bf = BloomFilter::new(256, 3);
        bf.insert("x");
        assert!(bf.may_contain("x"));
        bf.clear();
        assert!(!bf.may_contain("x"));
        assert_eq!(bf.inserted(), 0);
        assert_eq!(bf.fill_ratio(), 0.0);
    }

    #[test]
    fn rounding_and_minimums() {
        let bf = BloomFilter::new(1, 0);
        assert_eq!(bf.n_bits(), 64);
        let bf = BloomFilter::new(65, 2);
        assert_eq!(bf.n_bits(), 128);
    }

    #[test]
    fn attr_token_normalizes_attr_case() {
        assert_eq!(attr_token("System", "Linux"), "system=Linux");
    }
}
