//! GIIS — the Grid Index Information Service (§5 and §10.4 of the paper).
//!
//! "We define an aggregate directory as a service that uses GRRP and GRIP
//! to obtain information (from a set of information providers) about a
//! set of entities, and then replies to queries concerning those
//! entities."
//!
//! * [`server`] — the GIIS engine: soft-state GRRP handling with
//!   membership policy, four index/search modes (name-serving, chaining,
//!   harvesting/relational, Bloom-routed chaining), invitation, referral
//!   and partial-result semantics;
//! * [`bloom`] — the lossy-aggregation Bloom filters (§5.1).

#![warn(missing_docs)]

pub mod bloom;
pub mod server;

pub use bloom::{attr_token, BloomFilter};
pub use server::{
    AcceptPolicy, BreakerConfig, ClientId, Giis, GiisAction, GiisConfig, GiisMode, GiisQueryPath,
    GiisStats,
};
