//! The GIIS server engine (§5, §10.4).
//!
//! "The GIIS framework comprises three major components: generic GRRP
//! handling, pluggable index construction, and pluggable search handling."
//!
//! All three are here:
//!
//! * GRRP handling — a [`SoftStateRegistry`] fed by `handle_grrp`, with a
//!   membership [`AcceptPolicy`] ("administrators ... will want to control
//!   membership", §2.3) and invitation support;
//! * index construction — [`GiisMode`] selects what is precomputed: name
//!   records only, a harvested entry cache (the "relational aggregate
//!   directory" of §3), or per-child Bloom summaries (§5.1);
//! * search handling — local answering, chaining with namespace scoping
//!   (Figure 5), Bloom-pruned chaining, and LDAP referrals when data may
//!   not be relayed (§10.4).
//!
//! The engine is sans-IO and asynchronous: methods return [`GiisAction`]s
//! (messages to send, replies to deliver) that the runtime executes.
//! Chained queries are correlated through pending-query state and expire
//! against a deadline, which is what yields *partial results* rather than
//! hangs when children are partitioned away (Figures 1 and 4).

use crate::bloom::{attr_token, BloomFilter};
use gis_gsi::{PolicyMap, Requester, SecurityPolicy, ServiceConfig};
use gis_ldap::{Dit, Dn, Entry, Filter, LdapUrl, Rdn, Scope, SharedDit, SnapshotLineage, Wire};
use gis_netsim::{SimDuration, SimTime};
use gis_proto::{
    metrics, result_digest, Counter, GripReply, GripRequest, GrrpMessage, Histogram,
    MetricsRegistry, Notification, PackedPair, RegistrationAgent, RequestId, ResultCode,
    SearchSpec, SoftStateRegistry, SpanRecord, SubscriptionMode, SubscriptionTable, SyncCookie,
    TraceContext, TraceSink,
};
use gis_store::{
    GroupSnap, Journal, JournalOptions, RecoveryReport, RegSnap, SnapshotContent, Storage, WalOp,
};
use parking_lot::RwLock;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Instant;

/// Identifies a client connection (assigned by the runtime).
pub type ClientId = u64;

/// How the directory builds its index and answers searches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GiisMode {
    /// Name-serving directory (§3): "simply records the name of each
    /// entity for which a GRRP registration was recorded, and supports
    /// only name-resolution queries." Searches are answered from
    /// registration records; referrals point at the providers.
    Name,
    /// MDS-2.1's simple aggregate directory (§10.4): "we implement
    /// chaining: GRIP requests directed to the GIIS are simply forwarded
    /// on to the appropriate information provider", scoped by registered
    /// namespace. Unanswered children time out into partial results.
    Chain {
        /// How long to wait for children before answering partially.
        timeout: SimDuration,
    },
    /// Relational-style directory (§3): "follows up each registration of
    /// a new entity with a GRIP query to determine its properties, which
    /// it records" locally; searches are answered from the harvested
    /// cache (freshness bounded by the refresh interval).
    Harvest {
        /// Re-harvest cadence (the §12 freshness-vs-cost knob).
        refresh: SimDuration,
    },
    /// Chaining with SDS-style lossy Bloom routing (§5.1): harvested
    /// summaries prune which children receive each equality query.
    BloomChain {
        /// Chaining deadline.
        timeout: SimDuration,
        /// Summary refresh cadence.
        refresh: SimDuration,
        /// Bloom sizing: bits per indexed token.
        bits_per_element: usize,
    },
    /// Federated scale-out: the directory periodically *pulls* each
    /// registered child's tree through the bulk delta-sync protocol
    /// ([`GripRequest::SyncPull`]) instead of chaining queries down or
    /// re-harvesting whole subtrees. Incremental deltas ride snapshot
    /// lineage cookies; searches are answered from the local replica at
    /// local-read speed, every entry carrying the child-stamped
    /// freshness attributes.
    Federated {
        /// Pull cadence per child (the staleness knob: served data is
        /// at most `interval + deadline` old).
        interval: SimDuration,
        /// How long an unanswered pull counts as in flight before it is
        /// abandoned and scored against the child's circuit.
        deadline: SimDuration,
    },
}

/// Which GRRP registrations this directory accepts — the VO membership
/// policy of §2.3/§7.
#[derive(Debug, Clone)]
pub enum AcceptPolicy {
    /// Accept any registration.
    All,
    /// Accept only services whose namespace falls under a suffix (a VO
    /// that only federates one organization's resources).
    NamespaceUnder(Dn),
    /// Accept only messages carrying one of these authenticated subjects
    /// (signed GRRP, §7).
    Subjects(Vec<String>),
}

impl AcceptPolicy {
    /// Does the policy admit this message?
    pub fn admits(&self, msg: &GrrpMessage) -> bool {
        match self {
            AcceptPolicy::All => true,
            AcceptPolicy::NamespaceUnder(suffix) => msg.namespace.is_under(suffix),
            AcceptPolicy::Subjects(allowed) => msg
                .subject
                .as_ref()
                .is_some_and(|s| allowed.iter().any(|a| a == s)),
        }
    }
}

/// An effect the runtime must carry out for the GIIS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GiisAction {
    /// Send a GRIP request to another server (chained query or harvest).
    SendRequest {
        /// Target server.
        to: LdapUrl,
        /// The request (its id is GIIS-generated and unique).
        request: GripRequest,
        /// When present, the request belongs to a traced query: the
        /// runtime wraps it in [`gis_proto::ProtocolMessage::Traced`] so
        /// the child's spans join the same causal tree.
        trace: Option<TraceContext>,
    },
    /// Send a GRRP message (parent registration or invitation).
    SendGrrp {
        /// Target server.
        to: LdapUrl,
        /// The notification.
        message: GrrpMessage,
    },
    /// Deliver a reply to a connected client.
    Reply {
        /// The client.
        client: ClientId,
        /// The reply.
        reply: GripReply,
    },
}

/// Operational counters.
///
/// # Snapshot semantics
///
/// Like [`gis_gris::GrisStats`]'s, a snapshot taken while queries are in
/// flight is *per-counter* atomic, not globally consistent. Two
/// mitigations keep live reads usable:
///
/// * `searches` and `local_answers` share one packed word
///   ([`PackedPair`]), so `local_answers <= searches` holds on **every**
///   snapshot, however concurrent;
/// * a result-cache hit bumps the `searches` half *before*
///   `result_cache_hits`, and the snapshot reads `result_cache_hits`
///   before the packed word, so `result_cache_hits <= searches` also
///   holds on every live read.
///
/// Exact identities (e.g. `local_answers + result_cache_hits + chained
/// fan-outs == searches`) hold once the engine is quiescent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GiisStats {
    /// GRRP messages received.
    pub grrp_received: u64,
    /// GRRP messages rejected by the accept policy.
    pub grrp_rejected: u64,
    /// Registrations that expired (soft-state purges).
    pub expirations: u64,
    /// Searches served.
    pub searches: u64,
    /// Searches answered entirely from local state.
    pub local_answers: u64,
    /// Requests chained to children.
    pub chained_requests: u64,
    /// Children pruned from a fan-out by Bloom routing.
    pub bloom_pruned: u64,
    /// Harvest queries issued.
    pub harvests: u64,
    /// Fan-outs that timed out waiting for at least one child.
    pub timeouts: u64,
    /// Referrals returned to clients.
    pub referrals_issued: u64,
    /// Entries returned to clients.
    pub entries_returned: u64,
    /// Chained searches answered from the GIIS result cache.
    pub result_cache_hits: u64,
    /// Children skipped from a fan-out because their circuit was open.
    pub breaker_skips: u64,
    /// Circuits opened (child reached the consecutive-failure threshold).
    pub breaker_opens: u64,
    /// Half-open probe requests issued to suspect children.
    pub breaker_probes: u64,
    /// Probes that failed, re-opening the circuit for another cooldown.
    pub breaker_reopens: u64,
    /// Circuits closed again after a reply (children re-admitted).
    pub breaker_closes: u64,
    /// Chained requests re-sent once inside the fan-out deadline.
    pub chain_retries: u64,
    /// Searches against the `Mds-Vo-name=monitoring` namespace.
    pub monitoring_queries: u64,
    /// Federation sync pulls issued to children.
    pub sync_pulls: u64,
    /// Sync replies integrated as full tree replacements.
    pub full_syncs: u64,
    /// Sync replies integrated as incremental deltas.
    pub delta_syncs: u64,
    /// Sync pulls that timed out or were declined by the child.
    pub sync_failures: u64,
}

/// The atomic counterpart of [`GiisStats`], shared between the owner and
/// query workers.
#[derive(Debug, Default)]
struct GiisStatsAtomic {
    grrp_received: Counter,
    grrp_rejected: Counter,
    expirations: Counter,
    /// `searches` (first) and `local_answers` (second) packed into one
    /// word: a locally-answered search bumps both halves in a single
    /// atomic op, so `local_answers <= searches` can never be observed
    /// violated.
    work: PackedPair,
    chained_requests: Counter,
    bloom_pruned: Counter,
    harvests: Counter,
    timeouts: Counter,
    referrals_issued: Counter,
    entries_returned: Counter,
    result_cache_hits: Counter,
    breaker_skips: Counter,
    breaker_opens: Counter,
    breaker_probes: Counter,
    breaker_reopens: Counter,
    breaker_closes: Counter,
    chain_retries: Counter,
    monitoring_queries: Counter,
    sync_pulls: Counter,
    full_syncs: Counter,
    delta_syncs: Counter,
    sync_failures: Counter,
}

impl GiisStatsAtomic {
    fn snapshot(&self) -> GiisStats {
        // Read-order discipline: every `result_cache_hits` bump is
        // preceded by its search's bump of the packed word, so reading
        // the hits *before* the packed word guarantees
        // `result_cache_hits <= searches` on every live snapshot.
        let result_cache_hits = self.result_cache_hits.get();
        let (searches, local_answers) = self.work.get();
        GiisStats {
            grrp_received: self.grrp_received.get(),
            grrp_rejected: self.grrp_rejected.get(),
            expirations: self.expirations.get(),
            searches,
            local_answers,
            chained_requests: self.chained_requests.get(),
            bloom_pruned: self.bloom_pruned.get(),
            harvests: self.harvests.get(),
            timeouts: self.timeouts.get(),
            referrals_issued: self.referrals_issued.get(),
            entries_returned: self.entries_returned.get(),
            result_cache_hits,
            breaker_skips: self.breaker_skips.get(),
            breaker_opens: self.breaker_opens.get(),
            breaker_probes: self.breaker_probes.get(),
            breaker_reopens: self.breaker_reopens.get(),
            breaker_closes: self.breaker_closes.get(),
            chain_retries: self.chain_retries.get(),
            monitoring_queries: self.monitoring_queries.get(),
            sync_pulls: self.sync_pulls.get(),
            full_syncs: self.full_syncs.get(),
            delta_syncs: self.delta_syncs.get(),
            sync_failures: self.sync_failures.get(),
        }
    }
}

/// GIIS configuration.
///
/// The shared service knobs (endpoint URL, [`SecurityPolicy`],
/// observability) live in the embedded [`ServiceConfig`]; `GiisConfig`
/// derefs to it, so `config.url` / `config.security` /
/// `config.observability` read and write naturally. The old separate
/// `policy`/`authenticator`/`credential`/`grrp_trust` knobs are all
/// derived from `service.security`: the trust store verifies both bind
/// tokens and registration signatures, the credential signs harvest
/// binds, and the policy map filters outgoing results.
pub struct GiisConfig {
    /// The knobs every GIS service shares, including the unified
    /// security posture. With [`SecurityPolicy::verifies_registrations`]
    /// true, incoming registrations must carry a valid signature
    /// chaining to `service.security.trust`; the verified subject
    /// *replaces* any claimed subject before the accept policy runs
    /// ("(1) ensure that registration messages are authentic, and (2)
    /// control which registration events are accepted", §7). When a
    /// credential is present, the directory also authenticates to
    /// children before harvesting (§7's trusted-directory model).
    pub service: ServiceConfig,
    /// The namespace this directory aggregates (its registration
    /// namespace when joining parent directories; `root` for a whole-VO
    /// directory).
    pub namespace: Dn,
    /// Index/search mode.
    pub mode: GiisMode,
    /// Membership policy for incoming registrations.
    pub accept: AcceptPolicy,
    /// Result cache TTL for chaining modes ("performance concerns make
    /// caching data within the GIIS desirable, and this capability is
    /// provided as part of the basic GIIS framework", §10.4). Cached
    /// results are keyed per requester identity, because "access control
    /// issues complicate caching" — one client's view must never be
    /// served to another. `None` disables caching.
    pub result_cache_ttl: Option<SimDuration>,
    /// Per-child circuit breaker for the chaining modes. `None` (the
    /// default) preserves the passive behaviour: a dead child eats the
    /// full fan-out deadline on every query until its registration
    /// expires. With a breaker, K consecutive timeouts open the child's
    /// circuit and subsequent fan-outs skip it instantly (the answer is
    /// marked partial); after a cooldown, one live query doubles as a
    /// half-open probe that re-admits the child if it answers.
    pub breaker: Option<BreakerConfig>,
    /// VO/suffix shards for [`GiisMode::Federated`]: when non-empty,
    /// only children whose registered namespace intersects one of these
    /// subtrees are pulled, and each pull asks for just the
    /// intersecting subtrees — a replicated root can own a slice of the
    /// VO namespace instead of the whole tree. Empty means unsharded
    /// (pull everything).
    pub shards: Vec<Dn>,
}

/// Circuit-breaker tuning for chained queries (health-aware routing, the
/// fault-tolerant-BDII idiom layered on §5's partial-result semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive chained-request timeouts that open a child's circuit.
    pub failure_threshold: u32,
    /// How long an open circuit rests before a half-open probe is tried.
    pub cooldown: SimDuration,
    /// When true, a still-unanswered chained request is re-sent once at
    /// the fan-out deadline midpoint, recovering isolated message loss
    /// without waiting for the deadline to declare partial results.
    pub retry: bool,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: SimDuration::from_secs(10),
            retry: true,
        }
    }
}

/// Health of one registered child's chained-query circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Circuit {
    /// Normal operation; requests flow.
    Closed,
    /// Skipping this child until the cooldown lapses.
    Open {
        /// When a half-open probe becomes permissible.
        until: SimTime,
    },
    /// One probe request is in flight; further fan-outs still skip.
    HalfOpen,
}

impl GiisConfig {
    /// An open chaining directory with a 2-second fan-out deadline.
    pub fn chaining(url: LdapUrl, namespace: Dn) -> GiisConfig {
        GiisConfig {
            service: ServiceConfig::open(url),
            namespace,
            mode: GiisMode::Chain {
                timeout: SimDuration::from_secs(2),
            },
            accept: AcceptPolicy::All,
            result_cache_ttl: None,
            breaker: None,
            shards: Vec::new(),
        }
    }

    /// Replaces the security posture, builder-style.
    pub fn with_security(mut self, security: SecurityPolicy) -> GiisConfig {
        self.service.security = security;
        self
    }

    /// A federated directory: pulls children on `interval`, abandons
    /// unanswered pulls after `deadline`, answers queries locally.
    pub fn federated(
        url: LdapUrl,
        namespace: Dn,
        interval: SimDuration,
        deadline: SimDuration,
    ) -> GiisConfig {
        let mut config = GiisConfig::chaining(url, namespace);
        config.mode = GiisMode::Federated { interval, deadline };
        config
    }
}

impl std::ops::Deref for GiisConfig {
    type Target = ServiceConfig;

    fn deref(&self) -> &ServiceConfig {
        &self.service
    }
}

impl std::ops::DerefMut for GiisConfig {
    fn deref_mut(&mut self) -> &mut ServiceConfig {
        &mut self.service
    }
}

struct ChildState {
    /// DNs currently held in the harvested cache for this child.
    harvested: Vec<Dn>,
    last_harvest: Option<SimTime>,
    /// Lineage cookie from the child's last sync reply: presenting it
    /// on the next pull yields an incremental delta when still inside
    /// the child's change window.
    sync_cookie: Option<SyncCookie>,
    /// The child-asserted "state as of" time of the last integrated
    /// sync reply (staleness-gauge input).
    sync_asof: Option<SimTime>,
    /// When the last sync reply was integrated (distinct from
    /// `last_harvest`, which is marked eagerly at *issue* time).
    last_sync: Option<SimTime>,
    bloom: Option<BloomFilter>,
    /// Whether this directory has authenticated to the child.
    bound: bool,
    /// Consecutive chained-request timeouts (breaker input).
    consec_failures: u32,
    /// Chained-query circuit state.
    circuit: Circuit,
    /// Chained-request round-trip latency (registry handle, resolved
    /// when the child first registers).
    rtt: Arc<Histogram>,
}

/// Observability state shared by the owner and every query handle:
/// whether instrumentation is on, the engine's metrics registry, the
/// pre-resolved hot-path histogram, and the optional trace sink.
#[derive(Clone)]
struct Obs {
    enabled: bool,
    registry: Arc<MetricsRegistry>,
    search_us: Arc<Histogram>,
    sink: Option<Arc<TraceSink>>,
}

impl Obs {
    fn new(enabled: bool) -> Obs {
        let registry = Arc::new(MetricsRegistry::new());
        let search_us = registry.histogram("search-us");
        Obs {
            enabled,
            registry,
            search_us,
            sink: None,
        }
    }
}

/// The monitoring-namespace snapshot: entries under
/// `service=<url>, Mds-Vo-name=monitoring` plus the sim time they were
/// built at. Rebuilt when older than the monitoring refresh interval
/// (soft-state), by the owner — tick or monitoring search — whichever
/// notices first.
type MonitorCell = Arc<RwLock<Option<(SimTime, Arc<Vec<Entry>>)>>>;

struct PendingQuery {
    client: ClientId,
    client_req: RequestId,
    cache_key: String,
    outstanding: Vec<u64>,
    merged: BTreeMap<String, Entry>,
    referrals: Vec<LdapUrl>,
    partial: bool,
    /// A child answered from its serve-stale cache (`StaleResults`).
    degraded: bool,
    deadline: SimTime,
    /// When set, still-unanswered children are re-asked once at this
    /// instant (the in-deadline retry); cleared after firing.
    retry_at: Option<SimTime>,
    spec: SearchSpec,
    requester: Requester,
    /// Whether a successful answer may enter the result cache
    /// (monitoring fan-outs bypass it: metrics must not be frozen for a
    /// TTL).
    cacheable: bool,
    /// When the fan-out started (span start / `search-us` input).
    started_at: SimTime,
    /// The trace context the query arrived with, if any.
    trace: Option<TraceContext>,
    /// This query's own `giis.search` span id (allocated at fan-out
    /// when traced; children parent onto it).
    span: Option<u64>,
}

struct CachedResult {
    at: SimTime,
    code: ResultCode,
    entries: Vec<Entry>,
    referrals: Vec<LdapUrl>,
}

/// Search a harvested-cache snapshot: scope/filter against the tree, then
/// redact, filter and project per requester. Shared by the engine's own
/// local answering and by [`GiisQueryPath`] workers.
fn snapshot_answer(
    snapshot: &gis_ldap::Dit,
    policy: &PolicyMap,
    spec: &SearchSpec,
    requester: &Requester,
) -> Vec<Entry> {
    let raw = snapshot.search_shared(&spec.base, spec.scope, &spec.filter, &[], 0);
    let mut out = Vec::new();
    for e in raw {
        let Some(redacted) = policy.redact(&e, requester) else {
            continue;
        };
        if !spec.filter.matches(&redacted) {
            continue;
        }
        out.push(redacted.project(&spec.attrs));
        if spec.size_limit != 0 && out.len() >= spec.size_limit as usize {
            break;
        }
    }
    out
}

/// Probe the chained-result cache. On a fresh hit, counts the search and
/// the hit and returns the ready-to-send reply. Shared by the engine and
/// query workers; the caller must NOT count the search again on a hit.
fn result_cache_probe(
    result_cache: &RwLock<BTreeMap<String, CachedResult>>,
    stats: &GiisStatsAtomic,
    key: &str,
    ttl: SimDuration,
    id: RequestId,
    now: SimTime,
) -> Option<GripReply> {
    let cache = result_cache.read();
    let hit = cache.get(key)?;
    if now.since(hit.at) >= ttl {
        return None;
    }
    // The search is accounted *before* the hit so a concurrent stats
    // snapshot (which reads hits before searches) can never observe
    // `result_cache_hits > searches`.
    stats.work.bump_first();
    stats.result_cache_hits.bump();
    stats.entries_returned.add(hit.entries.len() as u64);
    Some(GripReply::SearchResult {
        id,
        code: hit.code,
        entries: hit.entries.clone(),
        referrals: hit.referrals.clone(),
    })
}

/// Span outcome label for a chained reply.
fn reply_outcome(reply: &GripReply) -> &'static str {
    match reply {
        GripReply::SearchResult { code, .. } => code.label(),
        _ => "reply",
    }
}

/// Cache key: the full query shape plus the requester identity.
fn cache_key(spec: &SearchSpec, requester: &Requester) -> String {
    format!(
        "{}|{:?}|{}|{:?}|{}|{:?}",
        spec.base, spec.scope, spec.filter, spec.attrs, spec.size_limit, requester.subject
    )
}

enum OutboundKind {
    Chained {
        query: u64,
        child: LdapUrl,
        /// When the request was sent (RTT histogram input; span start).
        sent: SimTime,
        /// The `chain:<child>` span id when the query is traced — the
        /// context the child received has this as its parent.
        span: Option<u64>,
    },
    Harvest {
        child: LdapUrl,
    },
    HarvestBind {
        child: LdapUrl,
    },
    /// A federation sync pull awaiting its [`GripReply::SyncDelta`].
    SyncPull {
        child: LdapUrl,
        /// When the pull was issued (deadline scan + RTT input).
        sent: SimTime,
    },
}

/// A cloneable handle over a GIIS's concurrent query state: what a
/// worker thread can answer without the engine's owner. Harvest-mode
/// searches run against the shared cache snapshot; chain-mode searches
/// are answered only on a result-cache hit (a miss needs the owner's
/// fan-out machinery). Created by [`Giis::query_path`].
#[derive(Clone)]
pub struct GiisQueryPath {
    url: LdapUrl,
    mode: GiisMode,
    policy: PolicyMap,
    result_cache_ttl: Option<SimDuration>,
    cache: Arc<SharedDit>,
    result_cache: Arc<RwLock<BTreeMap<String, CachedResult>>>,
    sessions: Arc<RwLock<BTreeMap<ClientId, Requester>>>,
    stats: Arc<GiisStatsAtomic>,
    obs: Obs,
}

impl GiisQueryPath {
    /// Snapshot of the shared operational counters (for assertions and
    /// monitoring after the engine has moved into a runtime).
    pub fn stats(&self) -> GiisStats {
        self.stats.snapshot()
    }

    /// Handle a request if it is query-path work; everything else —
    /// binds, subscriptions, Name-mode answering, chain-mode cache
    /// misses, monitoring searches — is returned to the caller for the
    /// engine's owner.
    // Err carries the request back unboxed: the worker forwards it to
    // the owner channel by value, so boxing would be an extra
    // allocation on a path taken for every non-Search message.
    #[allow(clippy::result_large_err)]
    pub fn handle_query(
        &self,
        client: ClientId,
        req: GripRequest,
        now: SimTime,
    ) -> Result<Vec<GiisAction>, GripRequest> {
        self.handle_query_traced(client, req, None, now)
    }

    /// [`handle_query`](Self::handle_query) with a trace context: a
    /// worker-answered `Search` records a `giis.search` span parented on
    /// `trace.parent`.
    #[allow(clippy::result_large_err)]
    pub fn handle_query_traced(
        &self,
        client: ClientId,
        req: GripRequest,
        trace: Option<TraceContext>,
        now: SimTime,
    ) -> Result<Vec<GiisAction>, GripRequest> {
        let GripRequest::Search { id, spec } = req else {
            return Err(req);
        };
        // The monitoring namespace needs the owner's registry/child
        // state (and, in chain modes, its fan-out machinery).
        if metrics::is_monitoring_dn(&spec.base) {
            return Err(GripRequest::Search { id, spec });
        }
        let started = Instant::now();
        match self.mode {
            GiisMode::Harvest { .. } | GiisMode::Federated { .. } => {
                self.stats.work.bump_both();
                let requester = self.requester_of(client);
                let entries =
                    snapshot_answer(&self.cache.snapshot(), &self.policy, &spec, &requester);
                self.stats.entries_returned.add(entries.len() as u64);
                self.note_search(trace, now, started, "local");
                Ok(vec![GiisAction::Reply {
                    client,
                    reply: GripReply::SearchResult {
                        id,
                        code: ResultCode::Success,
                        entries,
                        referrals: Vec::new(),
                    },
                }])
            }
            GiisMode::Chain { .. } | GiisMode::BloomChain { .. } => {
                let Some(ttl) = self.result_cache_ttl else {
                    return Err(GripRequest::Search { id, spec });
                };
                let requester = self.requester_of(client);
                let key = cache_key(&spec, &requester);
                match result_cache_probe(&self.result_cache, &self.stats, &key, ttl, id, now) {
                    Some(reply) => {
                        self.note_search(trace, now, started, "cache-hit");
                        Ok(vec![GiisAction::Reply { client, reply }])
                    }
                    None => Err(GripRequest::Search { id, spec }),
                }
            }
            // Name-serving answers come from the soft-state registry,
            // which the owner mutates freely.
            GiisMode::Name => Err(GripRequest::Search { id, spec }),
        }
    }

    /// Record the `search-us` histogram and, when traced, a `giis.search`
    /// span for a worker-answered search.
    fn note_search(&self, trace: Option<TraceContext>, now: SimTime, started: Instant, how: &str) {
        let elapsed = started.elapsed().as_micros() as u64;
        if self.obs.enabled {
            self.obs.search_us.record(elapsed);
        }
        let (Some(sink), Some(ctx)) = (self.obs.sink.as_deref(), trace) else {
            return;
        };
        sink.record(SpanRecord {
            trace: ctx.trace,
            span: sink.next_span(),
            parent: Some(ctx.parent),
            service: self.url.to_string(),
            name: "giis.search".into(),
            start: now,
            end: now + SimDuration::from_micros(elapsed),
            outcome: how.to_string(),
        });
    }

    fn requester_of(&self, client: ClientId) -> Requester {
        self.sessions
            .read()
            .get(&client)
            .cloned()
            .unwrap_or_else(Requester::anonymous)
    }

    /// Record that `client` authenticated as `requester`.
    ///
    /// The transport layer calls this when a connection completes the
    /// §7 mutual-auth handshake, so every query on that connection is
    /// redacted for the proven identity — the wire analog of a
    /// successful in-band Bind.
    pub fn authenticate_session(&self, client: ClientId, requester: Requester) {
        self.sessions.write().insert(client, requester);
    }

    /// Forget `client`'s session (connection closed).
    pub fn drop_session(&self, client: ClientId) {
        self.sessions.write().remove(&client);
    }
}

/// A Grid Index Information Service instance.
pub struct Giis {
    /// Configuration.
    pub config: GiisConfig,
    /// The soft-state registration table (public: experiments inspect it).
    pub registry: SoftStateRegistry,
    /// Registers this GIIS with parent directories (hierarchy, Figure 5).
    pub agent: RegistrationAgent,
    stats: Arc<GiisStatsAtomic>,
    sessions: Arc<RwLock<BTreeMap<ClientId, Requester>>>,
    subs: SubscriptionTable<ClientId>,
    sub_requester: BTreeMap<(ClientId, RequestId), Requester>,
    sub_next_due: BTreeMap<(ClientId, RequestId), SimTime>,
    children: BTreeMap<String, ChildState>,
    /// The harvested entry cache, published as shared snapshots so query
    /// workers can answer from it while the owner integrates harvests.
    cache: Arc<SharedDit>,
    result_cache: Arc<RwLock<BTreeMap<String, CachedResult>>>,
    pending: BTreeMap<u64, PendingQuery>,
    outbound: BTreeMap<u64, OutboundKind>,
    next_outbound: u64,
    next_query: u64,
    obs: Obs,
    monitor: MonitorCell,
    /// Write-ahead journal: present once [`Giis::set_persistence`] ran.
    persist: Option<Journal>,
    /// Versioned change tracking over the published cache snapshots —
    /// what lets this directory answer [`GripRequest::SyncPull`] with
    /// incremental deltas. Observed lazily at serve time (the `Arc`
    /// pointer fast path makes a no-change observation O(1)).
    lineage: SnapshotLineage,
}

impl Giis {
    /// Create a GIIS; `reg_interval`/`reg_ttl` pace its own registrations
    /// with parent directories.
    pub fn new(config: GiisConfig, reg_interval: SimDuration, reg_ttl: SimDuration) -> Giis {
        let agent = RegistrationAgent::new(
            config.url.clone(),
            config.namespace.clone(),
            reg_interval,
            reg_ttl,
        );
        let obs = Obs::new(config.observability);
        Giis {
            config,
            registry: SoftStateRegistry::new(),
            agent,
            stats: Arc::new(GiisStatsAtomic::default()),
            sessions: Arc::new(RwLock::new(BTreeMap::new())),
            subs: SubscriptionTable::new(),
            sub_requester: BTreeMap::new(),
            sub_next_due: BTreeMap::new(),
            children: BTreeMap::new(),
            cache: Arc::new(SharedDit::new()),
            result_cache: Arc::new(RwLock::new(BTreeMap::new())),
            pending: BTreeMap::new(),
            outbound: BTreeMap::new(),
            next_outbound: 1,
            next_query: 1,
            obs,
            monitor: Arc::new(RwLock::new(None)),
            persist: None,
            lineage: SnapshotLineage::default(),
        }
    }

    /// Attach durable storage: recover the harvested cache, the
    /// soft-state registry (with its original expiry deadlines), harvest
    /// attribution and agent targets from `storage`, and journal every
    /// subsequent mutation there.
    ///
    /// Must be called before [`Giis::query_path`] — recovery replaces
    /// the shared cache the query handles capture. Recovery never fails:
    /// damaged or missing state degrades toward empty, with one warning
    /// per degradation in the returned report (also surfaced as the
    /// `persist-warnings` gauge).
    pub fn set_persistence(
        &mut self,
        storage: Arc<dyn Storage>,
        opts: JournalOptions,
        now: SimTime,
    ) -> RecoveryReport {
        let (journal, state, report) = Journal::open(storage, opts, now);
        self.cache = Arc::new(SharedDit::from_dit(state.dit));
        self.registry = state.registry;
        self.children.clear();
        for (key, g) in state.groups {
            let rtt = self
                .obs
                .registry
                .labeled_histogram("chain-rtt-us", Some(&key));
            self.children.insert(
                key,
                ChildState {
                    harvested: g.dns,
                    last_harvest: g.at,
                    // Sync cookies are not persisted: the first pull
                    // after recovery is a full sync, which re-converges
                    // whatever the WAL tail missed.
                    sync_cookie: None,
                    sync_asof: g.at,
                    last_sync: g.at,
                    // Bloom summaries are not persisted; they rebuild on
                    // the next harvest of each child.
                    bloom: None,
                    bound: false,
                    consec_failures: 0,
                    circuit: Circuit::Closed,
                    rtt,
                },
            );
        }
        for t in state.targets {
            self.agent.add_target(t);
        }
        let r = &self.obs.registry;
        r.gauge("persist-recovered-entries")
            .set(self.cache.len() as u64);
        r.gauge("persist-recovered-regs")
            .set(self.registry.len() as u64);
        r.gauge("persist-wal-replayed")
            .set(report.wal_records as u64);
        r.gauge("persist-warnings")
            .set(report.warnings.len() as u64);
        self.persist = Some(journal);
        report
    }

    /// Journal one mutation ahead of applying it. I/O trouble degrades
    /// to "keep serving, count the error" — persistence is an
    /// availability optimization for soft state, never worth a panic.
    fn wal_log(&mut self, op: &WalOp) {
        if let Some(journal) = self.persist.as_mut() {
            if journal.log(op).is_err() {
                self.obs.registry.counter("persist-errors").bump();
            }
        }
    }

    /// Write a snapshot of the current state and compact the WAL into
    /// it. Called by the owner on cadence (never on the query path).
    fn snapshot_persist(&mut self) {
        let Some(journal) = self.persist.as_mut() else {
            return;
        };
        let published = self.cache.snapshot();
        let regs: Vec<RegSnap> = self.registry.registrations().map(RegSnap::of).collect();
        let groups: Vec<GroupSnap> = self
            .children
            .iter()
            .map(|(name, st)| GroupSnap {
                name: name.clone(),
                at: st.last_harvest,
                dns: st.harvested.clone(),
                entries: Vec::new(),
            })
            .collect();
        let mut entries = published.iter();
        let content = SnapshotContent {
            regs,
            groups,
            targets: self.agent.targets().to_vec(),
            entries: &mut entries,
        };
        if journal.snapshot(content).is_err() {
            self.obs.registry.counter("persist-errors").bump();
        }
    }

    /// Install a shared trace sink: traced searches record spans here.
    /// Call before creating query-path handles (they capture the sink).
    pub fn set_trace_sink(&mut self, sink: Arc<TraceSink>) {
        self.obs.sink = Some(sink);
    }

    /// This engine's metrics registry (exported under the monitoring
    /// namespace; the live runtime adds its worker-pool instruments
    /// here).
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.obs.registry)
    }

    /// The children (service URLs) currently fresh in the registry.
    pub fn active_children(&self, now: SimTime) -> Vec<LdapUrl> {
        self.registry
            .active(now)
            .map(|r| r.message.service_url.clone())
            .collect()
    }

    /// Number of harvested entries currently cached.
    pub fn cached_entries(&self) -> usize {
        self.cache.len()
    }

    /// The current published cache snapshot (tests and experiments
    /// compare federated replicas against ground truth through this).
    pub fn cache_snapshot(&self) -> Arc<Dit> {
        self.cache.snapshot()
    }

    /// The lineage cookie recorded from `child`'s last sync reply.
    pub fn sync_cookie_of(&self, child: &LdapUrl) -> Option<SyncCookie> {
        self.children
            .get(&child.to_string())
            .and_then(|s| s.sync_cookie)
    }

    /// The child-reported "as of" time of `child`'s last integrated sync
    /// — the serve-time staleness bound is `now - sync_asof_of(child)`.
    pub fn sync_asof_of(&self, child: &LdapUrl) -> Option<SimTime> {
        self.children
            .get(&child.to_string())
            .and_then(|s| s.sync_asof)
    }

    /// Snapshot of the operational counters.
    pub fn stats(&self) -> GiisStats {
        self.stats.snapshot()
    }

    /// A cloneable concurrent-query handle sharing this directory's
    /// harvested cache, result cache, sessions and counters. The config
    /// slice it captures (mode, policy, cache TTL) is frozen at this
    /// point. Registry-backed answering (Name mode) and fan-out state
    /// stay with the engine's owner.
    pub fn query_path(&self) -> GiisQueryPath {
        GiisQueryPath {
            url: self.config.url.clone(),
            mode: self.config.mode,
            policy: self.config.security.policy_map.clone(),
            result_cache_ttl: self.config.result_cache_ttl,
            cache: Arc::clone(&self.cache),
            result_cache: Arc::clone(&self.result_cache),
            sessions: Arc::clone(&self.sessions),
            stats: Arc::clone(&self.stats),
            obs: self.obs.clone(),
        }
    }

    /// Issue an invitation asking `service` to register here (§10.4's
    /// invitation flow; also how "an entire organization's resources can
    /// be added to a VO by registering the appropriate directory", §9).
    pub fn invite(&self, service: LdapUrl, now: SimTime, ttl: SimDuration) -> GiisAction {
        GiisAction::SendGrrp {
            to: service.clone(),
            message: GrrpMessage::invite(service, self.config.url.clone(), now, ttl),
        }
    }

    /// Handle an incoming GRRP message (no reply channel: datagram-style
    /// delivery, as in the simulated fabric).
    pub fn handle_grrp(&mut self, msg: GrrpMessage, now: SimTime) -> Vec<GiisAction> {
        self.handle_grrp_from(None, msg, now)
    }

    /// Handle an incoming GRRP message that arrived over a connection.
    ///
    /// GRRP is one-way — accepted registrations are deliberately never
    /// acknowledged (soft-state refresh is the liveness signal) — but a
    /// *rejected* registration from a connected peer gets an explicit
    /// [`GripReply::GrrpResult`] with [`ResultCode::AuthRejected`] so a
    /// misconfigured provider learns its signature does not chain to the
    /// directory's trust store instead of silently timing out of
    /// existence (§7: "ensure that registration messages are
    /// authentic").
    pub fn handle_grrp_from(
        &mut self,
        origin: Option<ClientId>,
        msg: GrrpMessage,
        now: SimTime,
    ) -> Vec<GiisAction> {
        self.stats.grrp_received.bump();
        match msg.notification {
            Notification::Invite => {
                // This directory was itself invited to join a parent.
                if self.agent.accept_invite(&msg) {
                    if let Some(directory) = msg.reply_to.clone() {
                        self.wal_log(&WalOp::Target { directory });
                    }
                }
                Vec::new()
            }
            Notification::Register => {
                let mut msg = msg;
                if let Some(trust) = self
                    .config
                    .security
                    .verifies_registrations()
                    .then_some(self.config.security.trust.as_ref())
                    .flatten()
                {
                    // Authenticity gate: unsigned or badly-signed
                    // registrations are dropped, and the subject the
                    // policy sees is the *verified* one.
                    let verified = msg.signature.as_ref().and_then(|sig| {
                        gis_gsi::verify_signed_registration(trust, &msg.signable_bytes(), sig)
                    });
                    match verified {
                        Some(subject) => msg.subject = Some(subject),
                        None => {
                            self.stats.grrp_rejected.bump();
                            return Giis::grrp_rejection(origin);
                        }
                    }
                }
                if !self.config.accept.admits(&msg) {
                    self.stats.grrp_rejected.bump();
                    return Giis::grrp_rejection(origin);
                }
                let url = msg.service_url.clone();
                if self.persist.is_some() {
                    // Journal the *verified* message (subject attached)
                    // so replay re-runs exactly the observation below.
                    self.wal_log(&WalOp::Observe {
                        msg: msg.clone(),
                        now,
                    });
                }
                let is_new = self.registry.observe(msg, now);
                let harvesting = self.harvest_refresh().is_some();
                let key = url.to_string();
                // Resolved on every registration, but get-or-create in
                // the registry makes repeats cheap (one map lookup).
                let rtt = self
                    .obs
                    .registry
                    .labeled_histogram("chain-rtt-us", Some(&key));
                let state = self.children.entry(key).or_insert_with(|| ChildState {
                    harvested: Vec::new(),
                    last_harvest: None,
                    sync_cookie: None,
                    sync_asof: None,
                    last_sync: None,
                    bloom: None,
                    bound: false,
                    consec_failures: 0,
                    circuit: Circuit::Closed,
                    rtt,
                });
                // New children are harvested immediately in harvesting
                // modes ("follows up each registration of a new entity
                // with a GRIP query", §3); a federated directory issues
                // its first sync pull the same way.
                if is_new && state.last_harvest.is_none() {
                    if harvesting {
                        state.last_harvest = Some(now);
                        return self.issue_harvest(url);
                    }
                    if matches!(self.config.mode, GiisMode::Federated { .. }) {
                        state.last_harvest = Some(now);
                        return self.issue_sync_pull(url, now);
                    }
                }
                Vec::new()
            }
        }
    }

    /// The action set for a rejected registration: empty for datagram
    /// delivery, an explicit `GrrpResult` reply when the sender is a
    /// live connection. GRRP carries no request id, so the reply uses
    /// id 0 — the reserved "unsolicited" slot.
    fn grrp_rejection(origin: Option<ClientId>) -> Vec<GiisAction> {
        match origin {
            Some(client) => vec![GiisAction::Reply {
                client,
                reply: GripReply::GrrpResult {
                    id: 0,
                    code: ResultCode::AuthRejected,
                },
            }],
            None => Vec::new(),
        }
    }

    fn harvest_refresh(&self) -> Option<SimDuration> {
        match self.config.mode {
            GiisMode::Harvest { refresh } => Some(refresh),
            GiisMode::BloomChain { refresh, .. } => Some(refresh),
            _ => None,
        }
    }

    fn issue_harvest(&mut self, child: LdapUrl) -> Vec<GiisAction> {
        // Authenticate first when operating as a trusted directory.
        if let Some(cred) = &self.config.security.credential {
            let bound = self
                .children
                .get(&child.to_string())
                .is_some_and(|s| s.bound);
            if !bound {
                let token = gis_gsi::BindToken::create(cred, &child.to_string()).to_bytes();
                let id = self.next_outbound;
                self.next_outbound += 1;
                self.outbound.insert(
                    id,
                    OutboundKind::HarvestBind {
                        child: child.clone(),
                    },
                );
                return vec![GiisAction::SendRequest {
                    to: child,
                    request: GripRequest::Bind {
                        id,
                        subject: cred.subject().to_owned(),
                        token,
                    },
                    trace: None,
                }];
            }
        }
        let id = self.next_outbound;
        self.next_outbound += 1;
        self.outbound.insert(
            id,
            OutboundKind::Harvest {
                child: child.clone(),
            },
        );
        self.stats.harvests.bump();
        let namespace = self
            .registry
            .get(&child)
            .map(|r| r.message.namespace.clone())
            .unwrap_or_else(Dn::root);
        vec![GiisAction::SendRequest {
            to: child,
            request: GripRequest::Search {
                id,
                spec: SearchSpec::subtree(namespace, Filter::always()),
            },
            trace: None,
        }]
    }

    /// The shard subtrees a pull of `child` should request: `Some(vec![])`
    /// when unsharded, the intersecting shards when sharded, `None` when
    /// the child's registered namespace misses every shard (it is not
    /// pulled at all).
    fn shard_scope(&self, child: &LdapUrl) -> Option<Vec<Dn>> {
        if self.config.shards.is_empty() {
            return Some(Vec::new());
        }
        let ns = self
            .registry
            .get(child)
            .map(|r| r.message.namespace.clone())
            .unwrap_or_else(Dn::root);
        let hit: Vec<Dn> = self
            .config
            .shards
            .iter()
            .filter(|s| ns.is_under(s) || s.is_under(&ns))
            .cloned()
            .collect();
        if hit.is_empty() {
            None
        } else {
            Some(hit)
        }
    }

    /// Is a sync pull to `child` already awaiting its reply?
    fn sync_inflight(&self, child: &LdapUrl) -> bool {
        self.outbound
            .values()
            .any(|k| matches!(k, OutboundKind::SyncPull { child: c, .. } if c == child))
    }

    /// Issue one federation sync pull, presenting the child's last
    /// cookie so it can answer with an incremental delta.
    fn issue_sync_pull(&mut self, child: LdapUrl, now: SimTime) -> Vec<GiisAction> {
        let Some(subtrees) = self.shard_scope(&child) else {
            return Vec::new();
        };
        let cookie = self
            .children
            .get(&child.to_string())
            .and_then(|s| s.sync_cookie);
        let id = self.next_outbound;
        self.next_outbound += 1;
        self.outbound.insert(
            id,
            OutboundKind::SyncPull {
                child: child.clone(),
                sent: now,
            },
        );
        self.stats.sync_pulls.bump();
        vec![GiisAction::SendRequest {
            to: child,
            request: GripRequest::SyncPull {
                id,
                cookie,
                subtrees,
            },
            trace: None,
        }]
    }

    /// Answer a sync pull from the lineage over the local cache. Only
    /// the cache-backed modes can serve deltas; the others decline, and
    /// the puller scores the decline like a timeout.
    fn sync_reply(
        &mut self,
        id: RequestId,
        cookie: Option<SyncCookie>,
        subtrees: &[Dn],
        now: SimTime,
    ) -> GripReply {
        let serves = matches!(
            self.config.mode,
            GiisMode::Harvest { .. } | GiisMode::BloomChain { .. } | GiisMode::Federated { .. }
        );
        if !serves {
            return GripReply::SubscriptionDone {
                id,
                code: ResultCode::UnwillingToPerform,
            };
        }
        // Catch the lineage up with whatever the cache published since
        // the last serve; a republished unchanged snapshot is an `Arc`
        // pointer comparison.
        self.lineage.observe(self.cache.snapshot(), now);
        // A cookie from a different lineage incarnation (pre-restart
        // epoch) can collide numerically with this one's version; only
        // same-epoch cookies are eligible for an incremental answer.
        if let Some(cookie) = cookie {
            if cookie.epoch == self.lineage.epoch() {
                if let Some(delta) = self.lineage.delta_since(cookie.version, subtrees) {
                    return GripReply::SyncDelta {
                        id,
                        full: false,
                        epoch: self.lineage.epoch(),
                        version: self.lineage.version(),
                        at: self.lineage.as_of(),
                        entries: delta.upserts,
                        deletes: delta.deletes,
                    };
                }
            }
        }
        GripReply::SyncDelta {
            id,
            full: true,
            epoch: self.lineage.epoch(),
            version: self.lineage.version(),
            at: self.lineage.as_of(),
            entries: self.lineage.full(subtrees),
            deletes: Vec::new(),
        }
    }

    /// Integrate one sync reply: a full payload rebuilds this child's
    /// slice of the cache through the sorted bulk build (other
    /// children's rows are retained by shared handle); an incremental
    /// payload lands as one publish-once mutation batch.
    #[allow(clippy::too_many_arguments)]
    fn integrate_sync(
        &mut self,
        child: &LdapUrl,
        full: bool,
        epoch: u64,
        version: u64,
        at: SimTime,
        entries: Vec<Entry>,
        deletes: Vec<Dn>,
        now: SimTime,
    ) {
        let key = child.to_string();
        if !self.children.contains_key(&key) {
            return; // registration expired between pull and reply
        }
        if self.obs.enabled {
            let bytes: usize = entries.iter().map(|e| e.to_wire().len()).sum();
            self.obs
                .registry
                .gauge("sync-delta-bytes")
                .set(bytes as u64);
        }
        if full {
            self.stats.full_syncs.bump();
            if self.persist.is_some() {
                self.wal_log(&WalOp::Harvest {
                    child: child.clone(),
                    entries: entries.clone(),
                    now,
                });
            }
            let state = self.children.get_mut(&key).expect("checked above");
            let old: BTreeSet<Dn> = state.harvested.drain(..).collect();
            state.harvested = entries.iter().map(|e| e.dn().clone()).collect();
            state.sync_cookie = Some(SyncCookie { epoch, version });
            state.sync_asof = Some(at);
            state.last_sync = Some(now);
            let snap = self.cache.snapshot();
            let mut batch: Vec<Arc<Entry>> = snap
                .iter_shared()
                .filter(|(_, e)| !old.contains(e.dn()))
                .map(|(_, e)| Arc::clone(e))
                .collect();
            // New rows come after retained ones: bulk_load keeps the
            // last occurrence of a duplicate key, so the fresh payload
            // wins if the child re-announced a DN another child owns.
            batch.extend(entries.into_iter().map(Arc::new));
            self.cache.replace(Dit::bulk_load_shared(batch));
        } else {
            self.stats.delta_syncs.bump();
            if self.persist.is_some() {
                self.wal_log(&WalOp::Delta {
                    child: child.clone(),
                    upserts: entries.clone(),
                    deletes: deletes.clone(),
                    now,
                });
            }
            let state = self.children.get_mut(&key).expect("checked above");
            state.sync_cookie = Some(SyncCookie { epoch, version });
            state.sync_asof = Some(at);
            state.last_sync = Some(now);
            for dn in &deletes {
                state.harvested.retain(|d| d != dn);
            }
            for e in &entries {
                if !state.harvested.contains(e.dn()) {
                    state.harvested.push(e.dn().clone());
                }
            }
            self.cache.mutate(|dit| {
                for dn in &deletes {
                    dit.delete(dn);
                }
                for e in entries {
                    dit.upsert(e);
                }
            });
        }
    }

    /// Handle one GRIP request from a client.
    pub fn handle_request(
        &mut self,
        client: ClientId,
        req: GripRequest,
        now: SimTime,
    ) -> Vec<GiisAction> {
        self.handle_request_traced(client, req, None, now)
    }

    /// [`handle_request`](Self::handle_request) with a trace context: a
    /// traced `Search` records a `giis.search` span, chained children
    /// receive derived contexts and record `chain:<child>` child spans.
    pub fn handle_request_traced(
        &mut self,
        client: ClientId,
        req: GripRequest,
        trace: Option<TraceContext>,
        now: SimTime,
    ) -> Vec<GiisAction> {
        match req {
            GripRequest::Bind {
                id,
                subject: _,
                token,
            } => {
                let outcome = self
                    .config
                    .security
                    .authenticator(self.config.url.to_string())
                    .and_then(|a| a.authenticate(&token));
                let (ok, subject) = match outcome {
                    Some(s) => {
                        self.sessions
                            .write()
                            .insert(client, Requester::subject(s.clone()));
                        (true, Some(s))
                    }
                    None => (false, None),
                };
                vec![GiisAction::Reply {
                    client,
                    reply: GripReply::BindResult { id, ok, subject },
                }]
            }
            GripRequest::Search { id, spec } => self.start_search(client, id, spec, trace, now),
            GripRequest::SyncPull {
                id,
                cookie,
                subtrees,
            } => {
                let reply = self.sync_reply(id, cookie, &subtrees, now);
                vec![GiisAction::Reply { client, reply }]
            }
            GripRequest::Subscribe { id, spec, mode } => {
                // MDS-2.1 shipped "with the exception of push operations"
                // (§10); §12 lists subscription push as future work. We
                // implement it for the local-answer modes, where the
                // directory can evaluate the watch against its own state.
                // Chaining modes would need fan-out subscriptions; those
                // watches belong at the authoritative GRIS, so they are
                // declined.
                match self.config.mode {
                    GiisMode::Name | GiisMode::Harvest { .. } | GiisMode::Federated { .. } => {
                        let requester = self.requester_of(client);
                        self.subs.subscribe(client, id, spec.clone(), mode);
                        self.sub_requester.insert((client, id), requester.clone());
                        if let SubscriptionMode::Periodic(period) = mode {
                            self.sub_next_due.insert((client, id), now + period);
                        }
                        let entries = self.subscription_snapshot(&spec, &requester, now);
                        self.note_delivery(client, id, &entries);
                        vec![GiisAction::Reply {
                            client,
                            reply: GripReply::Update { id, entries },
                        }]
                    }
                    _ => vec![GiisAction::Reply {
                        client,
                        reply: GripReply::SubscriptionDone {
                            id,
                            code: ResultCode::UnwillingToPerform,
                        },
                    }],
                }
            }
            GripRequest::Unsubscribe { id } => {
                let existed = self.subs.unsubscribe(client, id);
                self.sub_requester.remove(&(client, id));
                self.sub_next_due.remove(&(client, id));
                vec![GiisAction::Reply {
                    client,
                    reply: GripReply::SubscriptionDone {
                        id,
                        code: if existed {
                            ResultCode::Success
                        } else {
                            ResultCode::NoSuchObject
                        },
                    },
                }]
            }
        }
    }

    fn requester_of(&self, client: ClientId) -> Requester {
        self.sessions
            .read()
            .get(&client)
            .cloned()
            .unwrap_or_else(Requester::anonymous)
    }

    fn start_search(
        &mut self,
        client: ClientId,
        id: RequestId,
        spec: SearchSpec,
        trace: Option<TraceContext>,
        now: SimTime,
    ) -> Vec<GiisAction> {
        let requester = self.requester_of(client);
        // The monitoring namespace is served ahead of the mode dispatch:
        // self-description answers the same way whatever the index mode,
        // except that the chaining modes also fan it out to the children.
        if metrics::is_monitoring_dn(&spec.base) {
            return self.monitoring_search(client, id, spec, requester, trace, now);
        }
        let started = Instant::now();
        match self.config.mode {
            GiisMode::Name => {
                self.stats.work.bump_both();
                let (entries, referrals) = self.name_answer(&spec, &requester, now);
                self.stats.entries_returned.add(entries.len() as u64);
                self.stats.referrals_issued.add(referrals.len() as u64);
                self.note_local_search(trace, now, started, "local");
                vec![GiisAction::Reply {
                    client,
                    reply: GripReply::SearchResult {
                        id,
                        code: ResultCode::Success,
                        entries,
                        referrals,
                    },
                }]
            }
            GiisMode::Harvest { .. } | GiisMode::Federated { .. } => {
                self.stats.work.bump_both();
                let entries = self.local_answer(&spec, &requester);
                self.stats.entries_returned.add(entries.len() as u64);
                self.note_local_search(trace, now, started, "local");
                vec![GiisAction::Reply {
                    client,
                    reply: GripReply::SearchResult {
                        id,
                        code: ResultCode::Success,
                        entries,
                        referrals: Vec::new(),
                    },
                }]
            }
            GiisMode::Chain { timeout } => {
                self.chain(client, id, spec, requester, now, timeout, false, trace)
            }
            GiisMode::BloomChain { timeout, .. } => {
                self.chain(client, id, spec, requester, now, timeout, true, trace)
            }
        }
    }

    /// Record `search-us` and, when traced, a `giis.search` span for a
    /// search answered without fan-out.
    fn note_local_search(
        &self,
        trace: Option<TraceContext>,
        now: SimTime,
        started: Instant,
        how: &str,
    ) {
        let elapsed = started.elapsed().as_micros() as u64;
        if self.obs.enabled {
            self.obs.search_us.record(elapsed);
        }
        let (Some(sink), Some(ctx)) = (self.obs.sink.as_deref(), trace) else {
            return;
        };
        sink.record(SpanRecord {
            trace: ctx.trace,
            span: sink.next_span(),
            parent: Some(ctx.parent),
            service: self.config.url.to_string(),
            name: "giis.search".into(),
            start: now,
            end: now + SimDuration::from_micros(elapsed),
            outcome: how.to_string(),
        });
    }

    /// Answer a search against `Mds-Vo-name=monitoring`. The directory's
    /// own self-description always contributes; in the chaining modes the
    /// query additionally fans out to every active child — namespace
    /// scoping and Bloom pruning are skipped (children's monitoring
    /// entries live outside their registered namespaces) but the circuit
    /// breaker still applies. Successful answers bypass the result cache
    /// so metrics are never frozen for a TTL.
    fn monitoring_search(
        &mut self,
        client: ClientId,
        id: RequestId,
        spec: SearchSpec,
        requester: Requester,
        trace: Option<TraceContext>,
        now: SimTime,
    ) -> Vec<GiisAction> {
        if !self.obs.enabled {
            return vec![GiisAction::Reply {
                client,
                reply: GripReply::SearchResult {
                    id,
                    code: ResultCode::NoSuchObject,
                    entries: Vec::new(),
                    referrals: Vec::new(),
                },
            }];
        }
        self.stats.work.bump_first();
        self.stats.monitoring_queries.bump();
        let own = self.monitoring_entries(now);
        let merged: BTreeMap<String, Entry> = own
            .iter()
            .map(|e| (e.dn().to_string(), e.clone()))
            .collect();
        let timeout = match self.config.mode {
            GiisMode::Chain { timeout } | GiisMode::BloomChain { timeout, .. } => Some(timeout),
            GiisMode::Name | GiisMode::Harvest { .. } | GiisMode::Federated { .. } => None,
        };
        let mut targets: Vec<LdapUrl> = Vec::new();
        let mut skipped_by_breaker = false;
        if timeout.is_some() {
            for child in self.active_children(now) {
                if self.breaker_admits(&child, now) {
                    targets.push(child);
                } else {
                    skipped_by_breaker = true;
                }
            }
        }
        self.fan_out(
            client,
            id,
            spec,
            requester,
            now,
            timeout.unwrap_or(SimDuration::from_micros(0)),
            targets,
            merged,
            skipped_by_breaker,
            false,
            trace,
        )
    }

    /// Name-serving answer: one entry per fresh registration, carrying
    /// the service URL; referrals point clients at the providers.
    fn name_answer(
        &self,
        spec: &SearchSpec,
        requester: &Requester,
        now: SimTime,
    ) -> (Vec<Entry>, Vec<LdapUrl>) {
        let mut entries = Vec::new();
        let mut referrals = Vec::new();
        for reg in self.registry.active(now) {
            let ns = &reg.message.namespace;
            let in_scope = match spec.scope {
                Scope::Base => ns == &spec.base,
                Scope::One => ns.is_child_of(&spec.base),
                Scope::Sub => ns.is_under(&spec.base),
            };
            if !in_scope {
                continue;
            }
            let mut e = Entry::new(ns.clone())
                .with_class("registration")
                .with("url", reg.message.service_url.to_string())
                .with("registeredsince", reg.first_seen.micros())
                .with("refreshcount", reg.refresh_count);
            e.normalize_naming_attr();
            let Some(redacted) = self.config.security.policy_map.redact(&e, requester) else {
                continue;
            };
            if !spec.filter.matches(&redacted) {
                continue;
            }
            referrals.push(reg.message.service_url.clone());
            entries.push(redacted.project(&spec.attrs));
            if spec.size_limit != 0 && entries.len() >= spec.size_limit as usize {
                break;
            }
        }
        (entries, referrals)
    }

    /// Answer from the harvested cache. Runs against a point-in-time
    /// snapshot — concurrent harvest integration never tears a result —
    /// and uses the shared-handle search so cached entries reach
    /// redaction without being deep-copied.
    fn local_answer(&self, spec: &SearchSpec, requester: &Requester) -> Vec<Entry> {
        snapshot_answer(
            &self.cache.snapshot(),
            &self.config.security.policy_map,
            spec,
            requester,
        )
    }

    /// Serve the monitoring snapshot, rebuilding it when it has aged past
    /// the refresh interval (soft-state semantics).
    fn monitoring_entries(&self, now: SimTime) -> Arc<Vec<Entry>> {
        if let Some((at, entries)) = self.monitor.read().as_ref() {
            if now.since(*at) < self.config.monitoring_refresh {
                return Arc::clone(entries);
            }
        }
        let built = Arc::new(self.build_monitoring(now));
        *self.monitor.write() = Some((now, Arc::clone(&built)));
        built
    }

    /// Build this directory's self-description: one `mds-service` entry,
    /// one `mds-child` entry per registered child (circuit state, RTT
    /// quantiles), and one `mds-metric` entry per registry instrument,
    /// all under `service=<url>, Mds-Vo-name=monitoring`.
    fn build_monitoring(&self, now: SimTime) -> Vec<Entry> {
        let base =
            metrics::monitoring_base().child(Rdn::new("service", self.config.url.to_string()));
        let s = self.stats.snapshot();
        let mode = match self.config.mode {
            GiisMode::Name => "name",
            GiisMode::Chain { .. } => "chain",
            GiisMode::Harvest { .. } => "harvest",
            GiisMode::BloomChain { .. } => "bloom-chain",
            GiisMode::Federated { .. } => "federated",
        };
        let mut entries = vec![Entry::new(base.clone())
            .with_class("mds-service")
            .with("service-type", "giis")
            .with("mode", mode)
            .with("namespace", self.config.namespace.to_string())
            .with("searches", s.searches)
            .with("local-answers", s.local_answers)
            .with("monitoring-queries", s.monitoring_queries)
            .with("chained-requests", s.chained_requests)
            .with("result-cache-hits", s.result_cache_hits)
            .with("harvests", s.harvests)
            .with("timeouts", s.timeouts)
            .with("breaker-opens", s.breaker_opens)
            .with("breaker-closes", s.breaker_closes)
            .with("breaker-skips", s.breaker_skips)
            .with("entries-returned", s.entries_returned)
            .with("sync-pulls", s.sync_pulls)
            .with("full-syncs", s.full_syncs)
            .with("delta-syncs", s.delta_syncs)
            .with("sync-failures", s.sync_failures)
            .with("children", self.registry.active(now).count() as u64)
            .with("subscriptions", self.subs.len() as u64)];
        // Fleet-worst federation gauges: the laggiest child defines the
        // directory's staleness. Both recover once a sick child is
        // re-admitted and resyncs.
        if self.obs.enabled {
            if let Some(oldest) = self.children.values().filter_map(|s| s.sync_asof).min() {
                self.obs
                    .registry
                    .gauge("sync-lag-us")
                    .set(now.since(oldest).micros());
            }
            if let Some(oldest) = self.children.values().filter_map(|s| s.last_sync).min() {
                self.obs
                    .registry
                    .gauge("last-sync-age-us")
                    .set(now.since(oldest).micros());
            }
        }
        for (url, state) in &self.children {
            let circuit = match state.circuit {
                Circuit::Closed => "closed",
                Circuit::Open { .. } => "open",
                Circuit::HalfOpen => "half-open",
            };
            let r = state.rtt.snapshot();
            let mut ce = Entry::new(base.child(Rdn::new("child", url.clone())))
                .with_class("mds-child")
                .with("circuit", circuit)
                .with("consec-failures", u64::from(state.consec_failures))
                .with("bound", if state.bound { "TRUE" } else { "FALSE" })
                .with("harvested-entries", state.harvested.len() as u64)
                .with("rtt-count", r.count)
                .with("rtt-p50-us", r.quantile(0.50))
                .with("rtt-p95-us", r.quantile(0.95))
                .with("rtt-p99-us", r.quantile(0.99))
                .with("rtt-max-us", r.max);
            if let Some(cookie) = state.sync_cookie {
                ce = ce
                    .with("sync-epoch", cookie.epoch)
                    .with("sync-cookie", cookie.version);
            }
            if let Some(asof) = state.sync_asof {
                ce = ce
                    .with("sync-asof-us", asof.micros())
                    .with("sync-lag-us", now.since(asof).micros());
            }
            if let Some(at) = state.last_sync {
                ce = ce.with("last-sync-age-us", now.since(at).micros());
            }
            entries.push(ce);
        }
        entries.extend(self.obs.registry.export_entries(&base));
        entries
    }

    /// The equality tokens a child must contain for this filter to
    /// possibly match there: conservative — only top-level `Eq` terms of
    /// the filter (or of a top-level `And`) are usable for pruning.
    fn prunable_tokens(filter: &Filter) -> Vec<String> {
        match filter {
            Filter::Eq(a, v) => vec![attr_token(a, v)],
            Filter::And(fs) => fs
                .iter()
                .filter_map(|f| match f {
                    Filter::Eq(a, v) => Some(attr_token(a, v)),
                    _ => None,
                })
                .collect(),
            _ => Vec::new(),
        }
    }

    /// Circuit-breaker gate for one child of a fan-out. Flips a
    /// cooled-down open circuit to half-open (this query doubles as the
    /// probe); returns whether the child may be consulted.
    fn breaker_admits(&mut self, child: &LdapUrl, now: SimTime) -> bool {
        if self.config.breaker.is_none() {
            return true;
        }
        let Some(state) = self.children.get_mut(&child.to_string()) else {
            return true;
        };
        match state.circuit {
            Circuit::Closed => true,
            Circuit::Open { until } if now >= until => {
                state.circuit = Circuit::HalfOpen;
                self.stats.breaker_probes.bump();
                true
            }
            Circuit::Open { .. } | Circuit::HalfOpen => {
                // At most one in-flight probe per child.
                self.stats.breaker_skips.bump();
                false
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn chain(
        &mut self,
        client: ClientId,
        id: RequestId,
        spec: SearchSpec,
        requester: Requester,
        now: SimTime,
        timeout: SimDuration,
        bloom_route: bool,
        trace: Option<TraceContext>,
    ) -> Vec<GiisAction> {
        // Result cache (§10.4): a fresh identical query from the same
        // requester is answered locally. A hit accounts for the search
        // itself (see `result_cache_probe`); every other path below is
        // accounted by `fan_out`.
        let key = cache_key(&spec, &requester);
        if let Some(ttl) = self.config.result_cache_ttl {
            if let Some(reply) =
                result_cache_probe(&self.result_cache, &self.stats, &key, ttl, id, now)
            {
                self.note_local_search(trace, now, Instant::now(), "cache-hit");
                return vec![GiisAction::Reply { client, reply }];
            }
        }
        self.stats.work.bump_first();

        // Namespace scoping (Figure 5): only children whose registered
        // namespace intersects the search base are consulted.
        let mut targets: Vec<LdapUrl> = Vec::new();
        let mut skipped_by_breaker = false;
        let tokens = if bloom_route {
            Self::prunable_tokens(&spec.filter)
        } else {
            Vec::new()
        };
        let candidates: Vec<LdapUrl> = self
            .registry
            .active(now)
            .filter(|reg| {
                let ns = &reg.message.namespace;
                ns.is_under(&spec.base) || spec.base.is_under(ns)
            })
            .map(|reg| reg.message.service_url.clone())
            .collect();
        for child in candidates {
            if !tokens.is_empty() {
                if let Some(state) = self.children.get(&child.to_string()) {
                    if let Some(bloom) = &state.bloom {
                        if tokens.iter().any(|t| !bloom.may_contain(t)) {
                            self.stats.bloom_pruned.bump();
                            continue;
                        }
                    }
                }
            }
            // Circuit breaker: open children are skipped instantly
            // (answer marked partial) instead of burning the deadline;
            // once the cooldown lapses, this query doubles as the
            // half-open probe.
            if self.breaker_admits(&child, now) {
                targets.push(child);
            } else {
                skipped_by_breaker = true;
            }
        }

        self.fan_out(
            client,
            id,
            spec,
            requester,
            now,
            timeout,
            targets,
            BTreeMap::new(),
            skipped_by_breaker,
            true,
            trace,
        )
    }

    /// Shared fan-out tail of `chain` and `monitoring_search`: register
    /// the pending query (pre-seeded with `merged`), send one chained
    /// request per target — with derived trace contexts when traced —
    /// and finalize immediately when there is nothing to wait for.
    #[allow(clippy::too_many_arguments)]
    fn fan_out(
        &mut self,
        client: ClientId,
        id: RequestId,
        spec: SearchSpec,
        requester: Requester,
        now: SimTime,
        timeout: SimDuration,
        targets: Vec<LdapUrl>,
        merged: BTreeMap<String, Entry>,
        skipped_by_breaker: bool,
        cacheable: bool,
        trace: Option<TraceContext>,
    ) -> Vec<GiisAction> {
        let key = cache_key(&spec, &requester);
        let query = self.next_query;
        self.next_query += 1;
        // Allocate this query's own span up front: chained children
        // parent onto it, and the context each child receives descends
        // from it.
        let own_span = match (self.obs.sink.as_deref(), trace) {
            (Some(sink), Some(_)) => Some(sink.next_span()),
            _ => None,
        };
        let mut actions = Vec::with_capacity(targets.len() + 1);
        let mut outstanding = Vec::with_capacity(targets.len());
        for child in targets {
            let out_id = self.next_outbound;
            self.next_outbound += 1;
            let child_span = match (self.obs.sink.as_deref(), trace) {
                (Some(sink), Some(_)) => Some(sink.next_span()),
                _ => None,
            };
            let child_trace = match (trace, child_span) {
                (Some(ctx), Some(span)) => Some(TraceContext {
                    trace: ctx.trace,
                    parent: span,
                }),
                _ => None,
            };
            self.outbound.insert(
                out_id,
                OutboundKind::Chained {
                    query,
                    child: child.clone(),
                    sent: now,
                    span: child_span,
                },
            );
            self.stats.chained_requests.bump();
            outstanding.push(out_id);
            actions.push(GiisAction::SendRequest {
                to: child,
                request: GripRequest::Search {
                    id: out_id,
                    spec: spec.clone(),
                },
                trace: child_trace,
            });
        }
        let retry_at = self
            .config
            .breaker
            .filter(|b| b.retry)
            .map(|_| now + SimDuration::from_micros(timeout.micros() / 2));
        let done = outstanding.is_empty();
        self.pending.insert(
            query,
            PendingQuery {
                client,
                client_req: id,
                cache_key: key,
                outstanding,
                merged,
                referrals: Vec::new(),
                partial: skipped_by_breaker,
                degraded: false,
                deadline: now + timeout,
                retry_at,
                spec,
                requester,
                // An instant no-children answer is never cached: a child
                // registering a moment later should become visible at
                // the next query, not a TTL later.
                cacheable: cacheable && !done,
                started_at: now,
                trace,
                span: own_span,
            },
        );
        if done {
            // Nothing to wait for (no eligible children, or a
            // local-mode monitoring search): answer immediately through
            // the same finalize path.
            actions.extend(self.finalize(query, now));
        }
        actions
    }

    /// Handle a GRIP reply arriving from a child server.
    pub fn handle_reply(
        &mut self,
        from: &LdapUrl,
        reply: GripReply,
        now: SimTime,
    ) -> Vec<GiisAction> {
        let out_id = reply.id();
        let Some(kind) = self.outbound.remove(&out_id) else {
            return Vec::new(); // late reply for an expired query
        };
        match kind {
            OutboundKind::HarvestBind { child } => {
                // Whether or not the bind succeeded, proceed to harvest:
                // a failed bind just yields the child's anonymous view.
                if let GripReply::BindResult { ok, .. } = reply {
                    if let Some(state) = self.children.get_mut(&child.to_string()) {
                        state.bound = ok;
                    }
                }
                self.issue_harvest(child)
            }
            OutboundKind::Harvest { child } => {
                if let GripReply::SearchResult { entries, .. } = reply {
                    self.integrate_harvest(&child, entries, now);
                }
                Vec::new()
            }
            OutboundKind::SyncPull { child, sent } => {
                match reply {
                    GripReply::SyncDelta {
                        full,
                        epoch,
                        version,
                        at,
                        entries,
                        deletes,
                        ..
                    } => {
                        self.record_child_success(&child);
                        if self.obs.enabled {
                            if let Some(state) = self.children.get(&child.to_string()) {
                                state.rtt.record(now.since(sent).micros());
                            }
                        }
                        self.integrate_sync(
                            &child, full, epoch, version, at, entries, deletes, now,
                        );
                    }
                    _ => {
                        // Declined (or nonsense): scored against the
                        // child's circuit like an unanswered pull.
                        self.stats.sync_failures.bump();
                        self.record_child_failure(&child, now);
                    }
                }
                Vec::new()
            }
            OutboundKind::Chained {
                query,
                child,
                sent,
                span,
            } => {
                debug_assert_eq!(&child, from, "reply source mismatch");
                // Any reply — whatever its code — proves the child is
                // reachable: reset its failure streak and close its
                // circuit (a successful half-open probe re-admits it).
                self.record_child_success(&child);
                if self.obs.enabled {
                    if let Some(state) = self.children.get(&child.to_string()) {
                        state.rtt.record(now.since(sent).micros());
                    }
                }
                self.note_chain_span(query, &child, sent, span, now, reply_outcome(&reply));
                let Some(p) = self.pending.get_mut(&query) else {
                    return Vec::new();
                };
                p.outstanding.retain(|&o| o != out_id);
                if let GripReply::SearchResult {
                    code,
                    entries,
                    referrals,
                    ..
                } = reply
                {
                    match code {
                        ResultCode::InsufficientAccess => {
                            // The child will not tell *us*; point the
                            // client at it directly (§10.4's referral
                            // fallback in the absence of delegation).
                            p.referrals.push(child);
                        }
                        ResultCode::PartialResults | ResultCode::Unavailable => {
                            p.partial = true;
                        }
                        ResultCode::StaleResults => {
                            p.degraded = true;
                        }
                        _ => {}
                    }
                    for e in entries {
                        match p.merged.get_mut(&e.dn().to_string()) {
                            Some(existing) => existing.merge_from(&e),
                            None => {
                                p.merged.insert(e.dn().to_string(), e);
                            }
                        }
                    }
                    p.referrals.extend(referrals);
                }
                if self
                    .pending
                    .get(&query)
                    .is_some_and(|p| p.outstanding.is_empty())
                {
                    return self.finalize(query, now);
                }
                Vec::new()
            }
        }
    }

    /// Record a `chain:<child>` span for one leg of a traced fan-out
    /// (reply arrival or timeout).
    fn note_chain_span(
        &self,
        query: u64,
        child: &LdapUrl,
        sent: SimTime,
        span: Option<u64>,
        now: SimTime,
        outcome: &str,
    ) {
        let (Some(sink), Some(span)) = (self.obs.sink.as_deref(), span) else {
            return;
        };
        let Some(p) = self.pending.get(&query) else {
            return;
        };
        let Some(ctx) = p.trace else {
            return;
        };
        sink.record(SpanRecord {
            trace: ctx.trace,
            span,
            parent: p.span,
            service: self.config.url.to_string(),
            name: format!("chain:{child}"),
            start: sent,
            end: now,
            outcome: outcome.to_string(),
        });
    }

    /// Breaker bookkeeping: a reply arrived from `child`.
    fn record_child_success(&mut self, child: &LdapUrl) {
        if self.config.breaker.is_none() {
            return;
        }
        if let Some(state) = self.children.get_mut(&child.to_string()) {
            state.consec_failures = 0;
            if state.circuit != Circuit::Closed {
                state.circuit = Circuit::Closed;
                self.stats.breaker_closes.bump();
            }
        }
    }

    /// Breaker bookkeeping: a chained request to `child` timed out.
    fn record_child_failure(&mut self, child: &LdapUrl, now: SimTime) {
        let Some(bk) = self.config.breaker else {
            return;
        };
        let Some(state) = self.children.get_mut(&child.to_string()) else {
            return;
        };
        match state.circuit {
            Circuit::HalfOpen => {
                // The probe went unanswered: rest for another cooldown.
                state.circuit = Circuit::Open {
                    until: now + bk.cooldown,
                };
                self.stats.breaker_reopens.bump();
            }
            Circuit::Open { .. } => {}
            Circuit::Closed => {
                state.consec_failures += 1;
                if state.consec_failures >= bk.failure_threshold {
                    state.circuit = Circuit::Open {
                        until: now + bk.cooldown,
                    };
                    self.stats.breaker_opens.bump();
                }
            }
        }
    }

    fn integrate_harvest(&mut self, child: &LdapUrl, entries: Vec<Entry>, now: SimTime) {
        let bits_per_element = match self.config.mode {
            GiisMode::BloomChain {
                bits_per_element, ..
            } => Some(bits_per_element),
            _ => None,
        };
        let key = child.to_string();
        if !self.children.contains_key(&key) {
            return;
        }
        if self.persist.is_some() {
            self.wal_log(&WalOp::Harvest {
                child: child.clone(),
                entries: entries.clone(),
                now,
            });
        }
        let Some(state) = self.children.get_mut(&key) else {
            return;
        };
        let stale: Vec<Dn> = state.harvested.drain(..).collect();
        let mut bloom = bits_per_element.map(|b| {
            let tokens: usize = entries.iter().map(Entry::attr_count).sum();
            BloomFilter::for_capacity(tokens.max(8), b)
        });
        for e in &entries {
            if let Some(bloom) = bloom.as_mut() {
                for (attr, values) in e.attrs() {
                    for v in values {
                        bloom.insert(&attr_token(attr, v.as_str()));
                    }
                }
            }
            state.harvested.push(e.dn().clone());
        }
        state.bloom = bloom;
        state.last_harvest = Some(now);
        // One published snapshot per harvest: queries see either the
        // child's old entry set or its new one, never a mix.
        self.cache.mutate(|dit| {
            for dn in &stale {
                dit.delete(dn);
            }
            for e in entries {
                dit.upsert(e);
            }
        });
    }

    fn finalize(&mut self, query: u64, now: SimTime) -> Vec<GiisAction> {
        let Some(p) = self.pending.remove(&query) else {
            return Vec::new();
        };
        let mut entries = Vec::new();
        for e in p.merged.into_values() {
            // The GIIS applies its own policy on top of whatever the
            // children released to it.
            let Some(redacted) = self.config.security.policy_map.redact(&e, &p.requester) else {
                continue;
            };
            if !p.spec.filter.matches(&redacted) {
                continue;
            }
            entries.push(redacted.project(&p.spec.attrs));
            if p.spec.size_limit != 0 && entries.len() >= p.spec.size_limit as usize {
                break;
            }
        }
        let code = if p.partial || !p.outstanding.is_empty() {
            ResultCode::PartialResults
        } else if p.degraded {
            // Complete, but some child served last-known-good entries.
            ResultCode::StaleResults
        } else {
            ResultCode::Success
        };
        self.stats.entries_returned.add(entries.len() as u64);
        self.stats.referrals_issued.add(p.referrals.len() as u64);
        if self.obs.enabled {
            self.obs.search_us.record(now.since(p.started_at).micros());
        }
        if let (Some(sink), Some(ctx), Some(span)) = (self.obs.sink.as_deref(), p.trace, p.span) {
            sink.record(SpanRecord {
                trace: ctx.trace,
                span,
                parent: Some(ctx.parent),
                service: self.config.url.to_string(),
                name: "giis.search".into(),
                start: p.started_at,
                end: now,
                outcome: code.label().into(),
            });
        }
        if p.cacheable && self.config.result_cache_ttl.is_some() && code == ResultCode::Success {
            // Partial answers are never cached: a healed partition should
            // become visible at the next query, not a TTL later.
            self.result_cache.write().insert(
                p.cache_key,
                CachedResult {
                    at: now,
                    code,
                    entries: entries.clone(),
                    referrals: p.referrals.clone(),
                },
            );
        }
        vec![GiisAction::Reply {
            client: p.client,
            reply: GripReply::SearchResult {
                id: p.client_req,
                code,
                entries,
                referrals: p.referrals,
            },
        }]
    }

    /// Evaluate a subscription's spec against local state.
    fn subscription_snapshot(
        &self,
        spec: &SearchSpec,
        requester: &Requester,
        now: SimTime,
    ) -> Vec<Entry> {
        match self.config.mode {
            GiisMode::Name => self.name_answer(spec, requester, now).0,
            _ => self.local_answer(spec, requester),
        }
    }

    fn note_delivery(&mut self, client: ClientId, id: RequestId, entries: &[Entry]) {
        let digest = result_digest(entries);
        for (c, i, sub) in self.subs.iter_mut() {
            if c == client && i == id {
                sub.last_digest = Some(digest);
            }
        }
    }

    /// Evaluate due subscriptions; returns the updates to deliver.
    fn subscription_updates(&mut self, now: SimTime) -> Vec<GiisAction> {
        let mut due: Vec<(
            ClientId,
            RequestId,
            SearchSpec,
            SubscriptionMode,
            Option<u64>,
        )> = Vec::new();
        for (client, id, sub) in self.subs.iter_mut() {
            due.push((client, id, sub.spec.clone(), sub.mode, sub.last_digest));
        }
        let mut out = Vec::new();
        for (client, id, spec, mode, last_digest) in due {
            let requester = self
                .sub_requester
                .get(&(client, id))
                .cloned()
                .unwrap_or_else(Requester::anonymous);
            match mode {
                SubscriptionMode::Periodic(period) => {
                    let due_at = self.sub_next_due.get(&(client, id)).copied().unwrap_or(now);
                    if now < due_at {
                        continue;
                    }
                    let entries = self.subscription_snapshot(&spec, &requester, now);
                    self.note_delivery(client, id, &entries);
                    self.sub_next_due.insert((client, id), due_at + period);
                    out.push(GiisAction::Reply {
                        client,
                        reply: GripReply::Update { id, entries },
                    });
                }
                SubscriptionMode::OnChange => {
                    let entries = self.subscription_snapshot(&spec, &requester, now);
                    if last_digest == Some(result_digest(&entries)) {
                        continue;
                    }
                    self.note_delivery(client, id, &entries);
                    out.push(GiisAction::Reply {
                        client,
                        reply: GripReply::Update { id, entries },
                    });
                }
            }
        }
        out
    }

    /// Advance timers: registry sweep, parent registrations, harvest
    /// refreshes, fan-out deadlines, and subscription deliveries. Call at
    /// least as often as the finest deadline granularity required.
    pub fn tick(&mut self, now: SimTime) -> Vec<GiisAction> {
        let mut actions = Vec::new();

        // Keep the monitoring snapshot warm (soft-state refresh).
        if self.obs.enabled {
            let due = match self.monitor.read().as_ref() {
                Some((at, _)) => now.since(*at) >= self.config.monitoring_refresh,
                None => true,
            };
            if due {
                let built = Arc::new(self.build_monitoring(now));
                *self.monitor.write() = Some((now, built));
            }
        }

        // Soft-state sweep: purge expired children and their cache rows
        // (one published snapshot for the whole sweep). Journaled only
        // when something *can* expire — sweeps are idempotent on replay,
        // but an unconditional record per tick would bloat the WAL.
        if self.persist.is_some()
            && self
                .registry
                .next_possible_expiry()
                .is_some_and(|t| t <= now)
        {
            self.wal_log(&WalOp::Sweep { now });
        }
        let mut purged: Vec<Dn> = Vec::new();
        for url in self.registry.sweep(now) {
            self.stats.expirations.bump();
            if let Some(state) = self.children.remove(&url.to_string()) {
                purged.extend(state.harvested);
            }
        }
        if !purged.is_empty() {
            self.cache.mutate(|dit| {
                for dn in &purged {
                    dit.delete(dn);
                }
            });
        }

        // Result-cache expiry (bound memory; stale rows are useless).
        if let Some(ttl) = self.config.result_cache_ttl {
            self.result_cache
                .write()
                .retain(|_, c| now.since(c.at) < ttl);
        }

        // Own registrations to parent directories.
        for (dir, msg) in self.agent.due_messages(now) {
            actions.push(GiisAction::SendGrrp {
                to: dir,
                message: msg,
            });
        }

        // Harvest refreshes.
        if let Some(refresh) = self.harvest_refresh() {
            let due: Vec<LdapUrl> = self
                .registry
                .active(now)
                .filter(|reg| {
                    self.children
                        .get(&reg.message.service_url.to_string())
                        .is_none_or(|s| s.last_harvest.is_none_or(|at| now.since(at) >= refresh))
                })
                .map(|reg| reg.message.service_url.clone())
                .collect();
            for child in due {
                // Mark eagerly so a slow child is not re-harvested every
                // tick while its reply is in flight.
                if let Some(state) = self.children.get_mut(&child.to_string()) {
                    state.last_harvest = Some(now);
                }
                actions.extend(self.issue_harvest(child));
            }
        }

        // Federation sync pulls: abandon overdue pulls (scored against
        // the child's circuit), then pull every due child the breaker
        // admits — a cooled-down open circuit flips to half-open and
        // this pull doubles as the probe.
        if let GiisMode::Federated { interval, deadline } = self.config.mode {
            let overdue: Vec<(u64, LdapUrl)> = self
                .outbound
                .iter()
                .filter_map(|(&id, kind)| match kind {
                    OutboundKind::SyncPull { child, sent } if now.since(*sent) >= deadline => {
                        Some((id, child.clone()))
                    }
                    _ => None,
                })
                .collect();
            for (id, child) in overdue {
                self.outbound.remove(&id);
                self.stats.sync_failures.bump();
                self.record_child_failure(&child, now);
            }
            let due: Vec<LdapUrl> = self
                .registry
                .active(now)
                .filter(|reg| {
                    self.children
                        .get(&reg.message.service_url.to_string())
                        .is_none_or(|s| s.last_harvest.is_none_or(|at| now.since(at) >= interval))
                })
                .map(|reg| reg.message.service_url.clone())
                .collect();
            for child in due {
                if self.sync_inflight(&child) || !self.breaker_admits(&child, now) {
                    continue;
                }
                if let Some(state) = self.children.get_mut(&child.to_string()) {
                    state.last_harvest = Some(now);
                }
                actions.extend(self.issue_sync_pull(child, now));
            }
        }

        // Subscription deliveries (local modes only; the table is empty
        // otherwise).
        actions.extend(self.subscription_updates(now));

        // In-deadline retry: re-ask children still unanswered at the
        // deadline midpoint, so an isolated lost message does not turn
        // into a partial answer.
        let retry_due: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| p.retry_at.is_some_and(|at| now >= at) && now < p.deadline)
            .map(|(&q, _)| q)
            .collect();
        for query in retry_due {
            let Some(p) = self.pending.get_mut(&query) else {
                continue;
            };
            p.retry_at = None;
            let spec = p.spec.clone();
            let tctx = p.trace;
            let old = std::mem::take(&mut p.outstanding);
            let mut fresh = Vec::with_capacity(old.len());
            let mut sends = Vec::with_capacity(old.len());
            for out_id in old {
                match self.outbound.remove(&out_id) {
                    Some(OutboundKind::Chained {
                        query: q,
                        child,
                        sent,
                        span,
                    }) => {
                        let new_id = self.next_outbound;
                        self.next_outbound += 1;
                        // The retry reuses the leg's span (and keeps the
                        // original send time), so its RTT and span cover
                        // first-send to eventual reply.
                        self.outbound.insert(
                            new_id,
                            OutboundKind::Chained {
                                query: q,
                                child: child.clone(),
                                sent,
                                span,
                            },
                        );
                        self.stats.chain_retries.bump();
                        fresh.push(new_id);
                        sends.push(GiisAction::SendRequest {
                            to: child,
                            request: GripRequest::Search {
                                id: new_id,
                                spec: spec.clone(),
                            },
                            trace: match (tctx, span) {
                                (Some(ctx), Some(s)) => Some(TraceContext {
                                    trace: ctx.trace,
                                    parent: s,
                                }),
                                _ => None,
                            },
                        });
                    }
                    Some(other) => {
                        self.outbound.insert(out_id, other);
                        fresh.push(out_id);
                    }
                    None => {}
                }
            }
            p.outstanding = fresh;
            actions.extend(sends);
        }

        // Expired fan-outs answer partially; each unanswered child is a
        // timeout the breaker counts against it.
        let expired: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| now >= p.deadline)
            .map(|(&q, _)| q)
            .collect();
        for query in expired {
            self.stats.timeouts.bump();
            let mut unanswered: Vec<(LdapUrl, SimTime, Option<u64>)> = Vec::new();
            if let Some(p) = self.pending.get_mut(&query) {
                for out_id in std::mem::take(&mut p.outstanding) {
                    if let Some(OutboundKind::Chained {
                        child, sent, span, ..
                    }) = self.outbound.remove(&out_id)
                    {
                        unanswered.push((child, sent, span));
                    }
                }
                p.partial = true;
            }
            for (child, sent, span) in unanswered {
                self.note_chain_span(query, &child, sent, span, now, "timeout");
                self.record_child_failure(&child, now);
            }
            actions.extend(self.finalize(query, now));
        }

        // Snapshot on cadence: compact the WAL into a fresh checkpoint.
        if self.persist.as_ref().is_some_and(Journal::wants_snapshot) {
            self.snapshot_persist();
        }

        actions
    }

    /// Forget a disconnected client's session state.
    pub fn drop_client(&mut self, client: ClientId) {
        self.sessions.write().remove(&client);
        self.subs.drop_subscriber(client);
        self.sub_requester.retain(|(c, _), _| *c != client);
        self.sub_next_due.retain(|(c, _), _| *c != client);
    }

    /// Number of active subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.subs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_netsim::{ms, secs};
    use gis_proto::TraceId;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + secs(s)
    }

    fn url(host: &str) -> LdapUrl {
        LdapUrl::server(host)
    }

    fn reg(host: &str, ns: &str, now: SimTime) -> GrrpMessage {
        GrrpMessage::register(url(host), Dn::parse(ns).unwrap(), now, secs(90))
    }

    fn chaining_giis() -> Giis {
        Giis::new(
            GiisConfig::chaining(url("giis.vo"), Dn::root()),
            secs(30),
            secs(90),
        )
    }

    fn search_actions(giis: &mut Giis, base: &str, filter: &str, now: SimTime) -> Vec<GiisAction> {
        giis.handle_request(
            1,
            GripRequest::Search {
                id: 100,
                spec: SearchSpec::subtree(Dn::parse(base).unwrap(), Filter::parse(filter).unwrap()),
            },
            now,
        )
    }

    #[test]
    fn registration_and_expiry() {
        let mut giis = chaining_giis();
        giis.handle_grrp(reg("gris.a", "hn=a", t(0)), t(0));
        giis.handle_grrp(reg("gris.b", "hn=b", t(0)), t(0));
        assert_eq!(giis.active_children(t(10)).len(), 2);
        // No refresh: both expire at t=90.
        giis.tick(t(100));
        assert_eq!(giis.active_children(t(100)).len(), 0);
        assert_eq!(giis.stats().expirations, 2);
    }

    #[test]
    fn accept_policy_namespace() {
        let mut config = GiisConfig::chaining(url("giis.o1"), Dn::parse("o=O1").unwrap());
        config.accept = AcceptPolicy::NamespaceUnder(Dn::parse("o=O1").unwrap());
        let mut giis = Giis::new(config, secs(30), secs(90));
        giis.handle_grrp(reg("gris.in", "hn=a, o=O1", t(0)), t(0));
        giis.handle_grrp(reg("gris.out", "hn=b, o=O2", t(0)), t(0));
        assert_eq!(giis.active_children(t(1)).len(), 1);
        assert_eq!(giis.stats().grrp_rejected, 1);
    }

    #[test]
    fn accept_policy_subjects() {
        let mut config = GiisConfig::chaining(url("giis"), Dn::root());
        config.accept = AcceptPolicy::Subjects(vec!["/CN=trusted".into()]);
        let mut giis = Giis::new(config, secs(30), secs(90));
        giis.handle_grrp(
            reg("gris.x", "hn=x", t(0)).with_subject("/CN=trusted"),
            t(0),
        );
        giis.handle_grrp(reg("gris.y", "hn=y", t(0)).with_subject("/CN=rogue"), t(0));
        giis.handle_grrp(reg("gris.z", "hn=z", t(0)), t(0)); // unsigned
        assert_eq!(giis.active_children(t(1)).len(), 1);
        assert_eq!(giis.stats().grrp_rejected, 2);
    }

    #[test]
    fn chaining_fans_out_and_merges() {
        let mut giis = chaining_giis();
        giis.handle_grrp(reg("gris.a", "hn=a", t(0)), t(0));
        giis.handle_grrp(reg("gris.b", "hn=b", t(0)), t(0));

        let actions = search_actions(&mut giis, "", "(objectclass=*)", t(1));
        let sends: Vec<&GiisAction> = actions
            .iter()
            .filter(|a| matches!(a, GiisAction::SendRequest { .. }))
            .collect();
        assert_eq!(sends.len(), 2);

        // Children reply.
        let mut out_ids = Vec::new();
        for a in &actions {
            if let GiisAction::SendRequest { request, .. } = a {
                out_ids.push(request.id());
            }
        }
        let e_a = Entry::at("hn=a").unwrap().with_class("computer");
        let replies = giis.handle_reply(
            &url("gris.a"),
            GripReply::SearchResult {
                id: out_ids[0],
                code: ResultCode::Success,
                entries: vec![e_a],
                referrals: vec![],
            },
            t(1),
        );
        assert!(replies.is_empty(), "still waiting for gris.b");
        let e_b = Entry::at("hn=b").unwrap().with_class("computer");
        let replies = giis.handle_reply(
            &url("gris.b"),
            GripReply::SearchResult {
                id: out_ids[1],
                code: ResultCode::Success,
                entries: vec![e_b],
                referrals: vec![],
            },
            t(1),
        );
        assert_eq!(replies.len(), 1);
        match &replies[0] {
            GiisAction::Reply {
                client,
                reply: GripReply::SearchResult { code, entries, .. },
            } => {
                assert_eq!(*client, 1);
                assert_eq!(*code, ResultCode::Success);
                assert_eq!(entries.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn namespace_scoping_routes_fan_out() {
        let mut giis = chaining_giis();
        giis.handle_grrp(reg("gris.o1", "o=O1", t(0)), t(0));
        giis.handle_grrp(reg("gris.o2", "o=O2", t(0)), t(0));
        // A search scoped to o=O1 reaches only that child (Figure 5).
        let actions = search_actions(&mut giis, "o=O1", "(objectclass=*)", t(1));
        let targets: Vec<&LdapUrl> = actions
            .iter()
            .filter_map(|a| match a {
                GiisAction::SendRequest { to, .. } => Some(to),
                _ => None,
            })
            .collect();
        assert_eq!(targets, vec![&url("gris.o1")]);
    }

    #[test]
    fn timeout_yields_partial_results() {
        let mut giis = chaining_giis();
        giis.handle_grrp(reg("gris.a", "hn=a", t(0)), t(0));
        giis.handle_grrp(reg("gris.b", "hn=b", t(0)), t(0));
        let actions = search_actions(&mut giis, "", "(objectclass=*)", t(1));
        let out_ids: Vec<u64> = actions
            .iter()
            .filter_map(|a| match a {
                GiisAction::SendRequest { request, .. } => Some(request.id()),
                _ => None,
            })
            .collect();
        // Only gris.a answers; gris.b is partitioned away.
        giis.handle_reply(
            &url("gris.a"),
            GripReply::SearchResult {
                id: out_ids[0],
                code: ResultCode::Success,
                entries: vec![Entry::at("hn=a").unwrap().with_class("computer")],
                referrals: vec![],
            },
            t(1),
        );
        // Deadline (2s default) passes.
        let actions = giis.tick(t(4));
        assert_eq!(giis.stats().timeouts, 1);
        match &actions[..] {
            [GiisAction::Reply {
                reply: GripReply::SearchResult { code, entries, .. },
                ..
            }] => {
                assert_eq!(*code, ResultCode::PartialResults);
                assert_eq!(entries.len(), 1, "partial view still served");
            }
            other => panic!("unexpected {other:?}"),
        }
        // A very late reply from gris.b is dropped harmlessly.
        let late = giis.handle_reply(
            &url("gris.b"),
            GripReply::SearchResult {
                id: out_ids[1],
                code: ResultCode::Success,
                entries: vec![],
                referrals: vec![],
            },
            t(5),
        );
        assert!(late.is_empty());
    }

    #[test]
    fn insufficient_access_becomes_referral() {
        let mut giis = chaining_giis();
        giis.handle_grrp(reg("gris.private", "hn=p", t(0)), t(0));
        let actions = search_actions(&mut giis, "", "(objectclass=*)", t(1));
        let out_id = match &actions[0] {
            GiisAction::SendRequest { request, .. } => request.id(),
            other => panic!("unexpected {other:?}"),
        };
        let replies = giis.handle_reply(
            &url("gris.private"),
            GripReply::SearchResult {
                id: out_id,
                code: ResultCode::InsufficientAccess,
                entries: vec![],
                referrals: vec![],
            },
            t(1),
        );
        match &replies[0] {
            GiisAction::Reply {
                reply: GripReply::SearchResult { referrals, .. },
                ..
            } => assert_eq!(referrals, &vec![url("gris.private")]),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(giis.stats().referrals_issued, 1);
    }

    #[test]
    fn name_mode_answers_locally_with_referrals() {
        let mut config = GiisConfig::chaining(url("giis.names"), Dn::root());
        config.mode = GiisMode::Name;
        let mut giis = Giis::new(config, secs(30), secs(90));
        giis.handle_grrp(reg("gris.a", "hn=a, o=O1", t(0)), t(0));
        giis.handle_grrp(reg("gris.b", "hn=b, o=O2", t(0)), t(0));

        let actions = search_actions(&mut giis, "o=O1", "(objectclass=registration)", t(1));
        match &actions[..] {
            [GiisAction::Reply {
                reply:
                    GripReply::SearchResult {
                        code,
                        entries,
                        referrals,
                        ..
                    },
                ..
            }] => {
                assert_eq!(*code, ResultCode::Success);
                assert_eq!(entries.len(), 1);
                assert_eq!(entries[0].get_str("url"), Some("ldap://gris.a:389"));
                assert_eq!(referrals, &vec![url("gris.a")]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(giis.stats().local_answers, 1);
        assert_eq!(giis.stats().chained_requests, 0);
    }

    #[test]
    fn harvest_mode_builds_and_serves_cache() {
        let mut config = GiisConfig::chaining(url("giis.h"), Dn::root());
        config.mode = GiisMode::Harvest { refresh: secs(60) };
        let mut giis = Giis::new(config, secs(30), secs(90));

        // Registration triggers an immediate harvest query.
        let actions = giis.handle_grrp(reg("gris.a", "hn=a", t(0)), t(0));
        let out_id = match &actions[..] {
            [GiisAction::SendRequest { to, request, .. }] => {
                assert_eq!(to, &url("gris.a"));
                request.id()
            }
            other => panic!("expected harvest, got {other:?}"),
        };
        assert_eq!(giis.stats().harvests, 1);

        // Child returns its subtree.
        giis.handle_reply(
            &url("gris.a"),
            GripReply::SearchResult {
                id: out_id,
                code: ResultCode::Success,
                entries: vec![
                    Entry::at("hn=a")
                        .unwrap()
                        .with_class("computer")
                        .with("system", "linux"),
                    Entry::at("perf=load, hn=a")
                        .unwrap()
                        .with_class("perf")
                        .with("load5", 0.3f64),
                ],
                referrals: vec![],
            },
            t(0),
        );
        assert_eq!(giis.cached_entries(), 2);

        // Searches are answered locally.
        let actions = search_actions(&mut giis, "", "(system=linux)", t(1));
        match &actions[..] {
            [GiisAction::Reply {
                reply: GripReply::SearchResult { entries, .. },
                ..
            }] => assert_eq!(entries.len(), 1),
            other => panic!("unexpected {other:?}"),
        }

        // Expiry purges the harvested rows.
        giis.tick(t(100));
        assert_eq!(giis.cached_entries(), 0);
    }

    #[test]
    fn harvest_refresh_reissues_queries() {
        let mut config = GiisConfig::chaining(url("giis.h"), Dn::root());
        config.mode = GiisMode::Harvest { refresh: secs(60) };
        let mut giis = Giis::new(config, secs(10), secs(300));
        giis.handle_grrp(reg("gris.a", "hn=a", t(0)), t(0));
        assert_eq!(giis.stats().harvests, 1);
        // Keep the registration alive and advance past the refresh.
        giis.handle_grrp(reg("gris.a", "hn=a", t(50)), t(50));
        giis.tick(t(30));
        assert_eq!(giis.stats().harvests, 1, "not due yet");
        giis.tick(t(61));
        assert_eq!(giis.stats().harvests, 2, "refresh due");
    }

    #[test]
    fn bloom_routing_prunes_children() {
        let mut config = GiisConfig::chaining(url("giis.b"), Dn::root());
        config.mode = GiisMode::BloomChain {
            timeout: ms(2000),
            refresh: secs(60),
            bits_per_element: 10,
        };
        let mut giis = Giis::new(config, secs(30), secs(300));

        // Register two children and complete their harvests.
        for (host, ns, system) in [("gris.a", "hn=a", "linux"), ("gris.b", "hn=b", "irix")] {
            let actions = giis.handle_grrp(reg(host, ns, t(0)), t(0));
            let out_id = match &actions[..] {
                [GiisAction::SendRequest { request, .. }] => request.id(),
                other => panic!("expected harvest, got {other:?}"),
            };
            giis.handle_reply(
                &url(host),
                GripReply::SearchResult {
                    id: out_id,
                    code: ResultCode::Success,
                    entries: vec![Entry::at(ns)
                        .unwrap()
                        .with_class("computer")
                        .with("system", system)],
                    referrals: vec![],
                },
                t(0),
            );
        }

        // An equality query for linux must go only to gris.a.
        let actions = search_actions(&mut giis, "", "(system=linux)", t(1));
        let targets: Vec<&LdapUrl> = actions
            .iter()
            .filter_map(|a| match a {
                GiisAction::SendRequest { to, .. } => Some(to),
                _ => None,
            })
            .collect();
        assert_eq!(targets, vec![&url("gris.a")]);
        assert_eq!(giis.stats().bloom_pruned, 1);

        // A presence query cannot be pruned: both children consulted.
        let actions = search_actions(&mut giis, "", "(system=*)", t(1));
        let sends = actions
            .iter()
            .filter(|a| matches!(a, GiisAction::SendRequest { .. }))
            .count();
        assert_eq!(sends, 2);
    }

    #[test]
    fn result_cache_short_circuits_repeat_queries() {
        let mut config = GiisConfig::chaining(url("giis.cached"), Dn::root());
        config.result_cache_ttl = Some(secs(10));
        let mut giis = Giis::new(config, secs(30), secs(300));
        giis.handle_grrp(reg("gris.a", "hn=a", t(0)), t(0));

        // First query fans out.
        let actions = search_actions(&mut giis, "", "(objectclass=*)", t(1));
        let out_id = match &actions[0] {
            GiisAction::SendRequest { request, .. } => request.id(),
            other => panic!("unexpected {other:?}"),
        };
        giis.handle_reply(
            &url("gris.a"),
            GripReply::SearchResult {
                id: out_id,
                code: ResultCode::Success,
                entries: vec![Entry::at("hn=a").unwrap().with_class("computer")],
                referrals: vec![],
            },
            t(1),
        );
        assert_eq!(giis.stats().chained_requests, 1);

        // Second identical query inside the TTL: answered locally.
        let actions = search_actions(&mut giis, "", "(objectclass=*)", t(5));
        match &actions[..] {
            [GiisAction::Reply {
                reply: GripReply::SearchResult { entries, .. },
                ..
            }] => assert_eq!(entries.len(), 1),
            other => panic!("expected cached reply, got {other:?}"),
        }
        assert_eq!(giis.stats().chained_requests, 1, "no second fan-out");
        assert_eq!(giis.stats().result_cache_hits, 1);

        // A *different* query is not served from the cache.
        let actions = search_actions(&mut giis, "", "(objectclass=computer)", t(6));
        assert!(matches!(actions[0], GiisAction::SendRequest { .. }));

        // Past the TTL the original query chains again.
        let actions = search_actions(&mut giis, "", "(objectclass=*)", t(20));
        assert!(matches!(actions[0], GiisAction::SendRequest { .. }));
    }

    #[test]
    fn result_cache_never_stores_partial_results() {
        let mut config = GiisConfig::chaining(url("giis.cached"), Dn::root());
        config.result_cache_ttl = Some(secs(100));
        let mut giis = Giis::new(config, secs(30), secs(300));
        giis.handle_grrp(reg("gris.a", "hn=a", t(0)), t(0));

        let actions = search_actions(&mut giis, "", "(objectclass=*)", t(1));
        let out_id = match &actions[0] {
            GiisAction::SendRequest { request, .. } => request.id(),
            other => panic!("unexpected {other:?}"),
        };
        // The child reports partial results: must NOT be cached (a healed
        // partition should become visible at the next query, not a TTL
        // later).
        giis.handle_reply(
            &url("gris.a"),
            GripReply::SearchResult {
                id: out_id,
                code: ResultCode::PartialResults,
                entries: vec![],
                referrals: vec![],
            },
            t(1),
        );
        let actions = search_actions(&mut giis, "", "(objectclass=*)", t(2));
        assert!(
            matches!(actions[0], GiisAction::SendRequest { .. }),
            "partial results are never served from cache"
        );
        assert_eq!(giis.stats().result_cache_hits, 0);
    }

    #[test]
    fn signed_grrp_verified_and_forgeries_rejected() {
        use gis_gsi::{sign_registration, CertAuthority, TrustStore};
        let ca = CertAuthority::new("/O=Grid/CN=CA", 31);
        let mut trust = TrustStore::new();
        trust.add_ca(&ca);
        let mut config = GiisConfig::chaining(url("giis.secure"), Dn::root());
        config.security = SecurityPolicy::authenticated(ca.issue("/O=Grid/CN=giis.secure"), trust);
        // Membership restricted to one signed identity.
        config.accept = AcceptPolicy::Subjects(vec!["/O=Grid/CN=gris.good".into()]);
        let mut giis = Giis::new(config, secs(30), secs(90));

        // Properly signed registration from the allowed identity.
        let good = ca.issue("/O=Grid/CN=gris.good");
        let mut msg = reg("gris.good", "hn=good", t(0));
        msg.subject = Some(good.subject().to_owned());
        msg.signature = Some(sign_registration(&good, &msg.signable_bytes()));
        giis.handle_grrp(msg, t(0));
        assert_eq!(giis.active_children(t(1)).len(), 1);

        // Unsigned registration: dropped even if the claimed subject is
        // allowed.
        let unsigned = reg("gris.unsigned", "hn=u", t(0)).with_subject("/O=Grid/CN=gris.good");
        giis.handle_grrp(unsigned, t(0));
        assert_eq!(giis.active_children(t(1)).len(), 1);

        // Signed by a different (valid) identity claiming to be the
        // allowed one: the verified subject overrides the claim, so the
        // accept policy rejects it.
        let impostor = ca.issue("/O=Grid/CN=gris.evil");
        let mut forged = reg("gris.forged", "hn=f", t(0));
        forged.subject = Some("/O=Grid/CN=gris.good".into());
        forged.signature = Some(sign_registration(&impostor, &forged.signable_bytes()));
        giis.handle_grrp(forged, t(0));
        assert_eq!(giis.active_children(t(1)).len(), 1);

        // Signature over different bytes (tampered message): dropped.
        let mut tampered = reg("gris.tampered", "hn=t1", t(0));
        tampered.subject = Some(good.subject().to_owned());
        tampered.signature = Some(sign_registration(&good, b"other bytes"));
        giis.handle_grrp(tampered, t(0));
        assert_eq!(giis.active_children(t(1)).len(), 1);

        assert_eq!(giis.stats().grrp_rejected, 3);
    }

    #[test]
    fn credentialed_harvest_binds_first() {
        use gis_gsi::CertAuthority;
        let ca = CertAuthority::new("/O=Grid/CN=CA", 77);
        let mut config = GiisConfig::chaining(url("giis.trusted"), Dn::root());
        config.mode = GiisMode::Harvest { refresh: secs(60) };
        config.security =
            SecurityPolicy::anonymous().with_credential(ca.issue("/O=Grid/CN=giis.trusted"));
        let mut giis = Giis::new(config, secs(30), secs(90));

        // Registration triggers a Bind, not a Search.
        let actions = giis.handle_grrp(reg("gris.a", "hn=a", t(0)), t(0));
        let bind_id = match &actions[..] {
            [GiisAction::SendRequest {
                to,
                request: GripRequest::Bind { id, subject, .. },
                ..
            }] => {
                assert_eq!(to, &url("gris.a"));
                assert_eq!(subject, "/O=Grid/CN=giis.trusted");
                *id
            }
            other => panic!("expected bind, got {other:?}"),
        };
        assert_eq!(giis.stats().harvests, 0);

        // A successful bind is followed by the harvest search.
        let actions = giis.handle_reply(
            &url("gris.a"),
            GripReply::BindResult {
                id: bind_id,
                ok: true,
                subject: Some("/O=Grid/CN=giis.trusted".into()),
            },
            t(0),
        );
        let harvest_id = match &actions[..] {
            [GiisAction::SendRequest {
                request: GripRequest::Search { id, .. },
                ..
            }] => *id,
            other => panic!("expected harvest search, got {other:?}"),
        };
        assert_eq!(giis.stats().harvests, 1);

        giis.handle_reply(
            &url("gris.a"),
            GripReply::SearchResult {
                id: harvest_id,
                code: ResultCode::Success,
                entries: vec![Entry::at("hn=a").unwrap().with_class("computer")],
                referrals: vec![],
            },
            t(0),
        );
        assert_eq!(giis.cached_entries(), 1);

        // Subsequent harvests reuse the bound session: no second bind.
        // Keep the registration alive, then force a refresh.
        giis.handle_grrp(reg("gris.a", "hn=a", t(50)), t(50));
        let actions = giis.tick(t(61));
        assert!(
            actions.iter().any(|a| matches!(
                a,
                GiisAction::SendRequest {
                    request: GripRequest::Search { .. },
                    ..
                }
            )),
            "refresh harvest goes straight to search: {actions:?}"
        );
    }

    #[test]
    fn hierarchy_registration_flows_upward() {
        let mut giis = chaining_giis();
        giis.agent.add_target(url("giis.root"));
        let actions = giis.tick(t(0));
        match &actions[..] {
            [GiisAction::SendGrrp { to, message }] => {
                assert_eq!(to, &url("giis.root"));
                assert_eq!(message.service_url, url("giis.vo"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn invitation_flow_adds_parent() {
        let mut giis = chaining_giis();
        let parent = Giis::new(
            GiisConfig::chaining(url("giis.parent"), Dn::root()),
            secs(30),
            secs(90),
        );
        let invite = parent.invite(url("giis.vo"), t(0), secs(60));
        match invite {
            GiisAction::SendGrrp { to, message } => {
                assert_eq!(to, url("giis.vo"));
                giis.handle_grrp(message, t(0));
            }
            other => panic!("unexpected {other:?}"),
        }
        let actions = giis.tick(t(0));
        assert!(actions.iter().any(|a| matches!(
            a,
            GiisAction::SendGrrp { to, .. } if to == &url("giis.parent")
        )));
    }

    #[test]
    fn empty_directory_answers_empty() {
        let mut giis = chaining_giis();
        let actions = search_actions(&mut giis, "", "(objectclass=*)", t(0));
        match &actions[..] {
            [GiisAction::Reply {
                reply: GripReply::SearchResult { code, entries, .. },
                ..
            }] => {
                assert_eq!(*code, ResultCode::Success);
                assert!(entries.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn harvest_mode_subscription_delivers_on_change() {
        let mut config = GiisConfig::chaining(url("giis.sub"), Dn::root());
        config.mode = GiisMode::Harvest { refresh: secs(60) };
        let mut giis = Giis::new(config, secs(30), secs(300));

        // Register + harvest one child.
        let actions = giis.handle_grrp(reg("gris.a", "hn=a", t(0)), t(0));
        let out_id = match &actions[..] {
            [GiisAction::SendRequest { request, .. }] => request.id(),
            other => panic!("expected harvest, got {other:?}"),
        };
        giis.handle_reply(
            &url("gris.a"),
            GripReply::SearchResult {
                id: out_id,
                code: ResultCode::Success,
                entries: vec![Entry::at("hn=a").unwrap().with_class("computer")],
                referrals: vec![],
            },
            t(0),
        );

        // Subscribe on-change to the computer set.
        let actions = giis.handle_request(
            9,
            GripRequest::Subscribe {
                id: 1,
                spec: SearchSpec::subtree(
                    Dn::root(),
                    Filter::parse("(objectclass=computer)").unwrap(),
                ),
                mode: gis_proto::SubscriptionMode::OnChange,
            },
            t(1),
        );
        match &actions[..] {
            [GiisAction::Reply {
                reply: GripReply::Update { entries, .. },
                ..
            }] => assert_eq!(entries.len(), 1, "initial snapshot"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(giis.subscription_count(), 1);

        // No change, no update.
        assert!(giis.tick(t(5)).iter().all(|a| !matches!(
            a,
            GiisAction::Reply {
                reply: GripReply::Update { .. },
                ..
            }
        )));

        // A second child registers and is harvested: the set changes.
        let actions = giis.handle_grrp(reg("gris.b", "hn=b", t(6)), t(6));
        let out_id = match &actions[..] {
            [GiisAction::SendRequest { request, .. }] => request.id(),
            other => panic!("expected harvest, got {other:?}"),
        };
        giis.handle_reply(
            &url("gris.b"),
            GripReply::SearchResult {
                id: out_id,
                code: ResultCode::Success,
                entries: vec![Entry::at("hn=b").unwrap().with_class("computer")],
                referrals: vec![],
            },
            t(6),
        );
        let updates: Vec<_> = giis
            .tick(t(7))
            .into_iter()
            .filter(|a| {
                matches!(
                    a,
                    GiisAction::Reply {
                        reply: GripReply::Update { .. },
                        ..
                    }
                )
            })
            .collect();
        assert_eq!(updates.len(), 1, "change delivered");
        match &updates[0] {
            GiisAction::Reply {
                client,
                reply: GripReply::Update { entries, .. },
            } => {
                assert_eq!(*client, 9);
                assert_eq!(entries.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }

        // Expiry of a child also triggers an update (the watched set
        // shrinks when soft state lapses).
        // Both registrations expire (ttl 90s in reg()); the same tick
        // sweeps them and delivers the shrunken view.
        let updates: Vec<_> = giis
            .tick(t(400))
            .into_iter()
            .filter(|a| {
                matches!(
                    a,
                    GiisAction::Reply {
                        reply: GripReply::Update { .. },
                        ..
                    }
                )
            })
            .collect();
        assert!(!updates.is_empty(), "expiry-driven update");

        // Unsubscribe.
        let actions = giis.handle_request(9, GripRequest::Unsubscribe { id: 1 }, t(402));
        assert!(matches!(
            actions[..],
            [GiisAction::Reply {
                reply: GripReply::SubscriptionDone {
                    code: ResultCode::Success,
                    ..
                },
                ..
            }]
        ));
        assert_eq!(giis.subscription_count(), 0);
    }

    fn breaker_giis(threshold: u32, retry: bool) -> Giis {
        let mut config = GiisConfig::chaining(url("giis.vo"), Dn::root());
        config.breaker = Some(BreakerConfig {
            failure_threshold: threshold,
            cooldown: secs(10),
            retry,
        });
        Giis::new(config, secs(30), secs(90))
    }

    fn search_id(giis: &mut Giis, id: u64, now: SimTime) -> Vec<GiisAction> {
        giis.handle_request(
            1,
            GripRequest::Search {
                id,
                spec: SearchSpec::subtree(Dn::root(), Filter::parse("(objectclass=*)").unwrap()),
            },
            now,
        )
    }

    fn sends(actions: &[GiisAction]) -> Vec<(LdapUrl, u64)> {
        actions
            .iter()
            .filter_map(|a| match a {
                GiisAction::SendRequest { to, request, .. } => Some((to.clone(), request.id())),
                _ => None,
            })
            .collect()
    }

    fn ok_reply(giis: &mut Giis, child: &str, id: u64, now: SimTime) -> Vec<GiisAction> {
        giis.handle_reply(
            &url(child),
            GripReply::SearchResult {
                id,
                code: ResultCode::Success,
                entries: vec![Entry::at(&format!("hn={child}"))
                    .unwrap()
                    .with_class("computer")],
                referrals: vec![],
            },
            now,
        )
    }

    #[test]
    fn breaker_opens_after_threshold_and_skips_instantly() {
        let mut giis = breaker_giis(2, false);
        giis.handle_grrp(reg("gris.a", "hn=gris.a", t(0)), t(0));
        giis.handle_grrp(reg("gris.b", "hn=gris.b", t(0)), t(0));

        // Two rounds where gris.b never answers: consecutive failures
        // accumulate until the circuit opens.
        for (round, start) in [(0u64, 1u64), (1, 5)] {
            let actions = search_id(&mut giis, 100 + round, t(start));
            let out = sends(&actions);
            assert_eq!(out.len(), 2, "circuit still closed in round {round}");
            let (_, a_id) = out.iter().find(|(to, _)| *to == url("gris.a")).unwrap();
            ok_reply(&mut giis, "gris.a", *a_id, t(start));
            giis.tick(t(start + 3)); // past the 2s chain deadline
        }
        assert_eq!(giis.stats().breaker_opens, 1);

        // Next query skips gris.b without waiting: gris.a's reply alone
        // finalizes the answer well before the chaining deadline, marked
        // partial because a child was bypassed.
        let actions = search_id(&mut giis, 102, t(9));
        let out = sends(&actions);
        assert_eq!(out, vec![(url("gris.a"), out[0].1)]);
        assert_eq!(giis.stats().breaker_skips, 1);
        let replies = ok_reply(&mut giis, "gris.a", out[0].1, t(9));
        match &replies[..] {
            [GiisAction::Reply {
                reply: GripReply::SearchResult { code, entries, .. },
                ..
            }] => {
                assert_eq!(*code, ResultCode::PartialResults);
                assert_eq!(entries.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn half_open_probe_readmits_child_on_reply() {
        let mut giis = breaker_giis(1, false);
        giis.handle_grrp(reg("gris.a", "hn=gris.a", t(0)), t(0));
        giis.handle_grrp(reg("gris.b", "hn=gris.b", t(0)), t(0));

        // One timeout opens the circuit (threshold 1) until t(4)+10s.
        let actions = search_id(&mut giis, 100, t(1));
        let out = sends(&actions);
        let (_, a_id) = out.iter().find(|(to, _)| *to == url("gris.a")).unwrap();
        ok_reply(&mut giis, "gris.a", *a_id, t(1));
        giis.tick(t(4));
        assert_eq!(giis.stats().breaker_opens, 1);

        // After the cooldown lapses the next query doubles as a probe:
        // gris.b is included again in half-open state.
        let actions = search_id(&mut giis, 101, t(15));
        let out = sends(&actions);
        assert_eq!(out.len(), 2, "probe rides the live query");
        assert_eq!(giis.stats().breaker_probes, 1);
        let (_, b_id) = out.iter().find(|(to, _)| *to == url("gris.b")).unwrap();
        ok_reply(&mut giis, "gris.b", *b_id, t(15));
        assert_eq!(
            giis.stats().breaker_closes,
            1,
            "any reply closes the circuit"
        );
        let (_, a_id) = out.iter().find(|(to, _)| *to == url("gris.a")).unwrap();
        let replies = ok_reply(&mut giis, "gris.a", *a_id, t(15));
        match &replies[..] {
            [GiisAction::Reply {
                reply: GripReply::SearchResult { code, entries, .. },
                ..
            }] => {
                assert_eq!(*code, ResultCode::Success, "complete answer after heal");
                assert_eq!(entries.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn half_open_probe_timeout_reopens_circuit() {
        let mut giis = breaker_giis(1, false);
        giis.handle_grrp(reg("gris.a", "hn=gris.a", t(0)), t(0));
        giis.handle_grrp(reg("gris.b", "hn=gris.b", t(0)), t(0));

        let actions = search_id(&mut giis, 100, t(1));
        let (_, a_id) = sends(&actions)
            .into_iter()
            .find(|(to, _)| *to == url("gris.a"))
            .unwrap();
        ok_reply(&mut giis, "gris.a", a_id, t(1));
        giis.tick(t(4)); // opens until t(14)

        // Probe at t(15) also times out: straight back to open, no
        // threshold accumulation in half-open state.
        let actions = search_id(&mut giis, 101, t(15));
        assert_eq!(sends(&actions).len(), 2);
        let (_, a_id) = sends(&actions)
            .into_iter()
            .find(|(to, _)| *to == url("gris.a"))
            .unwrap();
        ok_reply(&mut giis, "gris.a", a_id, t(15));
        giis.tick(t(18));
        assert_eq!(giis.stats().breaker_reopens, 1);

        // Still skipped while the new cooldown runs.
        let actions = search_id(&mut giis, 102, t(20));
        assert_eq!(sends(&actions).len(), 1);
        assert_eq!(giis.stats().breaker_skips, 1);
    }

    #[test]
    fn in_deadline_retry_recovers_lost_request() {
        let mut giis = breaker_giis(3, true);
        giis.handle_grrp(reg("gris.a", "hn=gris.a", t(0)), t(0));

        // First send is "lost" (never answered). At the deadline midpoint
        // the engine re-asks with a fresh request id.
        let actions = search_id(&mut giis, 100, t(1));
        let out = sends(&actions);
        assert_eq!(out.len(), 1);
        let old_id = out[0].1;

        let actions = giis.tick(t(2));
        let retried = sends(&actions);
        assert_eq!(retried.len(), 1, "one in-deadline retry");
        assert_eq!(retried[0].0, url("gris.a"));
        assert_ne!(retried[0].1, old_id, "retry uses a fresh outbound id");
        assert_eq!(giis.stats().chain_retries, 1);

        // A late reply to the superseded id is dropped...
        assert!(ok_reply(&mut giis, "gris.a", old_id, t(2)).is_empty());

        // ...while the retry's reply completes the answer in time.
        let replies = ok_reply(&mut giis, "gris.a", retried[0].1, t(2));
        match &replies[..] {
            [GiisAction::Reply {
                reply: GripReply::SearchResult { code, entries, .. },
                ..
            }] => {
                assert_eq!(*code, ResultCode::Success);
                assert_eq!(entries.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(giis.stats().timeouts, 0, "no timeout was charged");
    }

    #[test]
    fn subscribe_rejected_politely() {
        let mut giis = chaining_giis();
        let actions = giis.handle_request(
            1,
            GripRequest::Subscribe {
                id: 7,
                spec: SearchSpec::lookup(Dn::root()),
                mode: gis_proto::SubscriptionMode::OnChange,
            },
            t(0),
        );
        match &actions[..] {
            [GiisAction::Reply {
                reply: GripReply::SubscriptionDone { code, .. },
                ..
            }] => assert_eq!(*code, ResultCode::UnwillingToPerform),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn monitoring_namespace_answered_locally() {
        let mut config = GiisConfig::chaining(url("giis.vo"), Dn::root());
        config.mode = GiisMode::Harvest { refresh: secs(60) };
        let mut giis = Giis::new(config, secs(30), secs(90));
        giis.handle_grrp(reg("gris.a", "hn=a", t(0)), t(0));

        let actions = search_actions(&mut giis, "mds-vo-name=monitoring", "(objectclass=*)", t(1));
        match &actions[..] {
            [GiisAction::Reply {
                reply: GripReply::SearchResult { code, entries, .. },
                ..
            }] => {
                assert_eq!(*code, ResultCode::Success);
                let svc = entries
                    .iter()
                    .find(|e| e.get_str("service-type") == Some("giis"))
                    .expect("self-describing mds-service entry");
                assert!(svc.has_class("mds-service"));
                assert_eq!(svc.get_str("mode"), Some("harvest"));
                assert!(
                    entries.iter().any(|e| e.has_class("mds-child")),
                    "registered children appear as mds-child entries"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        let stats = giis.stats();
        assert_eq!(stats.monitoring_queries, 1);
        assert_eq!(stats.searches, 1);
        assert_eq!(stats.local_answers, 0, "monitoring is not a cache answer");
    }

    #[test]
    fn monitoring_search_fans_out_to_children() {
        let mut giis = chaining_giis();
        giis.handle_grrp(reg("gris.a", "hn=a", t(0)), t(0));
        giis.handle_grrp(reg("gris.b", "hn=b", t(0)), t(0));

        let actions = search_actions(&mut giis, "mds-vo-name=monitoring", "(objectclass=*)", t(1));
        let mut out = Vec::new();
        for a in &actions {
            if let GiisAction::SendRequest { to, request, .. } = a {
                if let GripRequest::Search { spec, .. } = request {
                    assert!(
                        metrics::is_monitoring_dn(&spec.base),
                        "children are asked for their own monitoring view"
                    );
                }
                out.push((to.clone(), request.id()));
            }
        }
        assert_eq!(
            out.len(),
            2,
            "monitoring fans out to every active child, ignoring namespace scoping"
        );

        // Each child reports its own self-description.
        let mut last = Vec::new();
        for (child, out_id) in &out {
            let e = Entry::at(&format!("service={child}, mds-vo-name=monitoring"))
                .unwrap()
                .with_class("mds-service")
                .with("service-type", "gris");
            last = giis.handle_reply(
                child,
                GripReply::SearchResult {
                    id: *out_id,
                    code: ResultCode::Success,
                    entries: vec![e],
                    referrals: vec![],
                },
                t(1),
            );
        }
        match &last[..] {
            [GiisAction::Reply {
                reply: GripReply::SearchResult { code, entries, .. },
                ..
            }] => {
                assert_eq!(*code, ResultCode::Success);
                assert!(
                    entries
                        .iter()
                        .any(|e| e.get_str("service-type") == Some("giis")),
                    "merged view keeps the index's own entry"
                );
                let grises = entries
                    .iter()
                    .filter(|e| e.get_str("service-type") == Some("gris"))
                    .count();
                assert_eq!(grises, 2, "both children's entries are merged in");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(giis.stats().monitoring_queries, 1);
    }

    #[test]
    fn monitoring_disabled_is_no_such_object() {
        let mut config = GiisConfig::chaining(url("giis.dark"), Dn::root());
        config.observability = false;
        let mut giis = Giis::new(config, secs(30), secs(90));
        giis.handle_grrp(reg("gris.a", "hn=a", t(0)), t(0));

        let actions = search_actions(&mut giis, "mds-vo-name=monitoring", "(objectclass=*)", t(1));
        match &actions[..] {
            [GiisAction::Reply {
                reply: GripReply::SearchResult { code, entries, .. },
                ..
            }] => {
                assert_eq!(*code, ResultCode::NoSuchObject);
                assert!(entries.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(giis.stats().monitoring_queries, 0);
    }

    #[test]
    fn traced_chain_records_complete_span_tree() {
        let mut giis = chaining_giis();
        let sink = Arc::new(TraceSink::new());
        giis.set_trace_sink(Arc::clone(&sink));
        giis.handle_grrp(reg("gris.a", "hn=a", t(0)), t(0));
        giis.handle_grrp(reg("gris.b", "hn=b", t(0)), t(0));

        // Mint a root span the way a client hop would.
        let root = sink.next_span();
        let trace = TraceId(root);
        let ctx = TraceContext {
            trace,
            parent: root,
        };
        let actions = giis.handle_request_traced(
            1,
            GripRequest::Search {
                id: 7,
                spec: SearchSpec::subtree(Dn::root(), Filter::always()),
            },
            Some(ctx),
            t(1),
        );

        // Every outgoing leg forwards a context parented on its own
        // chain span (not on the client root).
        let mut out = Vec::new();
        for a in &actions {
            if let GiisAction::SendRequest {
                to,
                request,
                trace: leg,
            } = a
            {
                let leg = leg.expect("traced fan-out forwards a context");
                assert_eq!(leg.trace, trace);
                assert_ne!(leg.parent, root);
                out.push((to.clone(), request.id()));
            }
        }
        assert_eq!(out.len(), 2);
        for (child, out_id) in &out {
            giis.handle_reply(
                child,
                GripReply::SearchResult {
                    id: *out_id,
                    code: ResultCode::Success,
                    entries: vec![],
                    referrals: vec![],
                },
                t(2),
            );
        }
        // Close the client root span, as a runtime client does.
        sink.record(SpanRecord {
            trace,
            span: root,
            parent: None,
            service: "client:1".into(),
            name: "client.search".into(),
            start: t(1),
            end: t(2),
            outcome: "success".into(),
        });

        let tree = sink.tree(trace);
        assert_eq!(tree.len(), 4, "client + giis.search + two chain legs");
        assert_eq!(tree.depth(), 3, "chain legs parent on the giis.search span");
        let rendered = tree.render();
        assert!(rendered.contains("giis.search"));
        assert!(rendered.contains("chain:ldap://gris.a"));
        assert!(rendered.contains("chain:ldap://gris.b"));
    }

    /// Regression: hammer `stats()` while workers answer from the result
    /// cache. The bump order (packed searches half before
    /// `result_cache_hits`) plus the snapshot read order (hits before the
    /// packed word) must keep every live snapshot coherent.
    #[test]
    fn stats_snapshot_never_tears_under_concurrent_queries() {
        use std::sync::atomic::{AtomicBool, Ordering};

        let mut config = GiisConfig::chaining(url("giis.hammer"), Dn::root());
        config.result_cache_ttl = Some(secs(1000));
        let mut giis = Giis::new(config, secs(30), secs(300));
        giis.handle_grrp(reg("gris.a", "hn=a", t(0)), t(0));

        // Warm the result cache through the owner's fan-out.
        let actions = search_actions(&mut giis, "", "(objectclass=*)", t(1));
        let out_id = match &actions[0] {
            GiisAction::SendRequest { request, .. } => request.id(),
            other => panic!("unexpected {other:?}"),
        };
        giis.handle_reply(
            &url("gris.a"),
            GripReply::SearchResult {
                id: out_id,
                code: ResultCode::Success,
                entries: vec![Entry::at("hn=a").unwrap().with_class("computer")],
                referrals: vec![],
            },
            t(1),
        );

        let path = giis.query_path();
        let spec = SearchSpec::subtree(Dn::root(), Filter::parse("(objectclass=*)").unwrap());
        let done = Arc::new(AtomicBool::new(false));

        let reader = {
            let path = path.clone();
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut reads = 0u64;
                while !done.load(Ordering::Acquire) {
                    let s = path.stats();
                    assert!(
                        s.result_cache_hits <= s.searches,
                        "torn snapshot: {} hits > {} searches",
                        s.result_cache_hits,
                        s.searches
                    );
                    assert!(s.local_answers <= s.searches);
                    reads += 1;
                }
                reads
            })
        };

        const WORKERS: usize = 4;
        const PER_WORKER: u64 = 500;
        let handles: Vec<_> = (0..WORKERS)
            .map(|_| {
                let path = path.clone();
                let spec = spec.clone();
                std::thread::spawn(move || {
                    for i in 0..PER_WORKER {
                        let ok = path
                            .handle_query(
                                1,
                                GripRequest::Search {
                                    id: i,
                                    spec: spec.clone(),
                                },
                                t(2),
                            )
                            .expect("warm cache answers on the query path");
                        assert_eq!(ok.len(), 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        done.store(true, Ordering::Release);
        let reads = reader.join().unwrap();
        assert!(reads > 0, "reader observed at least one live snapshot");

        // Quiesced, the counts are exact: the warm-up miss plus every
        // worker hit.
        let s = giis.stats();
        let hits = (WORKERS as u64) * PER_WORKER;
        assert_eq!(s.result_cache_hits, hits);
        assert_eq!(s.searches, hits + 1);
        assert_eq!(s.chained_requests, 1);
    }

    fn harvest_giis_with(storage: Arc<dyn gis_store::Storage>, now: SimTime) -> Giis {
        let mut config = GiisConfig::chaining(url("giis.h"), Dn::root());
        config.mode = GiisMode::Harvest { refresh: secs(60) };
        let mut giis = Giis::new(config, secs(30), secs(90));
        giis.set_persistence(storage, JournalOptions::default(), now);
        giis
    }

    #[test]
    fn persistence_recovers_cache_and_clocks() {
        let storage: Arc<dyn gis_store::Storage> = Arc::new(gis_store::MemStorage::new());
        let mut giis = harvest_giis_with(storage.clone(), t(0));

        // Register → immediate harvest → cache populated.
        let actions = giis.handle_grrp(reg("gris.a", "hn=a", t(0)), t(0));
        let out_id = match &actions[..] {
            [GiisAction::SendRequest { request, .. }] => request.id(),
            other => panic!("expected harvest, got {other:?}"),
        };
        giis.handle_reply(
            &url("gris.a"),
            GripReply::SearchResult {
                id: out_id,
                code: ResultCode::Success,
                entries: vec![Entry::at("hn=a").unwrap().with_class("computer")],
                referrals: vec![],
            },
            t(0),
        );
        assert_eq!(giis.cached_entries(), 1);
        drop(giis);

        // "Crash": reopen from the same storage mid-lifetime.
        let mut giis = harvest_giis_with(storage, t(10));
        assert_eq!(giis.cached_entries(), 1, "harvested cache recovered");
        assert_eq!(giis.active_children(t(10)).len(), 1, "registration alive");

        // Re-registration after recovery is a refresh, not a new child:
        // no second harvest storm (last_harvest was recovered).
        let actions = giis.handle_grrp(reg("gris.a", "hn=a", t(10)), t(10));
        assert!(actions.is_empty(), "refresh must not re-harvest");
        assert_eq!(giis.stats().harvests, 0);

        // The original expiry deadline survives: registered at t=0 with
        // ttl 90s, refreshed at t=10 → alive at t=99, gone at t=101.
        assert_eq!(giis.active_children(t(99)).len(), 1);
        giis.tick(t(101));
        assert_eq!(giis.active_children(t(101)).len(), 0);
        assert_eq!(giis.cached_entries(), 0, "expired rows purged");
    }

    #[test]
    fn persistence_journals_expiry_sweep() {
        let storage: Arc<dyn gis_store::Storage> = Arc::new(gis_store::MemStorage::new());
        let mut giis = harvest_giis_with(storage.clone(), t(0));
        giis.handle_grrp(reg("gris.a", "hn=a", t(0)), t(0));
        // Expire the child while the first incarnation is still up...
        giis.tick(t(100));
        assert_eq!(giis.active_children(t(100)).len(), 0);
        drop(giis);
        // ...and the expiry is durable: recovery does not resurrect it.
        let giis = harvest_giis_with(storage, t(100));
        assert_eq!(giis.active_children(t(100)).len(), 0);
        assert_eq!(giis.cached_entries(), 0);
    }
}
