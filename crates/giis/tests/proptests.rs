//! Property tests for the GIIS: Bloom filter soundness and directory
//! invariants under arbitrary registration/expiry interleavings.

use gis_giis::{AcceptPolicy, BloomFilter, Giis, GiisAction, GiisConfig, GiisMode};
use gis_ldap::{Dn, LdapUrl, Rdn};
use gis_netsim::{SimDuration, SimTime};
use gis_proto::{GripRequest, GrrpMessage, SearchSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bloom_no_false_negatives(
        tokens in prop::collection::vec("[ -~]{1,20}", 0..200),
        bits_per_element in 1usize..16,
        hashes in 1u32..8,
    ) {
        let mut bf = BloomFilter::new(tokens.len().max(1) * bits_per_element, hashes);
        for t in &tokens {
            bf.insert(t);
        }
        for t in &tokens {
            prop_assert!(bf.may_contain(t), "false negative for {t:?}");
        }
    }

    #[test]
    fn bloom_clear_restores_emptiness(tokens in prop::collection::vec("[a-z]{1,10}", 1..50)) {
        let mut bf = BloomFilter::for_capacity(tokens.len(), 10);
        for t in &tokens {
            bf.insert(t);
        }
        bf.clear();
        prop_assert_eq!(bf.fill_ratio(), 0.0);
        prop_assert_eq!(bf.inserted(), 0);
    }

    /// Arbitrary interleavings of register / advance-time / sweep must
    /// keep the directory's soft-state view consistent: active children
    /// are exactly the unexpired ones, and chained fan-outs only target
    /// active children.
    #[test]
    fn giis_registry_consistency(
        events in prop::collection::vec((0u8..3, 0u32..10, 1u64..100), 1..60)
    ) {
        let mut giis = Giis::new(
            GiisConfig::chaining(LdapUrl::server("giis"), Dn::root()),
            SimDuration::from_secs(30),
            SimDuration::from_secs(90),
        );
        let mut now = SimTime::ZERO;
        let ttl = SimDuration::from_secs(50);

        for (kind, who, dt) in events {
            match kind {
                0 => {
                    // register/refresh child `who`
                    let url = LdapUrl::server(format!("gris.c{who}"));
                    let ns = Dn::from_rdns(vec![Rdn::new("hn", format!("c{who}"))]);
                    giis.handle_grrp(GrrpMessage::register(url, ns, now, ttl), now);
                }
                1 => {
                    now += SimDuration::from_secs(dt);
                }
                _ => {
                    giis.tick(now);
                }
            }
            // Invariant: every active child is fresh in the registry.
            for child in giis.active_children(now) {
                prop_assert!(giis.registry.is_fresh(&child, now));
            }
        }

        // A fan-out at the end targets exactly the active children.
        let active = giis.active_children(now);
        let actions = giis.handle_request(
            1,
            GripRequest::Search {
                id: 999,
                spec: SearchSpec::subtree(Dn::root(), gis_ldap::Filter::always()),
            },
            now,
        );
        let targets: Vec<&LdapUrl> = actions
            .iter()
            .filter_map(|a| match a {
                GiisAction::SendRequest { to, .. } => Some(to),
                _ => None,
            })
            .collect();
        if active.is_empty() {
            prop_assert!(targets.is_empty());
            let is_single_reply = matches!(actions[..], [GiisAction::Reply { .. }]);
            prop_assert!(is_single_reply);
        } else {
            prop_assert_eq!(targets.len(), active.len());
            for t in targets {
                prop_assert!(active.contains(t));
            }
        }
    }

    /// The namespace accept policy admits exactly the registrations under
    /// its suffix.
    #[test]
    fn accept_policy_namespace_exactness(
        suffix_val in "[A-Z][0-9]",
        regs in prop::collection::vec(("[a-z]{1,5}", prop::bool::ANY), 1..20)
    ) {
        let suffix = Dn::from_rdns(vec![Rdn::new("o", suffix_val.clone())]);
        let policy = AcceptPolicy::NamespaceUnder(suffix.clone());
        let mut expected = 0;
        let mut giis = Giis::new(
            GiisConfig {
                service: gis_gsi::ServiceConfig::open(LdapUrl::server("giis")),
                namespace: suffix.clone(),
                mode: GiisMode::Name,
                accept: policy,
                result_cache_ttl: None,
                breaker: None,
                shards: Vec::new(),
            },
            SimDuration::from_secs(30),
            SimDuration::from_secs(90),
        );
        let now = SimTime::ZERO;
        for (i, (host, inside)) in regs.iter().enumerate() {
            let ns = if *inside {
                Dn::from_rdns(vec![Rdn::new("hn", host.clone())]).under(&suffix)
            } else {
                Dn::from_rdns(vec![Rdn::new("hn", host.clone()), Rdn::new("o", "other")])
            };
            if *inside {
                expected += 1;
            }
            giis.handle_grrp(
                GrrpMessage::register(
                    LdapUrl::server(format!("gris.{i}")),
                    ns,
                    now,
                    SimDuration::from_secs(60),
                ),
                now,
            );
        }
        prop_assert_eq!(giis.active_children(now).len(), expected);
        prop_assert_eq!(
            giis.stats().grrp_rejected as usize,
            regs.len() - expected
        );
    }
}
