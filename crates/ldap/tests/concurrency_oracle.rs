//! Linearizability oracle for the snapshot-published DIT.
//!
//! M writer threads upsert and expire entries through [`SharedDit::mutate`]
//! while K reader threads search snapshots. Each mutation batch is
//! appended to a shared serialization log *inside* the mutate closure —
//! i.e. under the master lock — so the log order is exactly the order in
//! which batches took effect. Every batch also stamps a sentinel entry
//! with the count of batches applied so far.
//!
//! A reader then checks two invariants against every snapshot it takes:
//!
//! 1. **Oracle equality**: replaying the first `gen` logged batches on a
//!    fresh single-threaded [`Dit`] reproduces the snapshot's search
//!    output exactly — every concurrent result set equals the output of
//!    some single-threaded execution (a serialization prefix).
//! 2. **No torn reads**: the snapshot equals a whole-batch prefix; it can
//!    never mix pre- and post-swap entries of any batch (this falls out
//!    of 1 — a mixed state matches no prefix).

use gis_ldap::{Dit, Dn, Entry, Filter, Scope, SharedDit};
use parking_lot::Mutex;
use std::sync::Arc;

const SLOTS: usize = 6;

#[derive(Clone, Copy, Debug)]
enum Op {
    Upsert {
        slot: usize,
        val: u64,
    },
    /// Soft-state expiry: the entry vanishes.
    Expire {
        slot: usize,
    },
}

fn slot_dn(slot: usize) -> Dn {
    Dn::parse(&format!("rn=r{slot}")).expect("slot dn")
}

fn sentinel_dn() -> Dn {
    Dn::parse("meta=oracle").expect("sentinel dn")
}

fn apply(dit: &mut Dit, op: Op) {
    match op {
        Op::Upsert { slot, val } => {
            dit.upsert(
                Entry::new(slot_dn(slot))
                    .with_class("record")
                    .with("val", val as i64),
            );
        }
        Op::Expire { slot } => {
            dit.delete(&slot_dn(slot));
        }
    }
}

fn stamp(dit: &mut Dit, gen: usize) {
    dit.upsert(
        Entry::new(sentinel_dn())
            .with_class("sentinel")
            .with("gen", gen as i64),
    );
}

/// The observable state a search yields: (dn, val) pairs of the records.
fn observe(dit: &Dit) -> Vec<(String, Option<String>)> {
    let mut out: Vec<(String, Option<String>)> = dit
        .search_shared(
            &Dn::root(),
            Scope::Sub,
            &Filter::parse("(objectclass=record)").expect("filter"),
            &[],
            0,
        )
        .iter()
        .map(|e| (e.dn().to_string(), e.get_str("val").map(str::to_owned)))
        .collect();
    out.sort();
    out
}

/// Tiny deterministic generator so writers need no shared RNG.
fn next_rand(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

#[test]
fn concurrent_searches_match_a_serialized_execution() {
    // Tuned so the full run stays fast while still crossing 1k
    // writer-vs-reader iterations.
    const ITERS: usize = 1_000;
    const WRITERS: usize = 2;
    const BATCHES_PER_WRITER: usize = 5;
    const OPS_PER_BATCH: usize = 3;
    const READERS: usize = 2;
    const SNAPSHOTS_PER_READER: usize = 6;

    for iter in 0..ITERS {
        let shared = Arc::new(SharedDit::new());
        // The serialization log: batch i here is the i-th batch that took
        // effect, because pushes happen under the master lock.
        let log: Arc<Mutex<Vec<Vec<Op>>>> = Arc::new(Mutex::new(Vec::new()));
        shared.mutate(|d| stamp(d, 0));

        std::thread::scope(|s| {
            for w in 0..WRITERS {
                let shared = Arc::clone(&shared);
                let log = Arc::clone(&log);
                let mut seed = (iter as u64) << 8 | w as u64;
                s.spawn(move || {
                    for _ in 0..BATCHES_PER_WRITER {
                        let batch: Vec<Op> = (0..OPS_PER_BATCH)
                            .map(|_| {
                                let slot = (next_rand(&mut seed) as usize) % SLOTS;
                                if next_rand(&mut seed) % 4 == 0 {
                                    Op::Expire { slot }
                                } else {
                                    Op::Upsert {
                                        slot,
                                        val: next_rand(&mut seed) % 1_000,
                                    }
                                }
                            })
                            .collect();
                        shared.mutate(|d| {
                            let mut log = log.lock();
                            log.push(batch.clone());
                            for op in &batch {
                                apply(d, *op);
                            }
                            stamp(d, log.len());
                        });
                    }
                });
            }
            for _ in 0..READERS {
                let shared = Arc::clone(&shared);
                let log = Arc::clone(&log);
                s.spawn(move || {
                    for _ in 0..SNAPSHOTS_PER_READER {
                        let snap = shared.snapshot();
                        let gen = snap
                            .get(&sentinel_dn())
                            .and_then(|e| e.get_str("gen").map(str::to_owned))
                            .and_then(|g| g.parse::<usize>().ok())
                            .expect("sentinel present in every snapshot");
                        // The logged prefix the sentinel claims is fully
                        // present (pushes precede the stamp, both under
                        // the master lock).
                        let prefix: Vec<Vec<Op>> = log.lock().iter().take(gen).cloned().collect();
                        assert_eq!(
                            prefix.len(),
                            gen,
                            "snapshot generation beyond the serialization log"
                        );
                        let mut oracle = Dit::new();
                        for batch in &prefix {
                            for op in batch {
                                apply(&mut oracle, *op);
                            }
                        }
                        assert_eq!(
                            observe(&snap),
                            observe(&oracle),
                            "snapshot at gen {gen} diverges from the serialized replay"
                        );
                    }
                });
            }
        });

        // After all threads join, the final snapshot must equal the full
        // serialized execution.
        let full: Vec<Vec<Op>> = log.lock().clone();
        let mut oracle = Dit::new();
        for batch in &full {
            for op in batch {
                apply(&mut oracle, *op);
            }
        }
        assert_eq!(observe(&shared.snapshot()), observe(&oracle));
    }
}
