//! Property-based tests for the LDAP substrate: round-trips and invariants
//! on arbitrary inputs.

use gis_ldap::{Dit, Dn, Entry, Filter, Rdn, Scope, Wire};
use proptest::prelude::*;

/// Attribute types are restricted identifiers. "dn" is excluded because it
/// is reserved in LDIF record syntax.
fn attr_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9-]{0,8}".prop_filter("dn is reserved", |s| s != "dn")
}

/// Values: printable, no leading/trailing space (DN parsing trims), and
/// excluding characters with syntactic meaning in DN string form.
fn dn_value() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9_.:/][a-zA-Z0-9_.:/ ]{0,10}[a-zA-Z0-9_.:/]|[a-zA-Z0-9_.:/]"
}

/// Arbitrary filter values (escaping must handle anything printable).
fn filter_value() -> impl Strategy<Value = String> {
    "[ -~]{1,12}"
}

fn rdn() -> impl Strategy<Value = Rdn> {
    (attr_name(), dn_value()).prop_map(|(a, v)| Rdn::new(a, v))
}

fn dn(max_depth: usize) -> impl Strategy<Value = Dn> {
    prop::collection::vec(rdn(), 0..=max_depth).prop_map(Dn::from_rdns)
}

fn arb_filter() -> impl Strategy<Value = Filter> {
    let leaf = prop_oneof![
        (attr_name(), filter_value()).prop_map(|(a, v)| Filter::Eq(a, v)),
        (attr_name(), filter_value()).prop_map(|(a, v)| Filter::Ge(a, v)),
        (attr_name(), filter_value()).prop_map(|(a, v)| Filter::Le(a, v)),
        (attr_name(), filter_value()).prop_map(|(a, v)| Filter::Approx(a, v)),
        attr_name().prop_map(Filter::Present),
        (
            attr_name(),
            prop::option::of(filter_value()),
            prop::collection::vec(filter_value(), 0..3),
            prop::option::of(filter_value())
        )
            // A substring with no components at all is syntactically a
            // presence filter; exclude that degenerate case.
            .prop_filter("substring needs a component", |(_, i, a, f)| {
                i.is_some() || !a.is_empty() || f.is_some()
            })
            .prop_map(|(attr, initial, any, final_)| Filter::Substring {
                attr,
                initial,
                any,
                final_,
            }),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Filter::And),
            prop::collection::vec(inner.clone(), 0..4).prop_map(Filter::Or),
            inner.prop_map(|f| Filter::Not(Box::new(f))),
        ]
    })
}

/// A DN from a root-first path over a tiny alphabet, so random entries
/// form real parent/child/sibling relationships. Level `d` uses naming
/// attribute `l{d}a{a}` and value `v{v}`.
fn path_dn(path: &[(u8, u8)]) -> Dn {
    let rdns: Vec<Rdn> = path
        .iter()
        .enumerate()
        .map(|(depth, (a, v))| Rdn::new(format!("l{depth}a{a}"), format!("v{v}")))
        .rev()
        .collect();
    Dn::from_rdns(rdns)
}

/// Entries arranged in a tree (depth ≤ 5) with object classes from a
/// small alphabet, so scoped and indexed searches hit real structure.
fn tree_entries() -> impl Strategy<Value = Vec<Entry>> {
    prop::collection::vec(
        (
            prop::collection::vec((0u8..3u8, 0u8..3u8), 0..5),
            "[a-c]",
            "v[0-3]",
        ),
        0..20,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .map(|(path, class, extra)| {
                Entry::new(path_dn(&path))
                    .with("objectclass", class)
                    .with("extra", extra)
            })
            .collect()
    })
}

/// Filters over the tree vocabulary: naming attributes, `objectclass`,
/// and the non-indexed `extra` attribute, combined with every operator
/// the evaluator supports (so both index-served and scan-served paths
/// are exercised).
fn tree_filter() -> impl Strategy<Value = Filter> {
    let attr = prop_oneof![
        Just("objectclass".to_string()),
        "l[0-4]a[0-2]".boxed(),
        Just("extra".to_string()),
    ];
    let value = prop_oneof!["v[0-3]".boxed(), "[a-d]".boxed()];
    let leaf = prop_oneof![
        (attr.clone(), value.clone()).prop_map(|(a, v)| Filter::Eq(a, v)),
        (attr.clone(), value.clone()).prop_map(|(a, v)| Filter::Ge(a, v)),
        (attr.clone(), value.clone()).prop_map(|(a, v)| Filter::Approx(a, v)),
        attr.clone().prop_map(Filter::Present),
        (attr, value).prop_map(|(a, v)| Filter::Substring {
            attr: a,
            initial: Some(v),
            any: vec![],
            final_: None,
        }),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..3).prop_map(Filter::And),
            prop::collection::vec(inner.clone(), 0..3).prop_map(Filter::Or),
            inner.prop_map(|f| Filter::Not(Box::new(f))),
        ]
    })
}

fn arb_entry() -> impl Strategy<Value = Entry> {
    (
        dn(3),
        prop::collection::vec(
            (attr_name(), prop::collection::vec(filter_value(), 1..3)),
            0..5,
        ),
    )
        .prop_map(|(dn, attrs)| {
            let mut e = Entry::new(dn);
            for (name, values) in attrs {
                for v in values {
                    e.add(&name, v);
                }
            }
            e
        })
}

proptest! {
    #[test]
    fn dn_parse_print_roundtrip(d in dn(5)) {
        let s = d.to_string();
        let back = Dn::parse(&s).unwrap();
        prop_assert_eq!(back, d);
    }

    #[test]
    fn dn_parent_child_inverse(d in dn(5), r in rdn()) {
        let child = d.child(r);
        prop_assert_eq!(child.parent().unwrap(), d.clone());
        prop_assert!(child.is_strictly_under(&d));
    }

    #[test]
    fn dn_under_transitive(a in dn(2), b in dn(2), c in dn(2)) {
        let ab = a.under(&b);
        let abc = ab.under(&c);
        prop_assert!(ab.is_under(&b));
        prop_assert!(abc.is_under(&c));
        prop_assert!(abc.is_under(&b.under(&c)));
    }

    #[test]
    fn dn_strip_suffix_inverts_under(a in dn(3), b in dn(3)) {
        let joined = a.under(&b);
        prop_assert_eq!(joined.strip_suffix(&b).unwrap(), a.clone());
    }

    #[test]
    fn filter_print_parse_roundtrip(f in arb_filter()) {
        let s = f.to_string();
        let back = Filter::parse(&s)
            .unwrap_or_else(|e| panic!("failed to reparse {s:?}: {e}"));
        prop_assert_eq!(back, f);
    }

    #[test]
    fn filter_not_is_complement(f in arb_filter(), e in arb_entry()) {
        let neg = Filter::Not(Box::new(f.clone()));
        prop_assert_eq!(neg.matches(&e), !f.matches(&e));
    }

    #[test]
    fn filter_and_or_duality(fs in prop::collection::vec(arb_filter(), 0..4), e in arb_entry()) {
        // De Morgan: !(f1 & f2 & ...) == (!f1 | !f2 | ...)
        let and = Filter::And(fs.clone());
        let or_of_nots = Filter::Or(fs.iter().cloned().map(|f| Filter::Not(Box::new(f))).collect());
        prop_assert_eq!(!and.matches(&e), or_of_nots.matches(&e));
    }

    #[test]
    fn entry_wire_roundtrip(e in arb_entry()) {
        let bytes = e.to_wire();
        prop_assert_eq!(Entry::from_wire(&bytes).unwrap(), e);
    }

    #[test]
    fn filter_wire_roundtrip(f in arb_filter()) {
        let bytes = f.to_wire();
        prop_assert_eq!(Filter::from_wire(&bytes).unwrap(), f);
    }

    #[test]
    fn dit_search_scopes_nest(entries in prop::collection::vec(arb_entry(), 0..12), base in dn(2)) {
        let mut dit = Dit::new();
        for e in entries {
            dit.upsert(e);
        }
        let f = Filter::And(vec![]); // absolute true
        let base_hits = dit.search(&base, Scope::Base, &f, &[], 0);
        let one_hits = dit.search(&base, Scope::One, &f, &[], 0);
        let sub_hits = dit.search(&base, Scope::Sub, &f, &[], 0);
        // Base and one-level results are disjoint subsets of subtree results.
        prop_assert!(base_hits.len() <= 1);
        prop_assert!(base_hits.len() + one_hits.len() <= sub_hits.len());
        for e in &base_hits {
            prop_assert!(sub_hits.contains(e));
        }
        for e in &one_hits {
            prop_assert!(sub_hits.contains(e));
            prop_assert!(!base_hits.contains(e));
        }
        // Every subtree hit is under the base.
        for e in &sub_hits {
            prop_assert!(e.dn().is_under(&base));
        }
    }

    #[test]
    fn dit_size_limit_is_prefix(entries in prop::collection::vec(arb_entry(), 0..12), limit in 1usize..6) {
        let mut dit = Dit::new();
        for e in entries {
            dit.upsert(e);
        }
        let f = Filter::And(vec![]);
        let all = dit.search(&Dn::root(), Scope::Sub, &f, &[], 0);
        let limited = dit.search(&Dn::root(), Scope::Sub, &f, &[], limit);
        prop_assert_eq!(limited.len(), all.len().min(limit));
        prop_assert_eq!(&limited[..], &all[..limited.len()]);
    }

    #[test]
    fn class_indexed_search_equals_full_scan(
        entries in prop::collection::vec(arb_entry(), 0..15),
        classes in prop::collection::vec("[a-c]", 0..10),
        probe_class in "[a-d]",
        base in dn(2),
    ) {
        // Tag entries with small-class-alphabet objectclasses so pinned
        // searches sometimes hit, sometimes miss.
        let mut dit = Dit::new();
        let mut tagged = Vec::new();
        for (i, mut e) in entries.into_iter().enumerate() {
            if let Some(c) = classes.get(i % classes.len().max(1)) {
                e.add("objectclass", c.clone());
            }
            dit.upsert(e.clone());
            tagged.push(e);
        }
        let filter = Filter::parse(&format!("(objectclass={probe_class})")).unwrap();
        let indexed = dit.search(&base, Scope::Sub, &filter, &[], 0);
        // Reference: a linear scan using only public evaluation semantics.
        // The DIT normalizes naming attributes on insert, so compare DNs.
        let mut expected: Vec<String> = dit
            .iter()
            .filter(|e| e.dn().is_under(&base) && filter.matches(e))
            .map(|e| e.dn().to_string())
            .collect();
        let mut got: Vec<String> = indexed.iter().map(|e| e.dn().to_string()).collect();
        expected.sort();
        got.sort();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn class_index_survives_updates_and_deletes(
        ops in prop::collection::vec((0u8..3, 0u8..6, "[a-b]"), 1..40)
    ) {
        let mut dit = Dit::new();
        for (op, slot, class) in ops {
            let dn = Dn::parse(&format!("hn=h{slot}")).unwrap();
            match op {
                0 => dit.upsert(Entry::new(dn).with("objectclass", class)),
                1 => {
                    dit.delete(&dn);
                }
                _ => dit.upsert(Entry::new(dn).with("objectclass", "other")),
            }
            // Invariant: pinned searches agree with linear scans after
            // every mutation.
            for probe in ["a", "b", "other", "never"] {
                let filter = Filter::parse(&format!("(objectclass={probe})")).unwrap();
                let indexed: Vec<String> = dit
                    .search(&Dn::root(), Scope::Sub, &filter, &[], 0)
                    .iter()
                    .map(|e| e.dn().to_string())
                    .collect();
                let scanned: Vec<String> = dit
                    .iter()
                    .filter(|e| filter.matches(e))
                    .map(|e| e.dn().to_string())
                    .collect();
                prop_assert_eq!(indexed, scanned);
            }
        }
    }

    #[test]
    fn indexed_search_equals_naive_scan(
        entries in tree_entries(),
        base_path in prop::collection::vec((0u8..3u8, 0u8..3u8), 0..3),
        filter in tree_filter(),
    ) {
        // Oracle: the index-accelerated search must agree, entry for
        // entry and in order, with a naive full scan using only public
        // evaluation semantics — for every scope and for arbitrary
        // filters, including non-indexable Not/Substring/Ge forms.
        let mut dit = Dit::new();
        for e in entries {
            dit.upsert(e);
        }
        let base = path_dn(&base_path);
        for scope in [Scope::Base, Scope::One, Scope::Sub] {
            let got: Vec<String> = dit
                .search(&base, scope, &filter, &[], 0)
                .iter()
                .map(|e| e.dn().to_string())
                .collect();
            let want: Vec<String> = dit
                .iter()
                .filter(|e| match scope {
                    Scope::Base => e.dn() == &base,
                    Scope::One => e.dn().parent().as_ref() == Some(&base),
                    Scope::Sub => e.dn().is_under(&base),
                })
                .filter(|e| filter.matches(e))
                .map(|e| e.dn().to_string())
                .collect();
            prop_assert_eq!(got, want, "scope {:?} disagreed with naive scan", scope);
        }
    }

    #[test]
    fn tree_indexes_survive_mutation(
        ops in prop::collection::vec(
            (0u8..4u8, prop::collection::vec((0u8..2u8, 0u8..2u8), 0..3), "[a-b]"),
            1..30,
        )
    ) {
        // Every index (equality, parent, suffix-order) must stay
        // consistent with the entry map across upserts, deletes, and
        // subtree deletes.
        let mut dit = Dit::new();
        let probes = [
            "(objectclass=a)",
            "(objectclass=b)",
            "(l0a0=v0)",
            "(l1a1=v1)",
            "(&(objectclass=a)(l0a0=v0))",
            "(|(l0a0=v0)(l0a1=v1))",
        ];
        for (op, path, class) in ops {
            let dn = path_dn(&path);
            match op {
                1 => {
                    dit.delete(&dn);
                }
                2 => {
                    dit.delete_subtree(&dn);
                }
                _ => dit.upsert(Entry::new(dn.clone()).with("objectclass", class)),
            }
            for probe in probes {
                let filter = Filter::parse(probe).unwrap();
                for (base, scope) in [
                    (Dn::root(), Scope::Sub),
                    (dn.clone(), Scope::Sub),
                    (dn.clone(), Scope::One),
                ] {
                    let got: Vec<String> = dit
                        .search(&base, scope, &filter, &[], 0)
                        .iter()
                        .map(|e| e.dn().to_string())
                        .collect();
                    let want: Vec<String> = dit
                        .iter()
                        .filter(|e| match scope {
                            Scope::Base => e.dn() == &base,
                            Scope::One => e.dn().parent().as_ref() == Some(&base),
                            Scope::Sub => e.dn().is_under(&base),
                        })
                        .filter(|e| filter.matches(e))
                        .map(|e| e.dn().to_string())
                        .collect();
                    prop_assert_eq!(got, want);
                }
            }
            // The parent index behind children() must agree with a scan.
            let got_kids: Vec<String> =
                dit.children(&dn).iter().map(|e| e.dn().to_string()).collect();
            let want_kids: Vec<String> = dit
                .iter()
                .filter(|e| e.dn().parent().as_ref() == Some(&dn))
                .map(|e| e.dn().to_string())
                .collect();
            prop_assert_eq!(got_kids, want_kids);
        }
    }

    #[test]
    fn ldif_roundtrip(entries in prop::collection::vec(arb_entry(), 0..6)) {
        // LDIF trims values; restrict to entries whose values survive.
        let entries: Vec<Entry> = entries
            .into_iter()
            // LDIF cannot represent the root DN as a record.
            .filter(|e| !e.dn().is_root())
            .filter(|e| {
                e.attrs().all(|(_, vs)| {
                    vs.iter().all(|v| {
                        let s = v.as_str();
                        s == s.trim() && !s.is_empty() && !s.contains('\n') && !s.starts_with('#')
                    })
                })
            })
            .collect();
        let doc = gis_ldap::to_ldif(&entries);
        let back = gis_ldap::parse_ldif(&doc).unwrap();
        prop_assert_eq!(back, entries);
    }
}
