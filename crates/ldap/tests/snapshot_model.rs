//! Exhaustive interleaving model of the [`SharedDit`] snapshot-swap
//! protocol (the offline stand-in for a loom pass; see EXPERIMENTS.md,
//! "Thread sanitizer / model checking").
//!
//! The protocol under test, as implemented by `SharedDit::mutate` /
//! `snapshot`, reduced to its atomic micro-steps:
//!
//! writer:  lock(master) → apply batch → wlock(published) → swap
//!          → unlock(published) → unlock(master)
//! reader:  rlock(published) → observe → unlock(published)
//!
//! The model enumerates **every** interleaving of 2 writers and 1
//! reader (two observations) over those micro-steps, with real
//! lock-blocking semantics, and checks the invariants the runtime code
//! relies on:
//!
//! 1. every observation is a prefix of the serialization log (batch
//!    order = master-lock acquisition order) — no torn/mixed state;
//! 2. a reader's successive observations are monotonically extending
//!    prefixes — the published snapshot never goes backwards;
//! 3. after quiescence the published snapshot equals the full log.
//!
//! To show the checker has teeth, the same search runs against the
//! classic broken variant — copy the master, *release the master lock*,
//! then publish — and must find the interleaving where a stale copy
//! overwrites a newer publication.

use std::collections::BTreeSet;

const WRITERS: usize = 2;
const READER_OBSERVATIONS: usize = 2;
const WRITER_STEPS: usize = 6;
const READER_STEPS: usize = 3;

/// Which protocol the writers follow.
#[derive(Clone, Copy, PartialEq)]
enum Variant {
    /// Publish while still holding the master lock (the real code).
    PublishUnderMasterLock,
    /// Copy, release the master lock, then publish — racy by design.
    PublishAfterUnlock,
}

#[derive(Clone, PartialEq, Eq, PartialOrd, Ord)]
struct State {
    /// Program counter per writer, then the reader's pc.
    writer_pc: [usize; WRITERS],
    reader_pc: usize,
    observations_done: usize,
    /// `Some(w)` while writer `w` holds the master mutex.
    master_held: Option<usize>,
    /// `Some(w)` while writer `w` holds the published write lock; the
    /// reader's read lock is modelled by `reader_holds_publish`.
    publish_wheld: Option<usize>,
    reader_holds_publish: bool,
    /// Batches applied to the master Dit, in order.
    master: Vec<usize>,
    /// The published snapshot's contents.
    published: Vec<usize>,
    /// Serialization log: master-lock acquisition order.
    log: Vec<usize>,
    /// Buggy variant only: each writer's private copy taken under the
    /// master lock, published later.
    local_copy: [Option<Vec<usize>>; WRITERS],
    /// What the reader saw, in order.
    observed: Vec<Vec<usize>>,
}

impl State {
    fn initial() -> State {
        State {
            writer_pc: [0; WRITERS],
            reader_pc: 0,
            observations_done: 0,
            master_held: None,
            publish_wheld: None,
            reader_holds_publish: false,
            master: Vec::new(),
            published: Vec::new(),
            log: Vec::new(),
            local_copy: [None, None],
            observed: Vec::new(),
        }
    }

    fn done(&self) -> bool {
        self.writer_pc.iter().all(|&pc| pc == WRITER_STEPS)
            && self.observations_done == READER_OBSERVATIONS
    }

    /// Advance writer `w` one micro-step if unblocked.
    fn step_writer(&self, w: usize, variant: Variant) -> Option<State> {
        if self.writer_pc[w] >= WRITER_STEPS {
            return None;
        }
        let mut next = self.clone();
        match (variant, self.writer_pc[w]) {
            // Both variants: acquire master, apply the batch.
            (_, 0) => {
                if self.master_held.is_some() {
                    return None;
                }
                next.master_held = Some(w);
                next.log.push(w);
            }
            (_, 1) => next.master.push(w),
            (Variant::PublishUnderMasterLock, 2) => {
                if self.publish_wheld.is_some() || self.reader_holds_publish {
                    return None;
                }
                next.publish_wheld = Some(w);
            }
            (Variant::PublishUnderMasterLock, 3) => next.published = self.master.clone(),
            (Variant::PublishUnderMasterLock, 4) => next.publish_wheld = None,
            (Variant::PublishUnderMasterLock, 5) => next.master_held = None,
            // Buggy variant: copy, drop the master lock, then publish.
            (Variant::PublishAfterUnlock, 2) => next.local_copy[w] = Some(self.master.clone()),
            (Variant::PublishAfterUnlock, 3) => next.master_held = None,
            (Variant::PublishAfterUnlock, 4) => {
                if self.publish_wheld.is_some() || self.reader_holds_publish {
                    return None;
                }
                next.publish_wheld = Some(w);
                next.published = self.local_copy[w].clone().expect("copied before publish");
            }
            (Variant::PublishAfterUnlock, 5) => next.publish_wheld = None,
            _ => unreachable!("writer pc out of range"),
        }
        next.writer_pc[w] += 1;
        Some(next)
    }

    /// Advance the reader one micro-step if unblocked.
    fn step_reader(&self) -> Option<State> {
        if self.observations_done >= READER_OBSERVATIONS {
            return None;
        }
        let mut next = self.clone();
        match self.reader_pc {
            0 => {
                if self.publish_wheld.is_some() {
                    return None;
                }
                next.reader_holds_publish = true;
            }
            1 => next.observed.push(self.published.clone()),
            2 => {
                next.reader_holds_publish = false;
                next.observations_done += 1;
                next.reader_pc = 0;
                return Some(next);
            }
            _ => unreachable!("reader pc out of range"),
        }
        next.reader_pc += 1;
        Some(next)
    }
}

/// Explore every reachable interleaving; returns the number of invariant
/// violations found (0 for a correct protocol).
fn explore(variant: Variant) -> (usize, usize) {
    let mut seen: BTreeSet<State> = BTreeSet::new();
    let mut stack = vec![State::initial()];
    let mut violations = 0;
    let mut terminal_states = 0;
    while let Some(state) = stack.pop() {
        if !seen.insert(state.clone()) {
            continue;
        }
        // Invariant 1 + 2: every observation is a log prefix, and the
        // sequence of observations never shrinks.
        for (i, obs) in state.observed.iter().enumerate() {
            if obs.len() > state.log.len() || obs[..] != state.log[..obs.len()] {
                violations += 1;
            }
            if i > 0 && obs.len() < state.observed[i - 1].len() {
                violations += 1;
            }
        }
        if state.done() {
            terminal_states += 1;
            // Invariant 3: quiescent published state = full log.
            if state.published != state.log {
                violations += 1;
            }
            continue;
        }
        for w in 0..WRITERS {
            if let Some(next) = state.step_writer(w, variant) {
                stack.push(next);
            }
        }
        if let Some(next) = state.step_reader() {
            stack.push(next);
        }
    }
    (violations, terminal_states)
}

#[test]
fn snapshot_swap_protocol_has_no_bad_interleaving() {
    let (violations, terminals) = explore(Variant::PublishUnderMasterLock);
    assert!(terminals > 0, "search never reached quiescence");
    assert_eq!(
        violations, 0,
        "publish-under-master-lock admitted a torn or regressing snapshot"
    );
}

#[test]
fn model_catches_publish_after_unlock_race() {
    // The checker must have teeth: releasing the master lock before
    // publishing admits the stale-overwrite interleaving.
    let (violations, terminals) = explore(Variant::PublishAfterUnlock);
    assert!(terminals > 0, "search never reached quiescence");
    assert!(
        violations > 0,
        "model failed to detect the known-racy publish-after-unlock variant"
    );
}
