//! LDIF serialization: the interchange text format used by experiment
//! output and configuration fixtures (Figure 3 is rendered in LDIF form in
//! the paper).
//!
//! Supported subset: `dn:` line followed by `attr: value` lines, records
//! separated by blank lines, `#` comment lines.

use crate::dn::Dn;
use crate::entry::Entry;
use crate::error::{LdapError, Result};
use std::fmt::Write as _;

/// Render one entry as an LDIF record (no trailing blank line).
pub fn entry_to_ldif(entry: &Entry) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "dn: {}", entry.dn());
    for (name, values) in entry.attrs() {
        for v in values {
            let _ = writeln!(out, "{name}: {v}");
        }
    }
    out
}

/// Render a sequence of entries as an LDIF document.
pub fn to_ldif<'a>(entries: impl IntoIterator<Item = &'a Entry>) -> String {
    let mut out = String::new();
    for (i, e) in entries.into_iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&entry_to_ldif(e));
    }
    out
}

/// Parse an LDIF document into entries.
pub fn parse_ldif(src: &str) -> Result<Vec<Entry>> {
    let mut entries = Vec::new();
    let mut current: Option<Entry> = None;
    for (lineno, raw) in src.lines().enumerate() {
        let line = raw.trim_end();
        if line.trim_start().starts_with('#') {
            continue;
        }
        if line.trim().is_empty() {
            if let Some(e) = current.take() {
                entries.push(e);
            }
            continue;
        }
        let (name, value) = line.split_once(':').ok_or_else(|| {
            LdapError::InvalidLdif(format!("line {}: missing ':' in {line:?}", lineno + 1))
        })?;
        let name = name.trim();
        let value = value.trim();
        if name.eq_ignore_ascii_case("dn") {
            if let Some(e) = current.take() {
                entries.push(e);
            }
            current = Some(Entry::new(Dn::parse(value)?));
        } else {
            let entry = current.as_mut().ok_or_else(|| {
                LdapError::InvalidLdif(format!("line {}: attribute before any dn line", lineno + 1))
            })?;
            if name.is_empty() {
                return Err(LdapError::InvalidLdif(format!(
                    "line {}: empty attribute name",
                    lineno + 1
                )));
            }
            entry.add(name, value);
        }
    }
    if let Some(e) = current.take() {
        entries.push(e);
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG3: &str = "\
dn: hn=hostX
objectclass: computer
system: mips irix

dn: queue=default, hn=hostX
objectclass: service
objectclass: queue
url: gram://hostX/default
dispatchtype: immediate

dn: perf=load5, hn=hostX
objectclass: perf
objectclass: loadaverage
period: 10
load5: 3.2

dn: store=scratch, hn=hostX
objectclass: storage
objectclass: filesystem
free: 33515
path: /disks/scratch1
";

    #[test]
    fn parses_figure3_document() {
        let entries = parse_ldif(FIG3).unwrap();
        assert_eq!(entries.len(), 4);
        assert_eq!(entries[0].get_str("system"), Some("mips irix"));
        assert_eq!(entries[1].get("objectclass").len(), 2);
        assert_eq!(entries[2].get_f64("load5"), Some(3.2));
        assert_eq!(entries[3].get_str("path"), Some("/disks/scratch1"));
    }

    #[test]
    fn roundtrip() {
        let entries = parse_ldif(FIG3).unwrap();
        let doc = to_ldif(&entries);
        let back = parse_ldif(&doc).unwrap();
        assert_eq!(entries, back);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = "# header\n\n\ndn: a=b\n# mid\nx: 1\n\n";
        let entries = parse_ldif(src).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].get_str("x"), Some("1"));
    }

    #[test]
    fn value_with_colon_preserved() {
        let src = "dn: a=b\nurl: ldap://host:389/o=G\n";
        let entries = parse_ldif(src).unwrap();
        assert_eq!(entries[0].get_str("url"), Some("ldap://host:389/o=G"));
    }

    #[test]
    fn rejects_attr_without_dn() {
        assert!(parse_ldif("x: 1\n").is_err());
    }

    #[test]
    fn rejects_missing_colon() {
        assert!(parse_ldif("dn: a=b\nnovalue\n").is_err());
    }
}
