//! LDAP search filters (RFC 2254).
//!
//! GRIP adopts the LDAP query language: "a filter can be used in all cases
//! to specify a set of criteria to be matched" (§4.1). This module provides
//! the string grammar parser, a printer that round-trips, and an evaluator
//! over [`Entry`].
//!
//! Matching semantics follow MDS usage: attribute names compare
//! case-insensitively; ordering comparisons (`>=`, `<=`) are numeric when
//! both sides parse as numbers and case-insensitive lexicographic
//! otherwise; equality is case-insensitive; `~=` additionally normalises
//! whitespace.

use crate::entry::Entry;
use crate::error::{LdapError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A parsed search filter.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Filter {
    /// `(&(f1)(f2)...)` — all subfilters match. `(&)` is absolute true.
    And(Vec<Filter>),
    /// `(|(f1)(f2)...)` — any subfilter matches. `(|)` is absolute false.
    Or(Vec<Filter>),
    /// `(!(f))` — subfilter does not match.
    Not(Box<Filter>),
    /// `(attr=value)` — equality.
    Eq(String, String),
    /// `(attr>=value)` — ordering.
    Ge(String, String),
    /// `(attr<=value)` — ordering.
    Le(String, String),
    /// `(attr=*)` — attribute present.
    Present(String),
    /// `(attr~=value)` — approximate match.
    Approx(String, String),
    /// `(attr=init*any*...*fin)` — substring match.
    Substring {
        /// Attribute name.
        attr: String,
        /// Required prefix, if any.
        initial: Option<String>,
        /// Required interior fragments, in order.
        any: Vec<String>,
        /// Required suffix, if any.
        final_: Option<String>,
    },
}

impl Filter {
    /// The filter matching every entry.
    pub fn always() -> Filter {
        Filter::Present("objectclass".into())
    }

    /// Convenience equality filter.
    pub fn eq(attr: &str, value: &str) -> Filter {
        Filter::Eq(attr.to_ascii_lowercase(), value.to_owned())
    }

    /// Convenience presence filter.
    pub fn present(attr: &str) -> Filter {
        Filter::Present(attr.to_ascii_lowercase())
    }

    /// Parse an RFC 2254 filter string, e.g.
    /// `(&(objectclass=computer)(load5<=1.0))`.
    pub fn parse(s: &str) -> Result<Filter> {
        let mut p = Parser {
            src: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let f = p.filter()?;
        p.skip_ws();
        if p.pos != p.src.len() {
            return Err(LdapError::InvalidFilter(format!(
                "trailing input at byte {} in {s:?}",
                p.pos
            )));
        }
        Ok(f)
    }

    /// Evaluate this filter against an entry.
    pub fn matches(&self, entry: &Entry) -> bool {
        match self {
            Filter::And(fs) => fs.iter().all(|f| f.matches(entry)),
            Filter::Or(fs) => fs.iter().any(|f| f.matches(entry)),
            Filter::Not(f) => !f.matches(entry),
            Filter::Eq(attr, value) => entry.get(attr).iter().any(|v| values_eq(v.as_str(), value)),
            Filter::Ge(attr, value) => entry
                .get(attr)
                .iter()
                .any(|v| values_cmp(v.as_str(), value) >= std::cmp::Ordering::Equal),
            Filter::Le(attr, value) => entry
                .get(attr)
                .iter()
                .any(|v| values_cmp(v.as_str(), value) <= std::cmp::Ordering::Equal),
            Filter::Present(attr) => entry.has(attr),
            Filter::Approx(attr, value) => {
                entry.get(attr).iter().any(|v| approx_eq(v.as_str(), value))
            }
            Filter::Substring {
                attr,
                initial,
                any,
                final_,
            } => entry
                .get(attr)
                .iter()
                .any(|v| substring_match(v.as_str(), initial.as_deref(), any, final_.as_deref())),
        }
    }

    /// The set of attribute names this filter inspects (lowercased,
    /// deduplicated). Used by GRIS to prune providers whose namespace
    /// cannot satisfy the query.
    pub fn attributes(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_attrs(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_attrs(&self, out: &mut Vec<String>) {
        match self {
            Filter::And(fs) | Filter::Or(fs) => {
                for f in fs {
                    f.collect_attrs(out);
                }
            }
            Filter::Not(f) => f.collect_attrs(out),
            Filter::Eq(a, _)
            | Filter::Ge(a, _)
            | Filter::Le(a, _)
            | Filter::Present(a)
            | Filter::Approx(a, _)
            | Filter::Substring { attr: a, .. } => out.push(a.to_ascii_lowercase()),
        }
    }
}

impl FromStr for Filter {
    type Err = LdapError;
    fn from_str(s: &str) -> Result<Filter> {
        Filter::parse(s)
    }
}

/// Case-insensitive equality with whitespace trimmed.
fn values_eq(a: &str, b: &str) -> bool {
    a.trim().eq_ignore_ascii_case(b.trim())
}

/// Numeric comparison when both parse as f64, case-insensitive
/// lexicographic otherwise. Byte-wise over folded bytes, so no
/// intermediate lowercased strings are built (filters run once per
/// candidate entry on the query hot path).
fn values_cmp(a: &str, b: &str) -> std::cmp::Ordering {
    if let (Ok(x), Ok(y)) = (a.trim().parse::<f64>(), b.trim().parse::<f64>()) {
        return x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal);
    }
    let a = a.trim().as_bytes();
    let b = b.trim().as_bytes();
    for (x, y) in a.iter().zip(b.iter()) {
        match x.to_ascii_lowercase().cmp(&y.to_ascii_lowercase()) {
            std::cmp::Ordering::Equal => {}
            other => return other,
        }
    }
    a.len().cmp(&b.len())
}

/// Approximate match: case-insensitive with interior whitespace collapsed.
/// Compares whitespace-split token streams in place instead of joining
/// them into normalized strings.
fn approx_eq(a: &str, b: &str) -> bool {
    let mut ta = a.split_whitespace();
    let mut tb = b.split_whitespace();
    loop {
        match (ta.next(), tb.next()) {
            (None, None) => return true,
            (Some(x), Some(y)) if x.eq_ignore_ascii_case(y) => {}
            _ => return false,
        }
    }
}

/// Case-insensitive `starts_with` over raw bytes.
fn starts_with_ci(hay: &[u8], needle: &[u8]) -> bool {
    hay.len() >= needle.len() && hay[..needle.len()].eq_ignore_ascii_case(needle)
}

/// First case-insensitive occurrence of `needle` in `hay`.
fn find_ci(hay: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() {
        return Some(0);
    }
    if hay.len() < needle.len() {
        return None;
    }
    (0..=hay.len() - needle.len()).find(|&i| hay[i..i + needle.len()].eq_ignore_ascii_case(needle))
}

/// Case-insensitive substring component matching. Works over byte slices
/// with ASCII case folding (multi-byte UTF-8 sequences are unaffected by
/// ASCII folding, so byte-window comparison is exact) — no lowercased
/// copies of the value or the pattern fragments are allocated.
fn substring_match(
    value: &str,
    initial: Option<&str>,
    any: &[String],
    final_: Option<&str>,
) -> bool {
    let hay = value.as_bytes();
    let mut pos = 0usize;
    if let Some(init) = initial {
        if !starts_with_ci(hay, init.as_bytes()) {
            return false;
        }
        pos = init.len();
    }
    for frag in any {
        match find_ci(&hay[pos..], frag.as_bytes()) {
            Some(idx) => pos += idx + frag.len(),
            None => return false,
        }
    }
    if let Some(fin) = final_ {
        let fin = fin.as_bytes();
        if hay.len() < pos + fin.len() {
            return false;
        }
        if !hay[hay.len() - fin.len()..].eq_ignore_ascii_case(fin) {
            return false;
        }
    }
    true
}

/// Escape a value for embedding in filter string form (RFC 2254 §4).
fn escape_value(s: &str, out: &mut String) {
    for b in s.bytes() {
        match b {
            b'*' => out.push_str("\\2a"),
            b'(' => out.push_str("\\28"),
            b')' => out.push_str("\\29"),
            b'\\' => out.push_str("\\5c"),
            0 => out.push_str("\\00"),
            _ => out.push(b as char),
        }
    }
}

impl fmt::Display for Filter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        render(self, &mut s);
        f.write_str(&s)
    }
}

fn render(filter: &Filter, out: &mut String) {
    out.push('(');
    match filter {
        Filter::And(fs) => {
            out.push('&');
            for f in fs {
                render(f, out);
            }
        }
        Filter::Or(fs) => {
            out.push('|');
            for f in fs {
                render(f, out);
            }
        }
        Filter::Not(f) => {
            out.push('!');
            render(f, out);
        }
        Filter::Eq(a, v) => {
            out.push_str(a);
            out.push('=');
            escape_value(v, out);
        }
        Filter::Ge(a, v) => {
            out.push_str(a);
            out.push_str(">=");
            escape_value(v, out);
        }
        Filter::Le(a, v) => {
            out.push_str(a);
            out.push_str("<=");
            escape_value(v, out);
        }
        Filter::Present(a) => {
            out.push_str(a);
            out.push_str("=*");
        }
        Filter::Approx(a, v) => {
            out.push_str(a);
            out.push_str("~=");
            escape_value(v, out);
        }
        Filter::Substring {
            attr,
            initial,
            any,
            final_,
        } => {
            out.push_str(attr);
            out.push('=');
            if let Some(init) = initial {
                escape_value(init, out);
            }
            out.push('*');
            for frag in any {
                escape_value(frag, out);
                out.push('*');
            }
            if let Some(fin) = final_ {
                escape_value(fin, out);
            }
        }
    }
    out.push(')');
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> LdapError {
        LdapError::InvalidFilter(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(
            self.peek(),
            Some(b' ') | Some(b'\t') | Some(b'\n') | Some(b'\r')
        ) {
            self.pos += 1;
        }
    }

    fn filter(&mut self) -> Result<Filter> {
        self.expect(b'(')?;
        let f = match self.peek() {
            Some(b'&') => {
                self.bump();
                Filter::And(self.filter_list()?)
            }
            Some(b'|') => {
                self.bump();
                Filter::Or(self.filter_list()?)
            }
            Some(b'!') => {
                self.bump();
                Filter::Not(Box::new(self.filter()?))
            }
            Some(_) => self.item()?,
            None => return Err(self.err("unexpected end of input")),
        };
        self.expect(b')')?;
        Ok(f)
    }

    fn filter_list(&mut self) -> Result<Vec<Filter>> {
        let mut out = Vec::new();
        while self.peek() == Some(b'(') {
            out.push(self.filter()?);
        }
        Ok(out)
    }

    fn attr(&mut self) -> Result<String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected attribute name"));
        }
        Ok(std::str::from_utf8(&self.src[start..self.pos])
            .expect("attr bytes are ascii")
            .to_ascii_lowercase())
    }

    /// Parse a value terminated by `)` or `*`, handling `\xx` escapes.
    fn value_fragment(&mut self) -> Result<String> {
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated value")),
                Some(b')') | Some(b'*') => break,
                Some(b'(') => return Err(self.err("unescaped '(' in value")),
                Some(b'\\') => {
                    self.bump();
                    let hi = self.bump().ok_or_else(|| self.err("truncated escape"))?;
                    let lo = self.bump().ok_or_else(|| self.err("truncated escape"))?;
                    let hex = [hi, lo];
                    let hex = std::str::from_utf8(&hex).map_err(|_| self.err("bad escape"))?;
                    let byte =
                        u8::from_str_radix(hex, 16).map_err(|_| self.err("bad hex escape"))?;
                    out.push(byte as char);
                }
                Some(b) => {
                    self.bump();
                    out.push(b as char);
                }
            }
        }
        Ok(out)
    }

    fn item(&mut self) -> Result<Filter> {
        let attr = self.attr()?;
        match self.peek() {
            Some(b'=') => {
                self.bump();
                self.eq_like(attr)
            }
            Some(b'>') => {
                self.bump();
                self.expect(b'=')?;
                Ok(Filter::Ge(attr, self.value_fragment()?))
            }
            Some(b'<') => {
                self.bump();
                self.expect(b'=')?;
                Ok(Filter::Le(attr, self.value_fragment()?))
            }
            Some(b'~') => {
                self.bump();
                self.expect(b'=')?;
                Ok(Filter::Approx(attr, self.value_fragment()?))
            }
            _ => Err(self.err("expected comparison operator")),
        }
    }

    /// After `attr=`: plain equality, presence (`*)`), or substring.
    fn eq_like(&mut self, attr: String) -> Result<Filter> {
        let first = self.value_fragment()?;
        if self.peek() != Some(b'*') {
            if first.is_empty() {
                return Err(self.err("empty value in equality"));
            }
            return Ok(Filter::Eq(attr, first));
        }
        // At least one '*': presence or substring.
        self.bump(); // consume '*'
        let mut fragments = Vec::new();
        loop {
            let frag = self.value_fragment()?;
            fragments.push(frag);
            if self.peek() == Some(b'*') {
                self.bump();
            } else {
                break;
            }
        }
        // fragments now holds [after-first-star, ..., final]; `first` is
        // the initial component (may be empty).
        let final_frag = fragments.pop().expect("at least one fragment");
        if first.is_empty() && fragments.is_empty() && final_frag.is_empty() {
            return Ok(Filter::Present(attr));
        }
        let any: Vec<String> = fragments.into_iter().filter(|f| !f.is_empty()).collect();
        Ok(Filter::Substring {
            attr,
            initial: if first.is_empty() { None } else { Some(first) },
            any,
            final_: if final_frag.is_empty() {
                None
            } else {
                Some(final_frag)
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> Entry {
        Entry::at("hn=hostX")
            .unwrap()
            .with_class("computer")
            .with("system", "mips irix")
            .with("load5", 3.2f64)
            .with("cpucount", 4i64)
            .with("freemem", 512i64)
    }

    #[test]
    fn parse_simple_eq() {
        let f = Filter::parse("(objectclass=computer)").unwrap();
        assert_eq!(f, Filter::Eq("objectclass".into(), "computer".into()));
        assert!(f.matches(&entry()));
    }

    #[test]
    fn parse_boolean_combinators() {
        let f = Filter::parse("(&(objectclass=computer)(|(cpucount>=8)(load5<=4)))").unwrap();
        assert!(f.matches(&entry()));
        let f2 = Filter::parse("(&(objectclass=computer)(cpucount>=8))").unwrap();
        assert!(!f2.matches(&entry()));
        let f3 = Filter::parse("(!(objectclass=computer))").unwrap();
        assert!(!f3.matches(&entry()));
    }

    #[test]
    fn numeric_ordering_not_lexicographic() {
        let e = entry(); // load5 = 3.2
        assert!(Filter::parse("(load5>=3)").unwrap().matches(&e));
        assert!(Filter::parse("(load5<=10)").unwrap().matches(&e));
        // Lexicographically "10" < "3.2"; numerically it is not.
        assert!(!Filter::parse("(load5>=10)").unwrap().matches(&e));
    }

    #[test]
    fn string_ordering_falls_back_to_lexicographic() {
        let e = entry();
        assert!(Filter::parse("(system>=mips)").unwrap().matches(&e));
        assert!(!Filter::parse("(system<=abc)").unwrap().matches(&e));
    }

    #[test]
    fn presence() {
        let e = entry();
        assert!(Filter::parse("(load5=*)").unwrap().matches(&e));
        assert!(!Filter::parse("(missing=*)").unwrap().matches(&e));
    }

    #[test]
    fn substring_forms() {
        let e = entry(); // system = "mips irix"
        assert!(Filter::parse("(system=mips*)").unwrap().matches(&e));
        assert!(Filter::parse("(system=*irix)").unwrap().matches(&e));
        assert!(Filter::parse("(system=*ips*ri*)").unwrap().matches(&e));
        assert!(Filter::parse("(system=mips*irix)").unwrap().matches(&e));
        assert!(!Filter::parse("(system=irix*)").unwrap().matches(&e));
        assert!(!Filter::parse("(system=*linux*)").unwrap().matches(&e));
    }

    #[test]
    fn substring_ordered_fragments() {
        let mut e = Entry::at("hn=h").unwrap();
        e.add("s", "abcdef");
        assert!(Filter::parse("(s=*ab*cd*)").unwrap().matches(&e));
        assert!(!Filter::parse("(s=*cd*ab*)").unwrap().matches(&e));
    }

    #[test]
    fn approx_normalizes_whitespace_and_case() {
        let e = entry();
        assert!(Filter::parse("(system~=MIPS  IRIX)").unwrap().matches(&e));
        assert!(!Filter::parse("(system~=mipsirix)").unwrap().matches(&e));
    }

    #[test]
    fn escapes_roundtrip() {
        let f = Filter::Eq("cn".into(), "a*b(c)d\\e".into());
        let s = f.to_string();
        assert_eq!(s, "(cn=a\\2ab\\28c\\29d\\5ce)");
        assert_eq!(Filter::parse(&s).unwrap(), f);
    }

    #[test]
    fn display_roundtrip_complex() {
        let src = "(&(objectclass=computer)(!(system=*linux*))(|(load5<=1.5)(cpucount>=16)))";
        let f = Filter::parse(src).unwrap();
        let printed = f.to_string();
        assert_eq!(Filter::parse(&printed).unwrap(), f);
        assert_eq!(printed, src);
    }

    #[test]
    fn empty_and_or_semantics() {
        let e = entry();
        assert!(Filter::And(vec![]).matches(&e)); // (&) = true
        assert!(!Filter::Or(vec![]).matches(&e)); // (|) = false
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "", "(", "()", "(a=b", "a=b", "(a=b))", "(a=)", "(=b)", "(a!b)", "(a=b(c)", "(a=\\zz)",
        ] {
            assert!(Filter::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn multivalued_attr_any_match() {
        let mut e = Entry::at("hn=h").unwrap();
        e.add("member", "alice").add("member", "bob");
        assert!(Filter::parse("(member=bob)").unwrap().matches(&e));
        assert!(!Filter::parse("(member=carol)").unwrap().matches(&e));
    }

    #[test]
    fn attributes_collection() {
        let f = Filter::parse("(&(a=1)(|(b>=2)(!(c=*)))(a~=x))").unwrap();
        assert_eq!(
            f.attributes(),
            vec!["a".to_string(), "b".into(), "c".into()]
        );
    }

    #[test]
    fn always_matches_any_classed_entry() {
        assert!(Filter::always().matches(&entry()));
    }
}
