//! LDAP substrate for the MDS-2 Grid Information Services reproduction.
//!
//! The paper (§4.1) adopts LDAP as GRIP's *data model, query language and
//! wire protocol* — explicitly "not an implementation vehicle". This crate
//! implements those three things from scratch:
//!
//! * [`dn`] — hierarchical distinguished names (Figure 3's namespace),
//! * [`entry`] — typed attribute/value objects with object classes,
//! * [`filter`] — the RFC 2254 search-filter grammar and evaluator,
//! * [`dit`] — a directory information tree with base/one/sub scoped search,
//! * [`schema`] — opt-in object-class typing (§8's "type authorities"),
//! * [`ldif`] — text interchange format,
//! * [`url`] — LDAP URLs (global names and referrals),
//! * [`codec`] — a compact binary wire encoding (our stand-in for BER).

#![warn(missing_docs)]

pub mod codec;
pub mod dit;
pub mod dn;
pub mod entry;
pub mod error;
pub mod filter;
pub mod ldif;
pub mod lineage;
pub mod schema;
pub mod shared;
pub mod url;

pub use codec::{Wire, WireReader};
pub use dit::{Dit, Scope};
pub use dn::{Dn, Rdn};
pub use entry::{AttrValue, Entry, OBJECT_CLASS};
pub use error::{LdapError, Result};
pub use filter::Filter;
pub use ldif::{entry_to_ldif, parse_ldif, to_ldif};
pub use lineage::{
    fresh_at, sync_version, DeltaSet, SnapshotLineage, FRESH_AT_ATTR, SYNC_VERSION_ATTR,
};
pub use schema::{ObjectClassDef, Schema, Strictness};
pub use shared::SharedDit;
pub use url::{LdapUrl, UrlScheme};
