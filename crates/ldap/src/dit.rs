//! The Directory Information Tree: a hierarchical entry store with
//! LDAP-style scoped search.
//!
//! GRIS and GIIS both present their information as a DIT; searches carry a
//! base DN, a scope (base / one-level / subtree), a filter, and an optional
//! attribute selection (§4.1).
//!
//! # Index structures
//!
//! The store maintains three indexes beside the primary entry map so the
//! query hot path never scans entries outside the requested scope:
//!
//! * a **parent index** (`children`): parent DN key → set of child DN keys.
//!   [`Scope::One`] becomes a single map lookup instead of testing every
//!   entry's parent.
//! * a **suffix-major order** (`suffix_index`): the DN's RDNs rendered
//!   root-first and joined with `\x00` sort every subtree into one
//!   contiguous key range, so [`Scope::Sub`] on a non-root base is a range
//!   scan over exactly the subtree (`O(log n + m)` for `m` descendants).
//! * an **equality attribute index** (`attr_index`): attribute → normalized
//!   value → DN keys, over a configurable set of indexed attributes.
//!   `objectclass` is always indexed; naming (RDN) attributes are indexed
//!   automatically on first use. `Eq` filter terms over indexed attributes
//!   — including terms nested under `And`/`Or` — are answered from the
//!   index, with candidate-set intersection for `And` and union for `Or`.
//!
//! Search results are always produced in primary-key (DN string) order, so
//! index-served and scan-served queries return identical output and a
//! size-limited result is a prefix of the unlimited one.

use crate::dn::Dn;
use crate::entry::Entry;
use crate::error::{LdapError, Result};
use crate::filter::Filter;
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// LDAP search scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scope {
    /// The base entry only (lookup / enquiry).
    Base,
    /// Immediate children of the base.
    One,
    /// The base entry and all descendants (discovery).
    Sub,
}

/// An in-memory DIT. Entries are keyed by DN; hierarchy is implicit in the
/// DN structure, so interior "glue" nodes need not exist for descendants to
/// be stored (providers generate subtrees lazily and sparsely).
///
/// See the [module docs](self) for the index structures maintained beside
/// the primary map and the complexity they buy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dit {
    /// Key: DN rendered in normalized form. BTreeMap gives deterministic
    /// iteration order for reproducible experiment output. Entries are
    /// reference-counted so searches without an attribute selection can
    /// return them without deep-copying.
    entries: BTreeMap<String, Arc<Entry>>,
    /// Parent DN key → keys of its immediate children.
    children: BTreeMap<String, BTreeSet<String>>,
    /// Suffix-major (root-first) rendering of each DN → its primary key.
    /// Every subtree occupies one contiguous range of this map.
    suffix_index: BTreeMap<String, String>,
    /// Indexed attribute → normalized value → keys of entries carrying it.
    attr_index: BTreeMap<String, BTreeMap<String, BTreeSet<String>>>,
    /// Attributes covered by `attr_index`. Always contains `objectclass`;
    /// naming attributes are added (with a one-time backfill) on insert.
    indexed_attrs: BTreeSet<String>,
}

fn key(dn: &Dn) -> String {
    // Matches `Dn`'s `Display` exactly, built with direct pushes — this
    // renders on every insert, remove and bulk build.
    let rdns = dn.rdns();
    let cap = rdns
        .iter()
        .map(|r| r.attr().len() + r.value().len() + 3)
        .sum();
    let mut out = String::with_capacity(cap);
    for (i, rdn) in rdns.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(rdn.attr());
        out.push('=');
        out.push_str(rdn.value());
    }
    out
}

/// Primary key of the parent, sliced out of an already-rendered key: a
/// rendered DN is by construction `"<rdn>, " + rendered(parent)`. (Like
/// the rendered primary key itself, this assumes RDN values do not embed
/// `", "` — the whole rendered-key scheme is ambiguous otherwise.)
/// A single-RDN key's parent is the root (rendered as the empty key);
/// only the root itself has no parent.
fn parent_of(k: &str) -> Option<&str> {
    if k.is_empty() {
        None
    } else {
        Some(k.split_once(", ").map_or("", |(_, parent)| parent))
    }
}

/// Suffix-major rendering: RDNs root-first, joined with `\x00`. Because
/// `\x00` sorts below every character that can appear in an RDN, the keys
/// of a subtree rooted at `d` are exactly those in `[rev_key(d),
/// rev_key(d) + "\x01")`.
fn rev_key(dn: &Dn) -> String {
    let rdns = dn.rdns();
    let cap = rdns
        .iter()
        .map(|r| r.attr().len() + r.value().len() + 2)
        .sum();
    let mut out = String::with_capacity(cap);
    for (i, rdn) in rdns.iter().rev().enumerate() {
        if i > 0 {
            out.push('\u{0}');
        }
        out.push_str(rdn.attr());
        out.push('=');
        out.push_str(rdn.value());
    }
    out
}

/// [`rev_key`] derived from an already-rendered primary key by reversing
/// its `", "`-separated components (same embedded-separator caveat as
/// [`parent_of`]), skipping the per-RDN re-render on the bulk-build and
/// mutation hot paths.
fn rev_key_of(k: &str) -> String {
    let mut out = String::with_capacity(k.len());
    for (i, rdn) in k.rsplit(", ").enumerate() {
        if i > 0 {
            out.push('\u{0}');
        }
        out.push_str(rdn);
    }
    out
}

/// Index value normalisation must mirror the filter evaluator's equality
/// semantics (trimmed, case-insensitive), or the index could produce
/// false negatives.
fn norm_value(value: &str) -> String {
    value.trim().to_ascii_lowercase()
}

/// [`norm_value`] without the allocation when the value is already
/// normalized — the common case for machine-generated directory content
/// (hostnames, object classes, stringified numbers), and the bulk
/// builders touch every value of every entry.
fn norm_value_cow(value: &str) -> Cow<'_, str> {
    let t = value.trim();
    if t.len() == value.len() && !t.bytes().any(|b| b.is_ascii_uppercase()) {
        Cow::Borrowed(t)
    } else {
        Cow::Owned(t.to_ascii_lowercase())
    }
}

/// Bulk-build the suffix index for [`Dit::bulk_load`]. `FromIterator`
/// sorts and packs B-tree nodes directly, so there is no per-entry
/// tree descent.
fn build_suffix(keyed: &[(String, Arc<Entry>)]) -> BTreeMap<String, String> {
    keyed
        .iter()
        .map(|(k, _)| (rev_key_of(k), k.clone()))
        .collect()
}

/// Bulk-build the parent index for [`Dit::bulk_load`]: sort
/// (parent, child) pairs once, then turn each run of equal parents into
/// a child set built from an already-sorted sequence.
fn build_children(keyed: &[(String, Arc<Entry>)]) -> BTreeMap<String, BTreeSet<String>> {
    let mut pairs: Vec<(&str, &str)> = keyed
        .iter()
        .filter_map(|(k, _)| parent_of(k).map(|p| (p, k.as_str())))
        .collect();
    // Keys are unique, so equal pairs cannot exist and an unstable sort
    // (no merge buffer) is safe.
    pairs.sort_unstable();
    let mut groups: Vec<(String, BTreeSet<String>)> = Vec::new();
    let mut i = 0;
    while i < pairs.len() {
        let start = i;
        while i < pairs.len() && pairs[i].0 == pairs[start].0 {
            i += 1;
        }
        let kids: BTreeSet<String> = pairs[start..i].iter().map(|p| p.1.to_owned()).collect();
        groups.push((pairs[start].0.to_owned(), kids));
    }
    groups.into_iter().collect()
}

/// Bulk-build the equality attribute index for [`Dit::bulk_load`]: one
/// flat sort of (attr, value, key) triples, then nested grouping. Equal
/// triples (an entry carrying two values that normalize identically)
/// collapse in the set build, matching the incremental path.
fn build_attr_index(
    keyed: &[(String, Arc<Entry>)],
    indexed: &BTreeSet<String>,
) -> BTreeMap<String, BTreeMap<String, BTreeSet<String>>> {
    // One pass per indexed attribute (the set is small) so the sort only
    // ever compares values, never attribute names.
    indexed
        .iter()
        .filter_map(|a| {
            let mut pairs: Vec<(Cow<'_, str>, &str)> = Vec::new();
            for (k, e) in keyed {
                for v in e.get(a) {
                    pairs.push((norm_value_cow(v.as_str()), k.as_str()));
                }
            }
            if pairs.is_empty() {
                return None;
            }
            // `keyed` is in key order, so the stable sort leaves each
            // value group's keys pre-sorted for the set build.
            pairs.sort_by(|x, y| x.0.cmp(&y.0));
            let mut val_groups: Vec<(String, BTreeSet<String>)> = Vec::new();
            let mut i = 0;
            while i < pairs.len() {
                let start = i;
                while i < pairs.len() && pairs[i].0 == pairs[start].0 {
                    i += 1;
                }
                let keys: BTreeSet<String> =
                    pairs[start..i].iter().map(|p| p.1.to_owned()).collect();
                val_groups.push((pairs[start].0.to_string(), keys));
            }
            Some((a.clone(), val_groups.into_iter().collect()))
        })
        .collect()
}

/// Append `entry` to `out` (shared when no selection, projected otherwise)
/// if the filter matches. Returns `true` once the size limit is reached.
fn push_if_match(
    out: &mut Vec<Arc<Entry>>,
    entry: &Arc<Entry>,
    filter: &Filter,
    selection: &[String],
    limit: usize,
) -> bool {
    if filter.matches(entry) {
        out.push(if selection.is_empty() {
            Arc::clone(entry)
        } else {
            Arc::new(entry.project(selection))
        });
        if out.len() >= limit {
            return true;
        }
    }
    false
}

impl Default for Dit {
    fn default() -> Dit {
        Dit::new()
    }
}

impl Dit {
    /// An empty tree.
    pub fn new() -> Dit {
        let mut dit = Dit {
            entries: BTreeMap::new(),
            children: BTreeMap::new(),
            suffix_index: BTreeMap::new(),
            attr_index: BTreeMap::new(),
            indexed_attrs: BTreeSet::new(),
        };
        dit.indexed_attrs.insert("objectclass".to_owned());
        dit
    }

    /// Number of entries stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The attributes currently served by the equality index.
    pub fn indexed_attrs(&self) -> impl Iterator<Item = &str> {
        self.indexed_attrs.iter().map(String::as_str)
    }

    /// Add `attr` to the set of indexed attributes, backfilling the index
    /// over existing entries (one-time `O(n)`). `objectclass` and every
    /// naming attribute seen at insert time are indexed automatically.
    pub fn add_indexed_attr(&mut self, attr: &str) {
        let a = attr.trim().to_ascii_lowercase();
        if a.is_empty() || !self.indexed_attrs.insert(a.clone()) {
            return;
        }
        let mut idx: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for (k, e) in &self.entries {
            for v in e.get(&a) {
                idx.entry(norm_value(v.as_str()))
                    .or_default()
                    .insert(k.clone());
            }
        }
        if !idx.is_empty() {
            self.attr_index.insert(a, idx);
        }
    }

    fn ensure_naming_indexed(&mut self, entry: &Entry) {
        if let Some(rdn) = entry.dn().rdn() {
            if !self.indexed_attrs.contains(rdn.attr()) {
                self.add_indexed_attr(rdn.attr());
            }
        }
    }

    fn index_insert(&mut self, k: &str, entry: &Entry) {
        for a in &self.indexed_attrs {
            let vals = entry.get(a);
            if vals.is_empty() {
                continue;
            }
            let idx = self.attr_index.entry(a.clone()).or_default();
            for v in vals {
                idx.entry(norm_value(v.as_str()))
                    .or_default()
                    .insert(k.to_owned());
            }
        }
    }

    fn index_remove(&mut self, k: &str, entry: &Entry) {
        for a in &self.indexed_attrs {
            let Some(idx) = self.attr_index.get_mut(a) else {
                continue;
            };
            for v in entry.get(a) {
                let nv = norm_value(v.as_str());
                if let Some(set) = idx.get_mut(&nv) {
                    set.remove(k);
                    if set.is_empty() {
                        idx.remove(&nv);
                    }
                }
            }
            if idx.is_empty() {
                self.attr_index.remove(a);
            }
        }
    }

    /// Remove the entry at `k` from the primary map and every index.
    fn remove_key(&mut self, k: &str) -> Option<Arc<Entry>> {
        let arc = self.entries.remove(k)?;
        self.suffix_index.remove(&rev_key_of(k));
        if let Some(pk) = parent_of(k) {
            if let Some(set) = self.children.get_mut(pk) {
                set.remove(k);
                if set.is_empty() {
                    self.children.remove(pk);
                }
            }
        }
        self.index_remove(k, &arc);
        Some(arc)
    }

    /// Install `entry` at `k` (which must equal `key(entry.dn())`),
    /// replacing any previous occupant, and wire up every index.
    fn insert_at(&mut self, k: String, entry: Entry) {
        self.remove_key(&k);
        self.ensure_naming_indexed(&entry);
        self.suffix_index.insert(rev_key_of(&k), k.clone());
        if let Some(pk) = parent_of(&k) {
            if let Some(set) = self.children.get_mut(pk) {
                set.insert(k.clone());
            } else {
                self.children
                    .insert(pk.to_owned(), BTreeSet::from([k.clone()]));
            }
        }
        self.index_insert(&k, &entry);
        self.entries.insert(k, Arc::new(entry));
    }

    /// Insert an entry, failing if one already exists at its DN.
    pub fn add(&mut self, mut entry: Entry) -> Result<()> {
        entry.normalize_naming_attr();
        let k = key(entry.dn());
        if self.entries.contains_key(&k) {
            return Err(LdapError::EntryExists(k));
        }
        self.insert_at(k, entry);
        Ok(())
    }

    /// Insert or replace an entry at its DN.
    pub fn upsert(&mut self, mut entry: Entry) {
        entry.normalize_naming_attr();
        let k = key(entry.dn());
        self.insert_at(k, entry);
    }

    /// Build a tree from a batch of entries in one pass.
    ///
    /// Produces exactly the state `upsert`ing each entry in order would
    /// (later entries win on duplicate DNs), but assembles each index as
    /// one sorted run handed to the B-tree bulk builder instead of paying
    /// a tree descent and index fix-up per entry. Snapshot recovery feeds
    /// this entries already in key order, so the sorts degenerate to
    /// near-linear scans; when the host has more than one core the
    /// independent indexes are built on separate threads.
    pub fn bulk_load(batch: Vec<Entry>) -> Dit {
        Dit::from_keyed(
            batch
                .into_iter()
                .map(|mut e| {
                    e.normalize_naming_attr();
                    (key(e.dn()), Arc::new(e))
                })
                .collect(),
        )
    }

    /// [`bulk_load`](Dit::bulk_load) over already-shared entries: handles
    /// that still reference another tree's storage (a federation parent
    /// rebuilding its cache keeps every unaffected child's entries
    /// shared) are indexed without deep-copying attribute data. An entry
    /// missing its naming attribute is normalized copy-on-write.
    pub fn bulk_load_shared(batch: Vec<Arc<Entry>>) -> Dit {
        Dit::from_keyed(
            batch
                .into_iter()
                .map(|mut e| {
                    let needs_norm = e.dn().rdn().is_some_and(|rdn| {
                        !e.get(rdn.attr()).iter().any(|v| v.as_str() == rdn.value())
                    });
                    if needs_norm {
                        Arc::make_mut(&mut e).normalize_naming_attr();
                    }
                    (key(e.dn()), e)
                })
                .collect(),
        )
    }

    /// Shared core of the bulk builders: normalized, keyed entries in.
    fn from_keyed(mut keyed: Vec<(String, Arc<Entry>)>) -> Dit {
        // Stable sort + keep-last dedup reproduces upsert's
        // last-writer-wins semantics for duplicate DNs.
        keyed.sort_by(|a, b| a.0.cmp(&b.0));
        keyed.dedup_by(|later, kept| {
            if later.0 == kept.0 {
                std::mem::swap(later, kept);
                true
            } else {
                false
            }
        });

        // The final indexed set under incremental insertion is
        // `objectclass` plus every naming attribute seen (each arrival
        // backfills over prior entries), so it can be computed up front.
        let mut indexed_attrs = BTreeSet::new();
        indexed_attrs.insert("objectclass".to_owned());
        for (_, e) in &keyed {
            if let Some(rdn) = e.dn().rdn() {
                // Parsed DNs already carry lowercase attribute names, so
                // the membership probe almost never needs the owned
                // lowercase copy.
                let a = rdn.attr().trim();
                if !a.is_empty() && !indexed_attrs.contains(a) {
                    indexed_attrs.insert(a.to_ascii_lowercase());
                }
            }
        }

        let parallel = std::thread::available_parallelism().map_or(1, usize::from) > 1;
        let (suffix_index, children, attr_index) = if parallel {
            std::thread::scope(|s| {
                let sfx = s.spawn(|| build_suffix(&keyed));
                let ch = s.spawn(|| build_children(&keyed));
                let ai = build_attr_index(&keyed, &indexed_attrs);
                (
                    sfx.join().expect("suffix index builder panicked"),
                    ch.join().expect("parent index builder panicked"),
                    ai,
                )
            })
        } else {
            (
                build_suffix(&keyed),
                build_children(&keyed),
                build_attr_index(&keyed, &indexed_attrs),
            )
        };

        Dit {
            entries: keyed.into_iter().collect(),
            children,
            suffix_index,
            attr_index,
            indexed_attrs,
        }
    }

    /// Remove the entry at `dn`. Returns it if present.
    pub fn delete(&mut self, dn: &Dn) -> Option<Entry> {
        let arc = self.remove_key(&key(dn))?;
        Some(Arc::try_unwrap(arc).unwrap_or_else(|a| (*a).clone()))
    }

    /// Remove `dn` and every descendant. Returns the number removed.
    ///
    /// The doomed set is a single contiguous range of the suffix-major
    /// index, so entries outside the subtree are never visited.
    pub fn delete_subtree(&mut self, dn: &Dn) -> usize {
        let doomed: Vec<String> = if dn.is_root() {
            self.entries.keys().cloned().collect()
        } else {
            let prefix = rev_key(dn);
            let mut end = prefix.clone();
            end.push('\u{1}');
            self.suffix_index
                .range(prefix..end)
                .map(|(_, k)| k.clone())
                .collect()
        };
        let n = doomed.len();
        for k in &doomed {
            self.remove_key(k);
        }
        n
    }

    /// Fetch the entry at `dn`.
    pub fn get(&self, dn: &Dn) -> Option<&Entry> {
        self.entries.get(&key(dn)).map(Arc::as_ref)
    }

    /// Mutable fetch (copy-on-write when the entry is shared with search
    /// results). Mutating attributes through this handle bypasses the
    /// attribute index; callers changing indexed attributes should
    /// re-`upsert` the entry instead.
    pub fn get_mut(&mut self, dn: &Dn) -> Option<&mut Entry> {
        self.entries.get_mut(&key(dn)).map(Arc::make_mut)
    }

    /// Iterate all entries in deterministic (DN string) order.
    pub fn iter(&self) -> impl Iterator<Item = &Entry> {
        self.entries.values().map(Arc::as_ref)
    }

    /// Iterate (primary key, shared handle) pairs in key order. Delta
    /// extraction merge-joins two snapshots with this: `Arc::ptr_eq` on
    /// the handles detects unchanged entries without comparing content.
    pub fn iter_shared(&self) -> impl Iterator<Item = (&str, &Arc<Entry>)> {
        self.entries.iter().map(|(k, e)| (k.as_str(), e))
    }

    /// Fetch the shared handle at primary key `k` (a normalized DN
    /// rendering, as yielded by [`iter_shared`](Dit::iter_shared)).
    pub fn get_shared(&self, k: &str) -> Option<&Arc<Entry>> {
        self.entries.get(k)
    }

    /// Keys of entries that could satisfy `filter`, from the equality
    /// index. `None` means the filter is not indexable and every in-scope
    /// entry must be tested. The returned set is a superset of the true
    /// matches (the full filter is always re-evaluated), and is in
    /// primary-key order.
    fn candidate_keys(&self, filter: &Filter) -> Option<Cow<'_, BTreeSet<String>>> {
        match filter {
            Filter::Eq(attr, value) => {
                let a = attr.trim().to_ascii_lowercase();
                if !self.indexed_attrs.contains(&a) {
                    return None;
                }
                Some(
                    match self
                        .attr_index
                        .get(&a)
                        .and_then(|idx| idx.get(&norm_value(value)))
                    {
                        Some(set) => Cow::Borrowed(set),
                        // Indexed attribute, value never seen: nothing matches.
                        None => Cow::Owned(BTreeSet::new()),
                    },
                )
            }
            Filter::And(fs) => {
                // Any indexable conjunct bounds the candidates; intersect
                // all of them. Non-indexable conjuncts are enforced by the
                // re-evaluation pass.
                let mut sets = fs.iter().filter_map(|f| self.candidate_keys(f));
                let mut acc = sets.next()?;
                for s in sets {
                    if acc.is_empty() {
                        break;
                    }
                    acc = Cow::Owned(acc.intersection(&s).cloned().collect());
                }
                Some(acc)
            }
            Filter::Or(fs) => {
                // Sound only when every branch is indexable — a single
                // opaque branch could match entries outside the union.
                let mut acc = BTreeSet::new();
                for f in fs {
                    acc.extend(self.candidate_keys(f)?.iter().cloned());
                }
                Some(Cow::Owned(acc))
            }
            _ => None,
        }
    }

    /// Scoped, filtered search returning shared handles: entries are
    /// reference-counted, so matches with an empty `selection` are
    /// returned without copying any attribute data. This is the query
    /// hot path used by the servers; [`Dit::search`] wraps it for callers
    /// needing owned entries.
    pub fn search_shared(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &Filter,
        selection: &[String],
        size_limit: usize,
    ) -> Vec<Arc<Entry>> {
        let limit = if size_limit == 0 {
            usize::MAX
        } else {
            size_limit
        };
        let mut out = Vec::new();
        match scope {
            Scope::Base => {
                if let Some(e) = self.entries.get(&key(base)) {
                    push_if_match(&mut out, e, filter, selection, limit);
                }
            }
            Scope::One => {
                let Some(kids) = self.children.get(&key(base)) else {
                    return out;
                };
                match self.candidate_keys(filter) {
                    Some(cands) => {
                        // Iterate the smaller set, membership-test the
                        // other; both are sorted by primary key.
                        let (walk, probe): (&BTreeSet<String>, &BTreeSet<String>) =
                            if cands.len() < kids.len() {
                                (&cands, kids)
                            } else {
                                (kids, &cands)
                            };
                        for k in walk {
                            if !probe.contains(k) {
                                continue;
                            }
                            let Some(e) = self.entries.get(k) else {
                                continue;
                            };
                            if push_if_match(&mut out, e, filter, selection, limit) {
                                break;
                            }
                        }
                    }
                    None => {
                        for k in kids {
                            let Some(e) = self.entries.get(k) else {
                                continue;
                            };
                            if push_if_match(&mut out, e, filter, selection, limit) {
                                break;
                            }
                        }
                    }
                }
            }
            Scope::Sub => {
                if let Some(cands) = self.candidate_keys(filter) {
                    for k in cands.iter() {
                        let Some(e) = self.entries.get(k) else {
                            continue;
                        };
                        if e.dn().is_under(base)
                            && push_if_match(&mut out, e, filter, selection, limit)
                        {
                            break;
                        }
                    }
                } else if base.is_root() {
                    for e in self.entries.values() {
                        if push_if_match(&mut out, e, filter, selection, limit) {
                            break;
                        }
                    }
                } else {
                    // Range-scan exactly the subtree in suffix-major
                    // order, then restore primary-key output order.
                    let prefix = rev_key(base);
                    let mut end = prefix.clone();
                    end.push('\u{1}');
                    let mut keys: Vec<&String> = self
                        .suffix_index
                        .range(prefix..end)
                        .map(|(_, k)| k)
                        .collect();
                    keys.sort_unstable();
                    for k in keys {
                        let Some(e) = self.entries.get(k) else {
                            continue;
                        };
                        if push_if_match(&mut out, e, filter, selection, limit) {
                            break;
                        }
                    }
                }
            }
        }
        out
    }

    /// Scoped, filtered search. Returns matching entries, projected onto
    /// `selection` when non-empty. `size_limit` of 0 means unlimited.
    pub fn search(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &Filter,
        selection: &[String],
        size_limit: usize,
    ) -> Vec<Entry> {
        self.search_shared(base, scope, filter, selection, size_limit)
            .into_iter()
            .map(|a| Arc::try_unwrap(a).unwrap_or_else(|a| (*a).clone()))
            .collect()
    }

    /// Immediate children of `dn` (by DN structure), via the parent index.
    pub fn children(&self, dn: &Dn) -> Vec<&Entry> {
        match self.children.get(&key(dn)) {
            Some(kids) => kids
                .iter()
                .filter_map(|k| self.entries.get(k))
                .map(Arc::as_ref)
                .collect(),
            None => Vec::new(),
        }
    }

    /// Re-home every entry under a new suffix: each stored DN `d` becomes
    /// `d.under(suffix)`. Used when a directory mounts a provider's
    /// namespace inside its own (Figure 5).
    pub fn rebased(&self, suffix: &Dn) -> Dit {
        let mut out = Dit::new();
        // Entries were normalized on insert and rebasing preserves the
        // most-specific RDN, so re-normalization is unnecessary; carrying
        // the indexed-attribute set over avoids per-entry backfills.
        out.indexed_attrs = self.indexed_attrs.clone();
        for e in self.entries.values() {
            let mut e = (**e).clone();
            e.set_dn(e.dn().under(suffix));
            let k = key(e.dn());
            out.insert_at(k, e);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dit {
        let mut dit = Dit::new();
        dit.add(
            Entry::at("hn=hostX")
                .unwrap()
                .with_class("computer")
                .with("system", "mips irix"),
        )
        .unwrap();
        dit.add(
            Entry::at("queue=default, hn=hostX")
                .unwrap()
                .with_class("service")
                .with_class("queue")
                .with("dispatchtype", "immediate"),
        )
        .unwrap();
        dit.add(
            Entry::at("perf=load5, hn=hostX")
                .unwrap()
                .with_class("perf")
                .with_class("loadaverage")
                .with("load5", 3.2f64),
        )
        .unwrap();
        dit.add(
            Entry::at("store=scratch, hn=hostX")
                .unwrap()
                .with_class("storage")
                .with_class("filesystem")
                .with("free", 33515i64),
        )
        .unwrap();
        dit.add(
            Entry::at("hn=hostY")
                .unwrap()
                .with_class("computer")
                .with("system", "linux"),
        )
        .unwrap();
        dit
    }

    /// Structural equality across every field (entries and all three
    /// indexes): `Debug` renders the private BTree maps deterministically.
    fn assert_same_dit(a: &Dit, b: &Dit) {
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn bulk_load_matches_sequential_upsert() {
        let batch = vec![
            Entry::at("hn=hostB").unwrap().with_class("computer"),
            Entry::at("queue=Default, hn=hostB")
                .unwrap()
                .with_class("service")
                .with("dispatchtype", "  Immediate "),
            Entry::at("hn=hostA")
                .unwrap()
                .with_class("computer")
                .with("system", "linux"),
            Entry::at("perf=load5, hn=hostA")
                .unwrap()
                .with_class("perf")
                .with("load5", 1.5f64),
            // Duplicate DN: the later entry must win, as with upsert.
            Entry::at("hn=hostA")
                .unwrap()
                .with_class("computer")
                .with("system", "irix"),
            // Second naming attribute exercises the indexed-attr backfill.
            Entry::at("vo=alpha").unwrap().with_class("organization"),
        ];
        let mut sequential = Dit::new();
        for e in batch.clone() {
            sequential.upsert(e);
        }
        let bulk = Dit::bulk_load(batch);
        assert_same_dit(&bulk, &sequential);
        assert_eq!(
            bulk.indexed_attrs().collect::<Vec<_>>(),
            ["hn", "objectclass", "perf", "queue", "vo"]
        );
    }

    #[test]
    fn bulk_load_of_empty_batch_is_new() {
        assert_same_dit(&Dit::bulk_load(Vec::new()), &Dit::new());
    }

    #[test]
    fn bulk_load_serves_indexed_searches() {
        let mut batch = Vec::new();
        for i in 0..50 {
            batch.push(
                Entry::at(&format!("hn=host{i}"))
                    .unwrap()
                    .with_class("computer")
                    .with("system", if i % 2 == 0 { "linux" } else { "irix" }),
            );
            batch.push(
                Entry::at(&format!("queue=default, hn=host{i}"))
                    .unwrap()
                    .with_class("service"),
            );
        }
        let dit = Dit::bulk_load(batch);
        assert_eq!(dit.len(), 100);
        let hits = dit.search(
            &Dn::root(),
            Scope::Sub,
            &Filter::parse("(objectclass=service)").unwrap(),
            &[],
            0,
        );
        assert_eq!(hits.len(), 50);
        let one = dit.search(
            &Dn::parse("hn=host7").unwrap(),
            Scope::One,
            &Filter::always(),
            &[],
            0,
        );
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].dn().to_string(), "queue=default, hn=host7");
    }

    #[test]
    fn add_rejects_duplicates() {
        let mut dit = sample();
        let dup = Entry::at("hn=hostX").unwrap().with_class("computer");
        assert!(matches!(dit.add(dup), Err(LdapError::EntryExists(_))));
    }

    #[test]
    fn base_scope_is_lookup() {
        let dit = sample();
        let base = Dn::parse("hn=hostX").unwrap();
        let hits = dit.search(&base, Scope::Base, &Filter::always(), &[], 0);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].dn(), &base);
    }

    #[test]
    fn one_scope_lists_children() {
        let dit = sample();
        let base = Dn::parse("hn=hostX").unwrap();
        let hits = dit.search(&base, Scope::One, &Filter::always(), &[], 0);
        assert_eq!(hits.len(), 3);
        assert!(hits.iter().all(|e| e.dn().parent().as_ref() == Some(&base)));
    }

    #[test]
    fn sub_scope_includes_base_and_descendants() {
        let dit = sample();
        let base = Dn::parse("hn=hostX").unwrap();
        let hits = dit.search(&base, Scope::Sub, &Filter::always(), &[], 0);
        assert_eq!(hits.len(), 4);
    }

    #[test]
    fn root_subtree_sees_everything() {
        let dit = sample();
        let hits = dit.search(&Dn::root(), Scope::Sub, &Filter::always(), &[], 0);
        assert_eq!(hits.len(), 5);
    }

    #[test]
    fn filter_applies_within_scope() {
        let dit = sample();
        let f = Filter::parse("(objectclass=computer)").unwrap();
        let hits = dit.search(&Dn::root(), Scope::Sub, &f, &[], 0);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn selection_projects_attributes() {
        let dit = sample();
        let base = Dn::parse("hn=hostX").unwrap();
        let hits = dit.search(&base, Scope::Base, &Filter::always(), &["system".into()], 0);
        assert_eq!(hits[0].attr_count(), 1);
    }

    #[test]
    fn size_limit_truncates() {
        let dit = sample();
        let hits = dit.search(&Dn::root(), Scope::Sub, &Filter::always(), &[], 2);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn delete_subtree_removes_descendants() {
        let mut dit = sample();
        let n = dit.delete_subtree(&Dn::parse("hn=hostX").unwrap());
        assert_eq!(n, 4);
        assert_eq!(dit.len(), 1);
    }

    #[test]
    fn rebase_moves_namespace() {
        let dit = sample();
        let org = Dn::parse("o=O1").unwrap();
        let rebased = dit.rebased(&org);
        assert_eq!(rebased.len(), dit.len());
        assert!(rebased.get(&Dn::parse("hn=hostX, o=O1").unwrap()).is_some());
        assert!(rebased.get(&Dn::parse("hn=hostX").unwrap()).is_none());
    }

    #[test]
    fn naming_attr_added_on_insert() {
        let dit = sample();
        let e = dit.get(&Dn::parse("hn=hostX").unwrap()).unwrap();
        assert_eq!(e.get_str("hn"), Some("hostX"));
    }

    #[test]
    fn subtree_excludes_sibling_with_prefix_name() {
        // "hn=hostXY" must not be mistaken for a descendant of
        // "hn=hostX" by the suffix-major range scan.
        let mut dit = sample();
        dit.add(Entry::at("hn=hostXY").unwrap().with_class("computer"))
            .unwrap();
        let base = Dn::parse("hn=hostX").unwrap();
        // Non-indexable filter forces the range-scan path.
        let f = Filter::parse("(system=*)").unwrap();
        let hits = dit.search(&base, Scope::Sub, &f, &[], 0);
        assert!(hits.iter().all(|e| e.dn().is_under(&base)));
        let all = dit.search(&base, Scope::Sub, &Filter::always(), &[], 0);
        assert_eq!(all.len(), 4, "hostXY is a sibling, not a descendant");
    }

    #[test]
    fn naming_attr_queries_use_equality_index() {
        let dit = sample();
        // "hn" was auto-indexed when hn=hostX was inserted.
        assert!(dit.indexed_attrs().any(|a| a == "hn"));
        let f = Filter::parse("(hn=hostY)").unwrap();
        let hits = dit.search(&Dn::root(), Scope::Sub, &f, &[], 0);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].dn().to_string(), "hn=hostY");
    }

    #[test]
    fn index_lookup_is_case_and_space_insensitive() {
        let dit = sample();
        let f = Filter::parse("(objectclass=COMPUTER)").unwrap();
        assert_eq!(dit.search(&Dn::root(), Scope::Sub, &f, &[], 0).len(), 2);
        let f = Filter::Eq("objectclass".into(), "  Computer ".into());
        assert_eq!(dit.search(&Dn::root(), Scope::Sub, &f, &[], 0).len(), 2);
    }

    #[test]
    fn and_intersects_candidate_sets() {
        let dit = sample();
        let f = Filter::parse("(&(objectclass=computer)(hn=hostX))").unwrap();
        let hits = dit.search(&Dn::root(), Scope::Sub, &f, &[], 0);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].dn().to_string(), "hn=hostX");
    }

    #[test]
    fn or_unions_candidate_sets() {
        let dit = sample();
        let f = Filter::parse("(|(hn=hostX)(hn=hostY))").unwrap();
        let hits = dit.search(&Dn::root(), Scope::Sub, &f, &[], 0);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn or_with_unindexable_branch_still_correct() {
        let dit = sample();
        // The substring branch is not indexable, so the whole Or must
        // fall back to a scan rather than return only index hits.
        let f = Filter::parse("(|(hn=hostY)(system=mips*))").unwrap();
        let hits = dit.search(&Dn::root(), Scope::Sub, &f, &[], 0);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn search_shared_avoids_copies_without_selection() {
        let dit = sample();
        let base = Dn::parse("hn=hostX").unwrap();
        let shared = dit.search_shared(&base, Scope::Base, &Filter::always(), &[], 0);
        let stored = dit.get(&base).unwrap();
        assert!(std::ptr::eq(shared[0].as_ref(), stored));
    }

    #[test]
    fn upsert_and_delete_keep_indexes_consistent() {
        let mut dit = sample();
        // Re-class hostY: old class must leave the index, new one enter.
        dit.upsert(Entry::at("hn=hostY").unwrap().with_class("storage"));
        let f = Filter::parse("(objectclass=computer)").unwrap();
        assert_eq!(dit.search(&Dn::root(), Scope::Sub, &f, &[], 0).len(), 1);
        let f = Filter::parse("(objectclass=storage)").unwrap();
        assert_eq!(dit.search(&Dn::root(), Scope::Sub, &f, &[], 0).len(), 2);
        // Delete drops the entry from every index.
        dit.delete(&Dn::parse("hn=hostY").unwrap());
        assert_eq!(dit.search(&Dn::root(), Scope::Sub, &f, &[], 0).len(), 1);
        let one = dit.search(&Dn::root(), Scope::One, &Filter::always(), &[], 0);
        assert_eq!(one.len(), 1, "parent index updated on delete");
    }

    #[test]
    fn children_uses_parent_index() {
        let dit = sample();
        let kids = dit.children(&Dn::parse("hn=hostX").unwrap());
        assert_eq!(kids.len(), 3);
        let none = dit.children(&Dn::parse("hn=absent").unwrap());
        assert!(none.is_empty());
        let top = dit.children(&Dn::root());
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn rebased_tree_answers_indexed_queries() {
        let dit = sample();
        let rebased = dit.rebased(&Dn::parse("o=O1").unwrap());
        let f = Filter::parse("(objectclass=computer)").unwrap();
        let hits = rebased.search(&Dn::parse("o=O1").unwrap(), Scope::Sub, &f, &[], 0);
        assert_eq!(hits.len(), 2);
        let one = rebased.search(
            &Dn::parse("hn=hostX, o=O1").unwrap(),
            Scope::One,
            &Filter::always(),
            &[],
            0,
        );
        assert_eq!(one.len(), 3);
    }
}
