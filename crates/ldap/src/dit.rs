//! The Directory Information Tree: a hierarchical entry store with
//! LDAP-style scoped search.
//!
//! GRIS and GIIS both present their information as a DIT; searches carry a
//! base DN, a scope (base / one-level / subtree), a filter, and an optional
//! attribute selection (§4.1).

use crate::dn::Dn;
use crate::entry::Entry;
use crate::error::{LdapError, Result};
use crate::filter::Filter;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// LDAP search scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scope {
    /// The base entry only (lookup / enquiry).
    Base,
    /// Immediate children of the base.
    One,
    /// The base entry and all descendants (discovery).
    Sub,
}

/// An in-memory DIT. Entries are keyed by DN; hierarchy is implicit in the
/// DN structure, so interior "glue" nodes need not exist for descendants to
/// be stored (providers generate subtrees lazily and sparsely).
///
/// Searches whose filter pins an object class (a top-level
/// `(objectclass=X)` term, possibly inside `And`s) are served from a
/// class index instead of a full scan — the common GIIS discovery query
/// (`(objectclass=computer)`) touches only matching entries.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dit {
    /// Key: DN rendered in normalized form. BTreeMap gives deterministic
    /// iteration order for reproducible experiment output.
    entries: BTreeMap<String, Entry>,
    /// Lowercased object class -> DN keys of entries carrying it.
    class_index: BTreeMap<String, BTreeSet<String>>,
}

fn key(dn: &Dn) -> String {
    dn.to_string()
}

impl Dit {
    /// An empty tree.
    pub fn new() -> Dit {
        Dit::default()
    }

    /// Number of entries stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Index key normalisation must mirror the filter evaluator's
    /// equality semantics (trimmed, case-insensitive), or the index could
    /// produce false negatives.
    fn class_key(class: &str) -> String {
        class.trim().to_ascii_lowercase()
    }

    fn index_insert(&mut self, k: &str, entry: &Entry) {
        for class in entry.object_classes() {
            self.class_index
                .entry(Self::class_key(class))
                .or_default()
                .insert(k.to_owned());
        }
    }

    fn index_remove(&mut self, k: &str, entry: &Entry) {
        for class in entry.object_classes() {
            let lc = Self::class_key(class);
            if let Some(set) = self.class_index.get_mut(&lc) {
                set.remove(k);
                if set.is_empty() {
                    self.class_index.remove(&lc);
                }
            }
        }
    }

    /// Insert an entry, failing if one already exists at its DN.
    pub fn add(&mut self, mut entry: Entry) -> Result<()> {
        entry.normalize_naming_attr();
        let k = key(entry.dn());
        if self.entries.contains_key(&k) {
            return Err(LdapError::EntryExists(k));
        }
        self.index_insert(&k, &entry);
        self.entries.insert(k, entry);
        Ok(())
    }

    /// Insert or replace an entry at its DN.
    pub fn upsert(&mut self, mut entry: Entry) {
        entry.normalize_naming_attr();
        let k = key(entry.dn());
        if let Some(old) = self.entries.remove(&k) {
            self.index_remove(&k, &old);
        }
        self.index_insert(&k, &entry);
        self.entries.insert(k, entry);
    }

    /// Remove the entry at `dn`. Returns it if present.
    pub fn delete(&mut self, dn: &Dn) -> Option<Entry> {
        let k = key(dn);
        let old = self.entries.remove(&k)?;
        self.index_remove(&k, &old);
        Some(old)
    }

    /// Remove `dn` and every descendant. Returns the number removed.
    pub fn delete_subtree(&mut self, dn: &Dn) -> usize {
        let doomed: Vec<String> = self
            .entries
            .iter()
            .filter(|(_, e)| e.dn().is_under(dn))
            .map(|(k, _)| k.clone())
            .collect();
        let n = doomed.len();
        for k in doomed {
            if let Some(old) = self.entries.remove(&k) {
                self.index_remove(&k, &old);
            }
        }
        n
    }

    /// Fetch the entry at `dn`.
    pub fn get(&self, dn: &Dn) -> Option<&Entry> {
        self.entries.get(&key(dn))
    }

    /// Mutable fetch.
    pub fn get_mut(&mut self, dn: &Dn) -> Option<&mut Entry> {
        self.entries.get_mut(&key(dn))
    }

    /// Iterate all entries in deterministic (DN string) order.
    pub fn iter(&self) -> impl Iterator<Item = &Entry> {
        self.entries.values()
    }

    /// An object class that every match of `filter` must carry: a
    /// top-level `(objectclass=X)` equality, possibly nested in `And`s.
    fn pinned_class(filter: &Filter) -> Option<&str> {
        match filter {
            Filter::Eq(attr, v) if attr == "objectclass" => Some(v.as_str()),
            Filter::And(fs) => fs.iter().find_map(Self::pinned_class),
            _ => None,
        }
    }

    /// Scoped, filtered search. Returns matching entries, projected onto
    /// `selection` when non-empty. `size_limit` of 0 means unlimited.
    pub fn search(
        &self,
        base: &Dn,
        scope: Scope,
        filter: &Filter,
        selection: &[String],
        size_limit: usize,
    ) -> Vec<Entry> {
        if let Some(class) = Self::pinned_class(filter) {
            if let Some(keys) = self.class_index.get(&Self::class_key(class)) {
                return self.search_over(
                    keys.iter().filter_map(|k| self.entries.get(k)),
                    base,
                    scope,
                    filter,
                    selection,
                    size_limit,
                );
            }
            return Vec::new(); // class never seen: nothing can match
        }
        self.search_over(self.entries.values(), base, scope, filter, selection, size_limit)
    }

    fn search_over<'a>(
        &self,
        candidates: impl Iterator<Item = &'a Entry>,
        base: &Dn,
        scope: Scope,
        filter: &Filter,
        selection: &[String],
        size_limit: usize,
    ) -> Vec<Entry> {
        let mut out = Vec::new();
        for entry in candidates {
            let dn = entry.dn();
            let in_scope = match scope {
                Scope::Base => dn == base,
                Scope::One => dn.parent().as_ref() == Some(base),
                Scope::Sub => dn.is_under(base),
            };
            if in_scope && filter.matches(entry) {
                out.push(entry.project(selection));
                if size_limit != 0 && out.len() >= size_limit {
                    break;
                }
            }
        }
        out
    }

    /// Immediate children of `dn` (by DN structure).
    pub fn children(&self, dn: &Dn) -> Vec<&Entry> {
        self.entries
            .values()
            .filter(|e| e.dn().parent().as_ref() == Some(dn))
            .collect()
    }

    /// Re-home every entry under a new suffix: each stored DN `d` becomes
    /// `d.under(suffix)`. Used when a directory mounts a provider's
    /// namespace inside its own (Figure 5).
    pub fn rebased(&self, suffix: &Dn) -> Dit {
        let mut out = Dit::new();
        for e in self.entries.values() {
            let mut e = e.clone();
            e.set_dn(e.dn().under(suffix));
            out.upsert(e);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dit {
        let mut dit = Dit::new();
        dit.add(
            Entry::at("hn=hostX")
                .unwrap()
                .with_class("computer")
                .with("system", "mips irix"),
        )
        .unwrap();
        dit.add(
            Entry::at("queue=default, hn=hostX")
                .unwrap()
                .with_class("service")
                .with_class("queue")
                .with("dispatchtype", "immediate"),
        )
        .unwrap();
        dit.add(
            Entry::at("perf=load5, hn=hostX")
                .unwrap()
                .with_class("perf")
                .with_class("loadaverage")
                .with("load5", 3.2f64),
        )
        .unwrap();
        dit.add(
            Entry::at("store=scratch, hn=hostX")
                .unwrap()
                .with_class("storage")
                .with_class("filesystem")
                .with("free", 33515i64),
        )
        .unwrap();
        dit.add(
            Entry::at("hn=hostY")
                .unwrap()
                .with_class("computer")
                .with("system", "linux"),
        )
        .unwrap();
        dit
    }

    #[test]
    fn add_rejects_duplicates() {
        let mut dit = sample();
        let dup = Entry::at("hn=hostX").unwrap().with_class("computer");
        assert!(matches!(dit.add(dup), Err(LdapError::EntryExists(_))));
    }

    #[test]
    fn base_scope_is_lookup() {
        let dit = sample();
        let base = Dn::parse("hn=hostX").unwrap();
        let hits = dit.search(&base, Scope::Base, &Filter::always(), &[], 0);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].dn(), &base);
    }

    #[test]
    fn one_scope_lists_children() {
        let dit = sample();
        let base = Dn::parse("hn=hostX").unwrap();
        let hits = dit.search(&base, Scope::One, &Filter::always(), &[], 0);
        assert_eq!(hits.len(), 3);
        assert!(hits.iter().all(|e| e.dn().parent().as_ref() == Some(&base)));
    }

    #[test]
    fn sub_scope_includes_base_and_descendants() {
        let dit = sample();
        let base = Dn::parse("hn=hostX").unwrap();
        let hits = dit.search(&base, Scope::Sub, &Filter::always(), &[], 0);
        assert_eq!(hits.len(), 4);
    }

    #[test]
    fn root_subtree_sees_everything() {
        let dit = sample();
        let hits = dit.search(&Dn::root(), Scope::Sub, &Filter::always(), &[], 0);
        assert_eq!(hits.len(), 5);
    }

    #[test]
    fn filter_applies_within_scope() {
        let dit = sample();
        let f = Filter::parse("(objectclass=computer)").unwrap();
        let hits = dit.search(&Dn::root(), Scope::Sub, &f, &[], 0);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn selection_projects_attributes() {
        let dit = sample();
        let base = Dn::parse("hn=hostX").unwrap();
        let hits = dit.search(&base, Scope::Base, &Filter::always(), &["system".into()], 0);
        assert_eq!(hits[0].attr_count(), 1);
    }

    #[test]
    fn size_limit_truncates() {
        let dit = sample();
        let hits = dit.search(&Dn::root(), Scope::Sub, &Filter::always(), &[], 2);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn delete_subtree_removes_descendants() {
        let mut dit = sample();
        let n = dit.delete_subtree(&Dn::parse("hn=hostX").unwrap());
        assert_eq!(n, 4);
        assert_eq!(dit.len(), 1);
    }

    #[test]
    fn rebase_moves_namespace() {
        let dit = sample();
        let org = Dn::parse("o=O1").unwrap();
        let rebased = dit.rebased(&org);
        assert_eq!(rebased.len(), dit.len());
        assert!(rebased
            .get(&Dn::parse("hn=hostX, o=O1").unwrap())
            .is_some());
        assert!(rebased.get(&Dn::parse("hn=hostX").unwrap()).is_none());
    }

    #[test]
    fn naming_attr_added_on_insert() {
        let dit = sample();
        let e = dit.get(&Dn::parse("hn=hostX").unwrap()).unwrap();
        assert_eq!(e.get_str("hn"), Some("hostX"));
    }
}
