//! Snapshot-published DIT for concurrent readers (the live runtime's
//! query worker pools).
//!
//! The read-mostly directory workload of §5/§10 is the textbook case for
//! epoch/COW publication: mutators build the next tree version off to
//! the side and *swap* it in, so searches run against a cheap
//! point-in-time snapshot and never take an exclusive lock.
//!
//! # Concurrency model
//!
//! * **Single logical writer.** All mutation goes through [`SharedDit::mutate`],
//!   which serializes writers on the `master` mutex. The engines that own
//!   a `SharedDit` (the GIIS harvest cache) only mutate from their owning
//!   thread, so this mutex is uncontended in practice.
//! * **Build-and-swap publication.** `mutate` applies the whole batch to
//!   the private master tree, then publishes an [`Arc`] clone of it. The
//!   clone is shallow — entries are reference-counted — so publication is
//!   `O(n)` pointer copies, amortized over the batch.
//! * **Wait-free-ish readers.** [`SharedDit::snapshot`] takes the
//!   `published` read lock only long enough to clone the `Arc`; the swap
//!   in `mutate` holds the write lock only for the pointer store. Queries
//!   in flight keep reading the pre-swap snapshot until they drop it.
//! * **No torn reads.** A snapshot is a single `Arc<Dit>` published after
//!   the batch completed: it reflects every mutation batch up to some
//!   serialized prefix and nothing of any later batch.
//!
//! Memory ordering: the `RwLock` acquire/release on `published` is the
//! synchronizing edge — everything the writer did to the master tree
//! before the swap happens-before any reader that observes the new
//! snapshot.

use crate::dit::Dit;
use parking_lot::{Mutex, RwLock};
use std::sync::Arc;

/// A [`Dit`] whose readers see immutable point-in-time snapshots while a
/// single logical writer publishes new versions by build-and-swap.
#[derive(Debug)]
pub struct SharedDit {
    /// The writer's private build tree. Only `mutate` touches it.
    master: Mutex<Dit>,
    /// The currently-published snapshot readers clone.
    published: RwLock<Arc<Dit>>,
}

impl Default for SharedDit {
    fn default() -> SharedDit {
        SharedDit::new()
    }
}

impl SharedDit {
    /// An empty shared tree.
    pub fn new() -> SharedDit {
        SharedDit::from_dit(Dit::new())
    }

    /// Wrap an existing tree; it becomes the first published snapshot.
    pub fn from_dit(dit: Dit) -> SharedDit {
        SharedDit {
            published: RwLock::new(Arc::new(dit.clone())),
            master: Mutex::new(dit),
        }
    }

    /// The current snapshot. Cheap (one `Arc` clone under a read lock);
    /// the returned tree never changes, however long the caller holds it.
    pub fn snapshot(&self) -> Arc<Dit> {
        Arc::clone(&self.published.read())
    }

    /// Apply a mutation batch and publish the result as the new snapshot.
    ///
    /// The closure runs with the master tree exclusively borrowed;
    /// readers are *not* blocked while it runs — they keep serving the
    /// previous snapshot and observe the whole batch atomically once the
    /// swap lands.
    pub fn mutate<R>(&self, f: impl FnOnce(&mut Dit) -> R) -> R {
        let mut master = self.master.lock();
        let out = f(&mut master);
        let next = Arc::new(master.clone());
        // Publish while still holding `master`: batches can never land
        // out of order.
        *self.published.write() = next;
        out
    }

    /// Replace the whole tree with an externally-built one (e.g. a
    /// [`Dit::bulk_load`] of a full-sync batch) and publish it. Writers
    /// serialize on the master mutex exactly as in [`mutate`]
    /// (SharedDit::mutate), so replacement cannot interleave with a
    /// mutation batch.
    pub fn replace(&self, dit: Dit) {
        let mut master = self.master.lock();
        *master = dit;
        *self.published.write() = Arc::new(master.clone());
    }

    /// Entry count of the current snapshot.
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    /// True when the current snapshot holds no entries.
    pub fn is_empty(&self) -> bool {
        self.snapshot().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dit::Scope;
    use crate::dn::Dn;
    use crate::entry::Entry;
    use crate::filter::Filter;

    #[test]
    fn snapshot_is_immutable_across_mutation() {
        let shared = SharedDit::new();
        shared.mutate(|d| d.upsert(Entry::at("hn=a").unwrap().with_class("computer")));
        let snap = shared.snapshot();
        assert_eq!(snap.len(), 1);
        shared.mutate(|d| {
            d.upsert(Entry::at("hn=b").unwrap().with_class("computer"));
            d.delete(&Dn::parse("hn=a").unwrap());
        });
        // The old snapshot still sees the pre-batch world.
        assert_eq!(snap.len(), 1);
        assert!(snap.get(&Dn::parse("hn=a").unwrap()).is_some());
        // A fresh snapshot sees the whole batch, atomically.
        let snap2 = shared.snapshot();
        assert_eq!(snap2.len(), 1);
        assert!(snap2.get(&Dn::parse("hn=b").unwrap()).is_some());
    }

    #[test]
    fn from_dit_publishes_initial_state() {
        let mut dit = Dit::new();
        dit.upsert(Entry::at("hn=x").unwrap().with_class("computer"));
        let shared = SharedDit::from_dit(dit);
        assert_eq!(shared.len(), 1);
        assert!(!shared.is_empty());
        let hits = shared.snapshot().search(
            &Dn::root(),
            Scope::Sub,
            &Filter::parse("(objectclass=computer)").unwrap(),
            &[],
            0,
        );
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn concurrent_readers_never_see_partial_batches() {
        // Writers apply multi-entry batches where all entries of batch i
        // carry gen=i; a torn read would surface a snapshot mixing
        // generations.
        let shared = Arc::new(SharedDit::new());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            let w = Arc::clone(&shared);
            let wstop = Arc::clone(&stop);
            s.spawn(move || {
                for gen in 0..200i64 {
                    w.mutate(|d| {
                        for k in 0..4 {
                            d.upsert(
                                Entry::at(&format!("hn=h{k}"))
                                    .unwrap()
                                    .with_class("computer")
                                    .with("gen", gen),
                            );
                        }
                    });
                }
                wstop.store(true, std::sync::atomic::Ordering::Release);
            });
            for _ in 0..3 {
                let r = Arc::clone(&shared);
                let rstop = Arc::clone(&stop);
                s.spawn(move || {
                    while !rstop.load(std::sync::atomic::Ordering::Acquire) {
                        let snap = r.snapshot();
                        let gens: std::collections::BTreeSet<Option<String>> = snap
                            .iter()
                            .map(|e| e.get_str("gen").map(str::to_owned))
                            .collect();
                        assert!(gens.len() <= 1, "torn snapshot mixed generations: {gens:?}");
                    }
                });
            }
        });
    }
}
