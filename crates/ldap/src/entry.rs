//! Directory entries: typed attribute/value sets named by DNs (Figure 3).
//!
//! An entry is tagged with one or more object classes and carries bindings
//! of values to named attributes. Attribute names are case-insensitive;
//! values are multi-valued ordered lists of strings with typed accessors
//! (integers and floats are stored in their canonical string form, as in
//! LDAP).

use crate::dn::Dn;
use crate::error::{LdapError, Result};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Reserved attribute name carrying the entry's object classes.
pub const OBJECT_CLASS: &str = "objectclass";

/// A single attribute value. LDAP values are strings; typed views are
/// provided for the numeric comparisons used by search filters.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AttrValue(String);

impl AttrValue {
    /// Wrap a string value.
    pub fn new(s: impl Into<String>) -> AttrValue {
        AttrValue(s.into())
    }

    /// The raw string form.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Parse as an integer, if the value is a canonical integer.
    pub fn as_i64(&self) -> Option<i64> {
        self.0.trim().parse().ok()
    }

    /// Parse as a float, if the value is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        self.0.trim().parse().ok()
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for AttrValue {
    fn from(s: &str) -> AttrValue {
        AttrValue(s.to_owned())
    }
}

impl From<String> for AttrValue {
    fn from(s: String) -> AttrValue {
        AttrValue(s)
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> AttrValue {
        AttrValue(v.to_string())
    }
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> AttrValue {
        AttrValue(v.to_string())
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> AttrValue {
        AttrValue(format!("{v}"))
    }
}

/// A directory entry: a DN plus a multi-valued attribute map.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Entry {
    dn: Dn,
    /// Attribute name (lowercased) -> values, in insertion order per name.
    attrs: BTreeMap<String, Vec<AttrValue>>,
}

impl Entry {
    /// Create an empty entry at `dn`.
    pub fn new(dn: Dn) -> Entry {
        Entry {
            dn,
            attrs: BTreeMap::new(),
        }
    }

    /// Parse the DN and create an empty entry; convenience for literals.
    pub fn at(dn: &str) -> Result<Entry> {
        Ok(Entry::new(Dn::parse(dn)?))
    }

    /// The entry's distinguished name.
    pub fn dn(&self) -> &Dn {
        &self.dn
    }

    /// Rename the entry (used when directories re-home entries into their
    /// own namespace, Figure 5).
    pub fn set_dn(&mut self, dn: Dn) {
        self.dn = dn;
    }

    /// Add one value to an attribute (appending to any existing values,
    /// deduplicating exact repeats).
    pub fn add(&mut self, attr: &str, value: impl Into<AttrValue>) -> &mut Entry {
        let v = value.into();
        let slot = self.attrs.entry(attr.to_ascii_lowercase()).or_default();
        if !slot.contains(&v) {
            slot.push(v);
        }
        self
    }

    /// Replace all values of an attribute.
    pub fn put(&mut self, attr: &str, values: Vec<AttrValue>) -> &mut Entry {
        self.attrs.insert(attr.to_ascii_lowercase(), values);
        self
    }

    /// Remove an attribute entirely. Returns the removed values, if any.
    pub fn remove(&mut self, attr: &str) -> Option<Vec<AttrValue>> {
        self.attrs.remove(&attr.to_ascii_lowercase())
    }

    /// Builder-style `add` for fluent construction.
    pub fn with(mut self, attr: &str, value: impl Into<AttrValue>) -> Entry {
        self.add(attr, value);
        self
    }

    /// Tag the entry with an object class (builder style).
    pub fn with_class(self, class: &str) -> Entry {
        self.with(OBJECT_CLASS, class)
    }

    /// All values bound to `attr` (empty slice if absent).
    pub fn get(&self, attr: &str) -> &[AttrValue] {
        // Stored names are lowercase; only allocate the folded copy when
        // the caller's spelling actually needs folding — `get` sits on
        // the filter-evaluation and index-build hot paths.
        let vals = if attr.bytes().any(|b| b.is_ascii_uppercase()) {
            self.attrs.get(&attr.to_ascii_lowercase())
        } else {
            self.attrs.get(attr)
        };
        vals.map(Vec::as_slice).unwrap_or(&[])
    }

    /// First value of `attr` as a string, if present.
    pub fn get_str(&self, attr: &str) -> Option<&str> {
        self.get(attr).first().map(AttrValue::as_str)
    }

    /// First value of `attr` parsed as an integer, if present and numeric.
    pub fn get_i64(&self, attr: &str) -> Option<i64> {
        self.get(attr).first().and_then(AttrValue::as_i64)
    }

    /// First value of `attr` parsed as a float, if present and numeric.
    pub fn get_f64(&self, attr: &str) -> Option<f64> {
        self.get(attr).first().and_then(AttrValue::as_f64)
    }

    /// True if the attribute has at least one value.
    pub fn has(&self, attr: &str) -> bool {
        !self.get(attr).is_empty()
    }

    /// The entry's object classes (lowercase comparison is the caller's
    /// concern; MDS conventionally uses lowercase class names).
    pub fn object_classes(&self) -> impl Iterator<Item = &str> {
        self.get(OBJECT_CLASS).iter().map(AttrValue::as_str)
    }

    /// True if tagged with `class` (case-insensitive).
    pub fn has_class(&self, class: &str) -> bool {
        self.object_classes().any(|c| c.eq_ignore_ascii_case(class))
    }

    /// Iterate `(attribute name, values)` pairs in sorted name order.
    pub fn attrs(&self) -> impl Iterator<Item = (&str, &[AttrValue])> {
        self.attrs.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// Number of distinct attribute names.
    pub fn attr_count(&self) -> usize {
        self.attrs.len()
    }

    /// Project the entry onto a subset of attributes, as GRIP does when a
    /// query requests specific fields ("a subset of attributes associated
    /// with an entity can be retrieved", §4.1). An empty selection returns
    /// the entry unchanged (all attributes).
    pub fn project(&self, selection: &[String]) -> Entry {
        if selection.is_empty() {
            return self.clone();
        }
        let mut out = Entry::new(self.dn.clone());
        for want in selection {
            let key = want.to_ascii_lowercase();
            if let Some(values) = self.attrs.get(&key) {
                out.attrs.insert(key, values.clone());
            }
        }
        out
    }

    /// Merge another entry's attributes into this one (multi-valued union).
    /// Used by GRIS when several providers contribute to one entity.
    pub fn merge_from(&mut self, other: &Entry) {
        for (name, values) in other.attrs() {
            for v in values {
                self.add(name, v.clone());
            }
        }
    }

    /// Validate that the DN's own RDN is consistent with the attributes:
    /// LDAP requires the naming attribute to appear in the entry. Missing
    /// naming attributes are added rather than rejected (MDS providers
    /// generate entries programmatically).
    pub fn normalize_naming_attr(&mut self) {
        if let Some(rdn) = self.dn.rdn().cloned() {
            let present = self
                .get(rdn.attr())
                .iter()
                .any(|v| v.as_str() == rdn.value());
            if !present {
                self.add(rdn.attr(), rdn.value());
            }
        }
    }

    /// Error helper: schema violation rooted at this entry.
    pub fn schema_err(&self, msg: impl fmt::Display) -> LdapError {
        LdapError::Schema(format!("{}: {msg}", self.dn))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host_entry() -> Entry {
        Entry::at("hn=hostX")
            .unwrap()
            .with_class("computer")
            .with("system", "mips irix")
            .with("cpucount", 4i64)
            .with("load5", 3.2f64)
    }

    #[test]
    fn attribute_names_case_insensitive() {
        let e = host_entry();
        assert_eq!(e.get_str("SYSTEM"), Some("mips irix"));
        assert_eq!(e.get_str("System"), Some("mips irix"));
    }

    #[test]
    fn typed_accessors() {
        let e = host_entry();
        assert_eq!(e.get_i64("cpucount"), Some(4));
        assert_eq!(e.get_f64("load5"), Some(3.2));
        assert_eq!(e.get_i64("system"), None);
        assert_eq!(e.get_f64("cpucount"), Some(4.0));
    }

    #[test]
    fn object_class_check() {
        let e = host_entry();
        assert!(e.has_class("computer"));
        assert!(e.has_class("Computer"));
        assert!(!e.has_class("storage"));
    }

    #[test]
    fn multi_valued_add_dedups() {
        let mut e = Entry::at("hn=h").unwrap();
        e.add("member", "a").add("member", "b").add("member", "a");
        assert_eq!(e.get("member").len(), 2);
    }

    #[test]
    fn projection_selects_subset() {
        let e = host_entry();
        let p = e.project(&["system".into(), "missing".into()]);
        assert_eq!(p.attr_count(), 1);
        assert_eq!(p.get_str("system"), Some("mips irix"));
        assert_eq!(p.dn(), e.dn());
        // Empty selection means all attributes.
        assert_eq!(e.project(&[]), e);
    }

    #[test]
    fn merge_unions_values() {
        let mut a = Entry::at("hn=h").unwrap().with("x", "1");
        let b = Entry::at("hn=h").unwrap().with("x", "2").with("y", "3");
        a.merge_from(&b);
        assert_eq!(a.get("x").len(), 2);
        assert_eq!(a.get_str("y"), Some("3"));
    }

    #[test]
    fn normalize_adds_naming_attr() {
        let mut e = Entry::at("hn=hostX").unwrap();
        assert!(!e.has("hn"));
        e.normalize_naming_attr();
        assert_eq!(e.get_str("hn"), Some("hostX"));
        // Idempotent.
        e.normalize_naming_attr();
        assert_eq!(e.get("hn").len(), 1);
    }

    #[test]
    fn put_and_remove() {
        let mut e = host_entry();
        e.put("system", vec!["linux".into()]);
        assert_eq!(e.get_str("system"), Some("linux"));
        assert_eq!(e.get("system").len(), 1);
        let removed = e.remove("system").unwrap();
        assert_eq!(removed.len(), 1);
        assert!(!e.has("system"));
        assert!(e.remove("system").is_none());
    }
}
