//! LDAP URLs: `ldap://host:port/dn`, plus the transport-addressed
//! `tcp://host:port/dn` form.
//!
//! The paper uses LDAP URLs in two roles: as the *globally unique name* of
//! information ("combination of name of information within the scope of the
//! provider and the name of the provider", §4.1), and as the referral
//! target a GIIS returns when it may not cache restricted data (§10.4).
//! GRRP messages also carry "a URL to which GRIP messages can be directed"
//! (§4.3).
//!
//! The `tcp://` scheme names an endpoint reachable over a real socket:
//! `host:port` is a dialable TCP address (the live runtime's transport
//! layer serves GRIP/GRRP frames there), where an `ldap://` URL is a
//! logical name routed by whatever substrate hosts the service (the
//! simulator's name service or the live runtime's in-process router).

use crate::dn::Dn;
use crate::error::{LdapError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Default LDAP port, used when a URL omits one.
pub const DEFAULT_PORT: u16 = 389;

/// URL scheme: which substrate the endpoint is addressed on.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub enum UrlScheme {
    /// Logical service name (`ldap://`): routed in-process or in-sim.
    #[default]
    Ldap,
    /// Socket address (`tcp://`): `host:port` is dialed over real TCP.
    Tcp,
}

impl UrlScheme {
    /// The scheme prefix including `://`.
    pub fn prefix(self) -> &'static str {
        match self {
            UrlScheme::Ldap => "ldap://",
            UrlScheme::Tcp => "tcp://",
        }
    }
}

/// A parsed `ldap://host:port/dn` (or `tcp://host:port/dn`) URL.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LdapUrl {
    /// Addressing scheme (`ldap://` logical name vs `tcp://` socket).
    pub scheme: UrlScheme,
    /// Host name of the serving provider or directory.
    pub host: String,
    /// TCP port (conceptually for `ldap://`; a real dialable port for
    /// `tcp://`).
    pub port: u16,
    /// Base DN within the server's namespace.
    pub dn: Dn,
}

impl LdapUrl {
    /// Construct a URL.
    pub fn new(host: impl Into<String>, port: u16, dn: Dn) -> LdapUrl {
        LdapUrl {
            scheme: UrlScheme::Ldap,
            host: host.into(),
            port,
            dn,
        }
    }

    /// Construct a URL for the server root on the default port.
    pub fn server(host: impl Into<String>) -> LdapUrl {
        LdapUrl::new(host, DEFAULT_PORT, Dn::root())
    }

    /// Construct a `tcp://host:port` endpoint URL (server root).
    pub fn tcp(host: impl Into<String>, port: u16) -> LdapUrl {
        LdapUrl {
            scheme: UrlScheme::Tcp,
            host: host.into(),
            port,
            dn: Dn::root(),
        }
    }

    /// True when this URL names a dialable TCP endpoint.
    pub fn is_tcp(&self) -> bool {
        self.scheme == UrlScheme::Tcp
    }

    /// The `host:port` authority — what a TCP transport dials.
    pub fn authority(&self) -> String {
        format!("{}:{}", self.host, self.port)
    }

    /// Parse from string form.
    pub fn parse(s: &str) -> Result<LdapUrl> {
        let (scheme, rest) = if let Some(rest) = s.strip_prefix("ldap://") {
            (UrlScheme::Ldap, rest)
        } else if let Some(rest) = s.strip_prefix("tcp://") {
            (UrlScheme::Tcp, rest)
        } else {
            return Err(LdapError::InvalidUrl(format!(
                "missing ldap:// or tcp:// scheme in {s:?}"
            )));
        };
        let (authority, path) = match rest.find('/') {
            Some(idx) => (&rest[..idx], &rest[idx + 1..]),
            None => (rest, ""),
        };
        if authority.is_empty() {
            return Err(LdapError::InvalidUrl(format!("empty host in {s:?}")));
        }
        let (host, port) = match authority.rsplit_once(':') {
            Some((h, p)) => {
                let port: u16 = p
                    .parse()
                    .map_err(|_| LdapError::InvalidUrl(format!("bad port in {s:?}")))?;
                (h, port)
            }
            None => (authority, DEFAULT_PORT),
        };
        if host.is_empty() {
            return Err(LdapError::InvalidUrl(format!("empty host in {s:?}")));
        }
        let dn = Dn::parse(&path.replace("%20", " "))?;
        Ok(LdapUrl {
            scheme,
            host: host.to_owned(),
            port,
            dn,
        })
    }

    /// The globally unique name for `local_dn` served by this endpoint:
    /// same scheme/host/port, with the DN replaced.
    pub fn naming(&self, dn: Dn) -> LdapUrl {
        LdapUrl {
            scheme: self.scheme,
            host: self.host.clone(),
            port: self.port,
            dn,
        }
    }
}

impl fmt::Display for LdapUrl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}:{}", self.scheme.prefix(), self.host, self.port)?;
        if !self.dn.is_root() {
            write!(f, "/{}", self.dn.to_string().replace(' ', "%20"))?;
        }
        Ok(())
    }
}

impl FromStr for LdapUrl {
    type Err = LdapError;
    fn from_str(s: &str) -> Result<LdapUrl> {
        LdapUrl::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_form() {
        let u = LdapUrl::parse("ldap://giis.vo-a.org:2135/hn=hostX,%20o=O1").unwrap();
        assert_eq!(u.scheme, UrlScheme::Ldap);
        assert_eq!(u.host, "giis.vo-a.org");
        assert_eq!(u.port, 2135);
        assert_eq!(u.dn, Dn::parse("hn=hostX, o=O1").unwrap());
    }

    #[test]
    fn default_port_and_root_dn() {
        let u = LdapUrl::parse("ldap://gris.site.edu").unwrap();
        assert_eq!(u.port, DEFAULT_PORT);
        assert!(u.dn.is_root());
        let u2 = LdapUrl::parse("ldap://gris.site.edu/").unwrap();
        assert_eq!(u, u2);
    }

    #[test]
    fn display_roundtrip() {
        for s in [
            "ldap://a.example:389",
            "ldap://a.example:2135/hn=h",
            "ldap://b:1/perf=load5,%20hn=h,%20o=O1",
            "tcp://127.0.0.1:5389",
            "tcp://127.0.0.1:5389/ou=site0,%20o=fleet",
        ] {
            let u = LdapUrl::parse(s).unwrap();
            assert_eq!(LdapUrl::parse(&u.to_string()).unwrap(), u);
        }
    }

    #[test]
    fn tcp_scheme_parses_and_displays() {
        let u = LdapUrl::parse("tcp://127.0.0.1:5389").unwrap();
        assert!(u.is_tcp());
        assert_eq!(u.authority(), "127.0.0.1:5389");
        assert_eq!(u.to_string(), "tcp://127.0.0.1:5389");
        assert_eq!(LdapUrl::tcp("127.0.0.1", 5389), u);
        // Distinct from the ldap:// URL with the same authority.
        assert_ne!(u, LdapUrl::new("127.0.0.1", 5389, Dn::root()));
    }

    #[test]
    fn rejects_malformed() {
        assert!(LdapUrl::parse("http://x").is_err());
        assert!(LdapUrl::parse("ldap://").is_err());
        assert!(LdapUrl::parse("tcp://").is_err());
        assert!(LdapUrl::parse("ldap://host:notaport/").is_err());
    }

    #[test]
    fn naming_combines_provider_and_local_name() {
        let server = LdapUrl::server("gris.site.edu");
        let name = server.naming(Dn::parse("perf=load5, hn=hostX").unwrap());
        assert_eq!(
            name.to_string(),
            "ldap://gris.site.edu:389/perf=load5,%20hn=hostX"
        );
        let tcp = LdapUrl::tcp("10.0.0.1", 5389).naming(Dn::parse("hn=h").unwrap());
        assert_eq!(tcp.to_string(), "tcp://10.0.0.1:5389/hn=h");
    }
}
