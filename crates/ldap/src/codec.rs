//! Binary wire codec for LDAP-model values.
//!
//! MDS-2 carried GRIP/GRRP over the LDAP v3 BER encoding; we implement a
//! simplified length-prefixed encoding with the same role: a compact,
//! self-delimiting representation of DNs, entries, filters and the protocol
//! messages built on them (`gis-proto` composes these primitives into full
//! GRIP/GRRP frames). Integers use LEB128 varints; strings and sequences
//! are length-prefixed.

use crate::dn::Dn;
use crate::entry::{AttrValue, Entry};
use crate::error::{LdapError, Result};
use crate::filter::Filter;
use crate::url::LdapUrl;
use bytes::{BufMut, BytesMut};

/// Maximum nesting/sequence length accepted by the decoder; a defensive
/// limit against corrupted frames.
const MAX_SEQ: u64 = 1 << 24;

/// Incremental decoder over a byte slice.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Start reading from the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> WireReader<'a> {
        WireReader { buf, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when the whole buffer has been consumed.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    fn err(&self, msg: &str) -> LdapError {
        LdapError::Codec(format!("{msg} at offset {}", self.pos))
    }

    /// Read one raw byte.
    pub fn read_u8(&mut self) -> Result<u8> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| self.err("unexpected end of frame"))?;
        self.pos += 1;
        Ok(b)
    }

    /// Read a LEB128 varint.
    pub fn read_varint(&mut self) -> Result<u64> {
        let mut out: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = self.read_u8()?;
            if shift >= 64 {
                return Err(self.err("varint overflow"));
            }
            out |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(out);
            }
            shift += 7;
        }
    }

    /// Read a length-prefixed byte slice.
    pub fn read_bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.read_varint()?;
        if len > MAX_SEQ {
            return Err(self.err("oversized byte field"));
        }
        let len = len as usize;
        if self.remaining() < len {
            return Err(self.err("byte field overruns frame"));
        }
        let out = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(out)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn read_str(&mut self) -> Result<String> {
        let bytes = self.read_bytes()?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| LdapError::Codec("invalid UTF-8 in string field".into()))
    }

    /// Read a sequence length, bounds-checked.
    pub fn read_len(&mut self) -> Result<usize> {
        let n = self.read_varint()?;
        if n > MAX_SEQ {
            return Err(self.err("oversized sequence"));
        }
        Ok(n as usize)
    }
}

/// Append a LEB128 varint.
pub fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Append a length-prefixed byte slice.
pub fn put_bytes(buf: &mut BytesMut, bytes: &[u8]) {
    put_varint(buf, bytes.len() as u64);
    buf.put_slice(bytes);
}

/// Append a length-prefixed string.
pub fn put_str(buf: &mut BytesMut, s: &str) {
    put_bytes(buf, s.as_bytes());
}

/// A value with a binary wire form.
pub trait Wire: Sized {
    /// Append the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);
    /// Decode a value from the reader.
    fn decode(r: &mut WireReader<'_>) -> Result<Self>;

    /// Encode into a fresh buffer.
    fn to_wire(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        self.encode(&mut buf);
        buf.to_vec()
    }

    /// Decode from a complete frame, requiring full consumption.
    fn from_wire(bytes: &[u8]) -> Result<Self> {
        let mut r = WireReader::new(bytes);
        let v = Self::decode(&mut r)?;
        if !r.is_done() {
            return Err(LdapError::Codec(format!(
                "{} trailing bytes after value",
                r.remaining()
            )));
        }
        Ok(v)
    }
}

impl Wire for u64 {
    fn encode(&self, buf: &mut BytesMut) {
        put_varint(buf, *self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<u64> {
        r.read_varint()
    }
}

impl Wire for u32 {
    fn encode(&self, buf: &mut BytesMut) {
        put_varint(buf, u64::from(*self));
    }
    fn decode(r: &mut WireReader<'_>) -> Result<u32> {
        u32::try_from(r.read_varint()?).map_err(|_| LdapError::Codec("u32 overflow".into()))
    }
}

impl Wire for u16 {
    fn encode(&self, buf: &mut BytesMut) {
        put_varint(buf, u64::from(*self));
    }
    fn decode(r: &mut WireReader<'_>) -> Result<u16> {
        u16::try_from(r.read_varint()?).map_err(|_| LdapError::Codec("u16 overflow".into()))
    }
}

impl Wire for bool {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(u8::from(*self));
    }
    fn decode(r: &mut WireReader<'_>) -> Result<bool> {
        match r.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(LdapError::Codec(format!("invalid bool byte {b}"))),
        }
    }
}

impl Wire for String {
    fn encode(&self, buf: &mut BytesMut) {
        put_str(buf, self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<String> {
        r.read_str()
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        put_varint(buf, self.len() as u64);
        for item in self {
            item.encode(buf);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Vec<T>> {
        let n = r.read_len()?;
        let mut out = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Option<T>> {
        match r.read_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            b => Err(LdapError::Codec(format!("invalid option tag {b}"))),
        }
    }
}

impl Wire for Dn {
    fn encode(&self, buf: &mut BytesMut) {
        put_str(buf, &self.to_string());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Dn> {
        Dn::parse(&r.read_str()?)
    }
}

impl Wire for Filter {
    // Filters travel in their RFC 2254 string form: the parser/printer
    // round-trips exactly (property-tested), and the text form doubles as a
    // debugging aid in traces.
    fn encode(&self, buf: &mut BytesMut) {
        put_str(buf, &self.to_string());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Filter> {
        Filter::parse(&r.read_str()?)
    }
}

impl Wire for AttrValue {
    fn encode(&self, buf: &mut BytesMut) {
        put_str(buf, self.as_str());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<AttrValue> {
        Ok(AttrValue::new(r.read_str()?))
    }
}

impl Wire for Entry {
    fn encode(&self, buf: &mut BytesMut) {
        self.dn().encode(buf);
        put_varint(buf, self.attr_count() as u64);
        for (name, values) in self.attrs() {
            put_str(buf, name);
            put_varint(buf, values.len() as u64);
            for v in values {
                v.encode(buf);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Entry> {
        let dn = Dn::decode(r)?;
        let mut entry = Entry::new(dn);
        let attrs = r.read_len()?;
        for _ in 0..attrs {
            let name = r.read_str()?;
            let count = r.read_len()?;
            let mut values = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                values.push(AttrValue::decode(r)?);
            }
            entry.put(&name, values);
        }
        Ok(entry)
    }
}

impl Wire for LdapUrl {
    fn encode(&self, buf: &mut BytesMut) {
        put_str(buf, &self.to_string());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<LdapUrl> {
        LdapUrl::parse(&r.read_str()?)
    }
}

impl Wire for crate::dit::Scope {
    fn encode(&self, buf: &mut BytesMut) {
        use crate::dit::Scope;
        buf.put_u8(match self {
            Scope::Base => 0,
            Scope::One => 1,
            Scope::Sub => 2,
        });
    }
    fn decode(r: &mut WireReader<'_>) -> Result<crate::dit::Scope> {
        use crate::dit::Scope;
        match r.read_u8()? {
            0 => Ok(Scope::Base),
            1 => Ok(Scope::One),
            2 => Ok(Scope::Sub),
            b => Err(LdapError::Codec(format!("invalid scope tag {b}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dit::Scope;

    #[test]
    fn varint_roundtrip_extremes() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            let mut r = WireReader::new(&buf);
            assert_eq!(r.read_varint().unwrap(), v);
            assert!(r.is_done());
        }
    }

    #[test]
    fn entry_roundtrip() {
        let e = Entry::at("perf=load5, hn=hostX")
            .unwrap()
            .with_class("perf")
            .with_class("loadaverage")
            .with("period", 10i64)
            .with("load5", 3.2f64);
        let bytes = e.to_wire();
        assert_eq!(Entry::from_wire(&bytes).unwrap(), e);
    }

    #[test]
    fn filter_roundtrip() {
        let f = Filter::parse("(&(objectclass=computer)(load5<=1.0))").unwrap();
        assert_eq!(Filter::from_wire(&f.to_wire()).unwrap(), f);
    }

    #[test]
    fn option_and_vec_roundtrip() {
        let v: Vec<Option<String>> = vec![Some("a".into()), None, Some("".into())];
        assert_eq!(Vec::<Option<String>>::from_wire(&v.to_wire()).unwrap(), v);
    }

    #[test]
    fn scope_roundtrip() {
        for s in [Scope::Base, Scope::One, Scope::Sub] {
            assert_eq!(Scope::from_wire(&s.to_wire()).unwrap(), s);
        }
    }

    #[test]
    fn url_roundtrip() {
        let u = LdapUrl::parse("ldap://gris.site.edu:2135/hn=hostX").unwrap();
        assert_eq!(LdapUrl::from_wire(&u.to_wire()).unwrap(), u);
    }

    #[test]
    fn truncated_frames_rejected() {
        let e = Entry::at("hn=h").unwrap().with("x", "y");
        let bytes = e.to_wire();
        for cut in 0..bytes.len() {
            assert!(
                Entry::from_wire(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = 42u64.to_wire();
        bytes.push(0);
        assert!(u64::from_wire(&bytes).is_err());
    }

    #[test]
    fn invalid_bool_and_option_tags() {
        assert!(bool::from_wire(&[7]).is_err());
        assert!(Option::<u64>::from_wire(&[9]).is_err());
    }

    #[test]
    fn oversized_sequence_rejected() {
        let mut buf = BytesMut::new();
        put_varint(&mut buf, u64::MAX);
        let mut r = WireReader::new(&buf);
        assert!(r.read_len().is_err());
    }
}
