//! Error type shared across the LDAP substrate.

use std::fmt;

/// Errors produced while parsing or manipulating LDAP data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LdapError {
    /// A distinguished name could not be parsed.
    InvalidDn(String),
    /// A search filter could not be parsed.
    InvalidFilter(String),
    /// An LDIF document could not be parsed.
    InvalidLdif(String),
    /// An LDAP URL could not be parsed.
    InvalidUrl(String),
    /// A wire message could not be decoded.
    Codec(String),
    /// An entry failed schema validation.
    Schema(String),
    /// The requested entry does not exist in the DIT.
    NoSuchEntry(String),
    /// The entry already exists in the DIT.
    EntryExists(String),
}

impl fmt::Display for LdapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LdapError::InvalidDn(s) => write!(f, "invalid DN: {s}"),
            LdapError::InvalidFilter(s) => write!(f, "invalid filter: {s}"),
            LdapError::InvalidLdif(s) => write!(f, "invalid LDIF: {s}"),
            LdapError::InvalidUrl(s) => write!(f, "invalid LDAP URL: {s}"),
            LdapError::Codec(s) => write!(f, "codec error: {s}"),
            LdapError::Schema(s) => write!(f, "schema violation: {s}"),
            LdapError::NoSuchEntry(s) => write!(f, "no such entry: {s}"),
            LdapError::EntryExists(s) => write!(f, "entry already exists: {s}"),
        }
    }
}

impl std::error::Error for LdapError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, LdapError>;
