//! Snapshot lineage: versioned change tracking over a [`Dit`] snapshot
//! sequence, the substrate of the federation bulk-delta protocol.
//!
//! A GIIS that serves sync pulls observes every snapshot it publishes;
//! the lineage diffs each against its predecessor (an `Arc` pointer
//! comparison per unchanged entry, content comparison only when the
//! handle changed) and records, per DN, the version and time of its
//! last change plus a bounded window of per-version change sets. A
//! puller presenting a cookie inside the window receives exactly the
//! DNs that changed since; an unknown or out-of-window cookie falls
//! back to a full sync.
//!
//! Served entries are *stamped* with the recorded change metadata
//! ([`SYNC_VERSION_ATTR`], [`FRESH_AT_ATTR`]), so a tree assembled from
//! any interleaving of full syncs and incremental deltas is structurally
//! identical to one assembled from a single fresh full sync — the
//! invariant the convergence oracle in `tests/federation.rs` checks.

use crate::dit::Dit;
use crate::dn::Dn;
use crate::entry::Entry;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

use gis_netsim::SimTime;

/// Attribute stamped on served entries: simulation time (microseconds)
/// of the entry's last observed change on the serving directory.
pub const FRESH_AT_ATTR: &str = "mds-fresh-at";

/// Attribute stamped on served entries: lineage version at which the
/// entry last changed. Monotone per serving directory; a balancer uses
/// it to refuse regressed reads after replica failover.
pub const SYNC_VERSION_ATTR: &str = "mds-sync-version";

/// How many change sets [`SnapshotLineage`] retains by default. A
/// puller more than this many versions behind is served a full sync.
pub const DEFAULT_WINDOW: usize = 64;

/// Per-DN change record.
#[derive(Debug, Clone, Copy)]
struct ChangeMeta {
    version: u64,
    at: SimTime,
}

/// The result of a delta computation: what to apply, in either order
/// (the key sets are disjoint).
#[derive(Debug, Clone, Default)]
pub struct DeltaSet {
    /// Entries created or modified since the cookie, stamped.
    pub upserts: Vec<Entry>,
    /// DNs deleted since the cookie.
    pub deletes: Vec<Dn>,
}

/// Versioned diff tracker over successive published snapshots.
#[derive(Debug)]
pub struct SnapshotLineage {
    /// Incarnation stamp, minted at the first observation (the time of
    /// that observation, in microseconds, never 0). Versions are only
    /// comparable within one epoch: a restarted directory rebuilds its
    /// lineage from scratch, and a cookie minted against the old
    /// incarnation could otherwise collide with a numerically equal but
    /// semantically unrelated new version — the puller would be handed
    /// an empty delta while content silently diverged.
    epoch: u64,
    version: u64,
    last: Arc<Dit>,
    /// Time of the most recent [`observe`](SnapshotLineage::observe) —
    /// the "as of" stamp a sync reply carries even when nothing changed.
    as_of: SimTime,
    /// DN key → last change. Covers exactly the keys of `last`.
    meta: BTreeMap<String, ChangeMeta>,
    /// Last `window_cap` change sets: (version, changed-or-deleted keys).
    /// Versions are contiguous; only observations that changed something
    /// mint a version.
    window: VecDeque<(u64, Vec<String>)>,
    window_cap: usize,
}

impl Default for SnapshotLineage {
    fn default() -> SnapshotLineage {
        SnapshotLineage::new(DEFAULT_WINDOW)
    }
}

impl SnapshotLineage {
    /// An empty lineage retaining up to `window_cap` change sets.
    pub fn new(window_cap: usize) -> SnapshotLineage {
        SnapshotLineage {
            epoch: 0,
            version: 0,
            last: Arc::new(Dit::new()),
            as_of: SimTime::ZERO,
            meta: BTreeMap::new(),
            window: VecDeque::new(),
            window_cap: window_cap.max(1),
        }
    }

    /// Current version. 0 until the first change is observed.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Incarnation stamp: 0 until the first observation, then the time
    /// of that observation in microseconds (floored to 1). A cookie is
    /// only valid against the epoch it was minted in.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Time of the most recent observation.
    pub fn as_of(&self) -> SimTime {
        self.as_of
    }

    /// Diff `snap` against the previously observed snapshot and absorb
    /// it. Returns `true` when anything changed (a new version was
    /// minted). Unchanged entries are detected by `Arc` pointer
    /// equality first, content equality second — a republished snapshot
    /// carrying identical data (a soft-state refresh) mints nothing.
    pub fn observe(&mut self, snap: Arc<Dit>, now: SimTime) -> bool {
        if self.epoch == 0 {
            self.epoch = now.micros().max(1);
        }
        self.as_of = now;
        if Arc::ptr_eq(&self.last, &snap) {
            return false;
        }
        let mut touched: Vec<String> = Vec::new();
        let mut deleted: Vec<String> = Vec::new();
        {
            let mut old = self.last.iter_shared().peekable();
            let mut new = snap.iter_shared().peekable();
            loop {
                match (old.peek(), new.peek()) {
                    (Some(&(ok, oe)), Some(&(nk, ne))) => {
                        if ok == nk {
                            if !Arc::ptr_eq(oe, ne) && **oe != **ne {
                                touched.push(nk.to_owned());
                            }
                            old.next();
                            new.next();
                        } else if ok < nk {
                            deleted.push(ok.to_owned());
                            old.next();
                        } else {
                            touched.push(nk.to_owned());
                            new.next();
                        }
                    }
                    (Some(&(ok, _)), None) => {
                        deleted.push(ok.to_owned());
                        old.next();
                    }
                    (None, Some(&(nk, _))) => {
                        touched.push(nk.to_owned());
                        new.next();
                    }
                    (None, None) => break,
                }
            }
        }
        if touched.is_empty() && deleted.is_empty() {
            self.last = snap;
            return false;
        }
        self.version += 1;
        for k in &touched {
            self.meta.insert(
                k.clone(),
                ChangeMeta {
                    version: self.version,
                    at: now,
                },
            );
        }
        for k in &deleted {
            self.meta.remove(k);
        }
        let mut set = touched;
        set.append(&mut deleted);
        self.window.push_back((self.version, set));
        while self.window.len() > self.window_cap {
            self.window.pop_front();
        }
        self.last = snap;
        true
    }

    /// True when `cookie` can be answered incrementally: every version
    /// in `(cookie, version]` is still in the window.
    fn covers(&self, cookie: u64) -> bool {
        if cookie > self.version {
            return false; // a cookie from a different lineage (restart)
        }
        if cookie == self.version {
            return true;
        }
        match self.window.front() {
            Some(&(oldest, _)) => cookie + 1 >= oldest,
            None => false,
        }
    }

    /// Stamp `entry` with its recorded change metadata. Entries present
    /// before the lineage started observing carry version 0.
    fn stamped(&self, key: &str, entry: &Entry) -> Entry {
        let m = self.meta.get(key).copied().unwrap_or(ChangeMeta {
            version: 0,
            at: self.as_of,
        });
        let mut e = entry.clone();
        e.put(SYNC_VERSION_ATTR, vec![(m.version as i64).into()]);
        e.put(FRESH_AT_ATTR, vec![(m.at.micros() as i64).into()]);
        e
    }

    /// True when `key` falls under one of `subtrees` (empty = all, the
    /// unsharded case).
    fn in_shards(dn: &Dn, subtrees: &[Dn]) -> bool {
        subtrees.is_empty() || subtrees.iter().any(|s| dn.is_under(s))
    }

    /// Every entry of the last observed snapshot under `subtrees`,
    /// stamped — the full-sync payload.
    pub fn full(&self, subtrees: &[Dn]) -> Vec<Entry> {
        self.last
            .iter_shared()
            .filter(|(_, e)| Self::in_shards(e.dn(), subtrees))
            .map(|(k, e)| self.stamped(k, e))
            .collect()
    }

    /// The changes since `cookie`, restricted to `subtrees`, or `None`
    /// when the cookie is unknown/out of window and a full sync is
    /// required. `Some` with empty sets means "already converged".
    pub fn delta_since(&self, cookie: u64, subtrees: &[Dn]) -> Option<DeltaSet> {
        if !self.covers(cookie) {
            return None;
        }
        let mut keys: BTreeSet<&str> = BTreeSet::new();
        for (v, set) in &self.window {
            if *v > cookie {
                keys.extend(set.iter().map(String::as_str));
            }
        }
        let mut out = DeltaSet::default();
        for k in keys {
            match self.last.get_shared(k) {
                Some(e) if Self::in_shards(e.dn(), subtrees) => {
                    out.upserts.push(self.stamped(k, e));
                }
                Some(_) => {}
                None => {
                    if let Ok(dn) = Dn::parse(k) {
                        if Self::in_shards(&dn, subtrees) {
                            out.deletes.push(dn);
                        }
                    }
                }
            }
        }
        Some(out)
    }
}

/// Read back the [`FRESH_AT_ATTR`] stamp, if present.
pub fn fresh_at(entry: &Entry) -> Option<SimTime> {
    entry.get_i64(FRESH_AT_ATTR).map(|us| SimTime(us as u64))
}

/// Read back the [`SYNC_VERSION_ATTR`] stamp, if present.
pub fn sync_version(entry: &Entry) -> Option<u64> {
    entry.get_i64(SYNC_VERSION_ATTR).map(|v| v as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared::SharedDit;

    fn t(us: u64) -> SimTime {
        SimTime(us)
    }

    fn entry(dn: &str, sys: &str) -> Entry {
        Entry::at(dn)
            .unwrap()
            .with_class("computer")
            .with("system", sys)
    }

    #[test]
    fn observe_diffs_and_versions() {
        let shared = SharedDit::new();
        let mut lin = SnapshotLineage::new(8);
        assert!(!lin.observe(shared.snapshot(), t(1)), "empty → empty");
        shared.mutate(|d| {
            d.upsert(entry("hn=a", "linux"));
            d.upsert(entry("hn=b", "irix"));
        });
        assert!(lin.observe(shared.snapshot(), t(2)));
        assert_eq!(lin.version(), 1);
        // Republish identical content: refresh must not mint a version.
        shared.mutate(|d| d.upsert(entry("hn=a", "linux")));
        assert!(!lin.observe(shared.snapshot(), t(3)));
        assert_eq!(lin.version(), 1);
        // Real change + delete.
        shared.mutate(|d| {
            d.upsert(entry("hn=a", "aix"));
            d.delete(&Dn::parse("hn=b").unwrap());
        });
        assert!(lin.observe(shared.snapshot(), t(4)));
        assert_eq!(lin.version(), 2);

        let d = lin.delta_since(1, &[]).unwrap();
        assert_eq!(d.upserts.len(), 1);
        assert_eq!(d.upserts[0].dn().to_string(), "hn=a");
        assert_eq!(sync_version(&d.upserts[0]), Some(2));
        assert_eq!(fresh_at(&d.upserts[0]), Some(t(4)));
        assert_eq!(d.deletes.len(), 1);
        assert_eq!(d.deletes[0].to_string(), "hn=b");
        // Converged cookie: empty delta, not a full sync.
        let d = lin.delta_since(2, &[]).unwrap();
        assert!(d.upserts.is_empty() && d.deletes.is_empty());
    }

    #[test]
    fn out_of_window_cookie_forces_full_sync() {
        let shared = SharedDit::new();
        let mut lin = SnapshotLineage::new(2);
        for i in 0..5u64 {
            shared.mutate(|d| d.upsert(entry("hn=a", &format!("v{i}"))));
            assert!(lin.observe(shared.snapshot(), t(i + 1)));
        }
        assert_eq!(lin.version(), 5);
        assert!(lin.delta_since(2, &[]).is_none(), "window holds 4..=5");
        assert!(lin.delta_since(3, &[]).is_some());
        assert!(lin.delta_since(9, &[]).is_none(), "future cookie = restart");
        let full = lin.full(&[]);
        assert_eq!(full.len(), 1);
        assert_eq!(sync_version(&full[0]), Some(5));
    }

    #[test]
    fn shard_subtrees_scope_both_payloads() {
        let shared = SharedDit::new();
        let mut lin = SnapshotLineage::new(8);
        shared.mutate(|d| {
            d.upsert(entry("hn=a, o=left", "linux"));
            d.upsert(entry("hn=b, o=right", "irix"));
        });
        lin.observe(shared.snapshot(), t(1));
        let left = vec![Dn::parse("o=left").unwrap()];
        assert_eq!(lin.full(&left).len(), 1);
        shared.mutate(|d| {
            d.delete(&Dn::parse("hn=a, o=left").unwrap());
            d.delete(&Dn::parse("hn=b, o=right").unwrap());
        });
        lin.observe(shared.snapshot(), t(2));
        let d = lin.delta_since(1, &left).unwrap();
        assert!(d.upserts.is_empty());
        assert_eq!(d.deletes.len(), 1);
        assert_eq!(d.deletes[0].to_string(), "hn=a, o=left");
    }

    #[test]
    fn incremental_application_matches_full() {
        // Apply v1→v3 deltas to a copy of the v1 full sync; the result
        // must equal the v3 full sync — the convergence invariant.
        let shared = SharedDit::new();
        let mut lin = SnapshotLineage::new(16);
        shared.mutate(|d| {
            for i in 0..10 {
                d.upsert(entry(&format!("hn=h{i}"), "linux"));
            }
        });
        lin.observe(shared.snapshot(), t(1));
        let mut mirror = Dit::bulk_load(lin.full(&[]));
        let cookie = lin.version();
        shared.mutate(|d| {
            d.upsert(entry("hn=h3", "aix"));
            d.delete(&Dn::parse("hn=h7").unwrap());
            d.upsert(entry("hn=h10", "hpux"));
        });
        lin.observe(shared.snapshot(), t(2));
        let delta = lin.delta_since(cookie, &[]).unwrap();
        for dn in &delta.deletes {
            mirror.delete(dn);
        }
        for e in delta.upserts.clone() {
            mirror.upsert(e);
        }
        let full = Dit::bulk_load(lin.full(&[]));
        assert_eq!(format!("{mirror:?}"), format!("{full:?}"));
    }
}
