//! Object-class schema: "a convenient and extensible mechanism for defining
//! information types" (§8).
//!
//! The paper argues naming/typing should be *supported but not forced*;
//! accordingly validation is opt-in, and unknown object classes are only an
//! error under [`Strictness::Strict`].

use crate::entry::Entry;
use crate::error::{LdapError, Result};
use std::collections::BTreeMap;

/// How to treat entries whose classes are not in the schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strictness {
    /// Unknown object classes are ignored (Condor-matchmaker style informal
    /// typing, §8).
    Lenient,
    /// Every object class must be defined and every required attribute
    /// present.
    Strict,
}

/// Definition of one object class.
#[derive(Debug, Clone)]
pub struct ObjectClassDef {
    /// Class name, lowercase.
    pub name: String,
    /// Superclass, if any (requirements are inherited).
    pub parent: Option<String>,
    /// Attributes that must be present.
    pub required: Vec<String>,
    /// Attributes that may be present (informational; extra attributes are
    /// always allowed, matching MDS's extensible entries).
    pub optional: Vec<String>,
}

impl ObjectClassDef {
    /// Define a class with no superclass.
    pub fn new(name: &str) -> ObjectClassDef {
        ObjectClassDef {
            name: name.to_ascii_lowercase(),
            parent: None,
            required: Vec::new(),
            optional: Vec::new(),
        }
    }

    /// Set the superclass.
    pub fn extends(mut self, parent: &str) -> ObjectClassDef {
        self.parent = Some(parent.to_ascii_lowercase());
        self
    }

    /// Add a required attribute.
    pub fn requires(mut self, attr: &str) -> ObjectClassDef {
        self.required.push(attr.to_ascii_lowercase());
        self
    }

    /// Add an optional attribute.
    pub fn allows(mut self, attr: &str) -> ObjectClassDef {
        self.optional.push(attr.to_ascii_lowercase());
        self
    }
}

/// A registry of object-class definitions; the paper's "type authority".
#[derive(Debug, Clone, Default)]
pub struct Schema {
    classes: BTreeMap<String, ObjectClassDef>,
}

impl Schema {
    /// An empty schema.
    pub fn new() -> Schema {
        Schema::default()
    }

    /// The standard MDS core schema used by the GRIS providers: the object
    /// classes appearing in Figure 3 plus the network classes served by the
    /// NWS gateway.
    pub fn mds_core() -> Schema {
        let mut s = Schema::new();
        s.define(
            ObjectClassDef::new("computer")
                .requires("hn")
                .allows("system"),
        );
        s.define(ObjectClassDef::new("service").requires("url"));
        s.define(
            ObjectClassDef::new("queue")
                .extends("service")
                .allows("dispatchtype"),
        );
        s.define(ObjectClassDef::new("perf").requires("period"));
        s.define(
            ObjectClassDef::new("loadaverage")
                .extends("perf")
                .requires("load5"),
        );
        s.define(ObjectClassDef::new("storage").requires("free"));
        s.define(
            ObjectClassDef::new("filesystem")
                .extends("storage")
                .requires("path"),
        );
        s.define(
            ObjectClassDef::new("networklink")
                .requires("src")
                .requires("dst")
                .allows("bandwidth")
                .allows("latency"),
        );
        s.define(ObjectClassDef::new("organization").requires("o"));
        s.define(ObjectClassDef::new("vo").requires("vo"));
        s
    }

    /// Register (or replace) a class definition.
    pub fn define(&mut self, def: ObjectClassDef) {
        self.classes.insert(def.name.clone(), def);
    }

    /// Look up a class definition.
    pub fn get(&self, name: &str) -> Option<&ObjectClassDef> {
        self.classes.get(&name.to_ascii_lowercase())
    }

    /// Number of defined classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True if no classes are defined.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// All attributes required by `class`, including inherited ones.
    /// Detects and truncates inheritance cycles defensively.
    pub fn required_attrs(&self, class: &str) -> Vec<String> {
        let mut out = Vec::new();
        let mut cur = Some(class.to_ascii_lowercase());
        let mut hops = 0;
        while let Some(name) = cur {
            if hops > self.classes.len() {
                break; // cycle guard
            }
            hops += 1;
            match self.classes.get(&name) {
                Some(def) => {
                    out.extend(def.required.iter().cloned());
                    cur = def.parent.clone();
                }
                None => break,
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// Validate an entry against the schema.
    pub fn validate(&self, entry: &Entry, strictness: Strictness) -> Result<()> {
        let mut any_class = false;
        for class in entry.object_classes() {
            any_class = true;
            if self.get(class).is_none() {
                match strictness {
                    Strictness::Lenient => continue,
                    Strictness::Strict => {
                        return Err(entry.schema_err(format!("unknown object class {class:?}")))
                    }
                }
            }
            for attr in self.required_attrs(class) {
                if !entry.has(&attr) {
                    return Err(
                        entry.schema_err(format!("class {class:?} requires attribute {attr:?}"))
                    );
                }
            }
        }
        if !any_class && strictness == Strictness::Strict {
            return Err(LdapError::Schema(format!(
                "{}: entry has no object class",
                entry.dn()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mds_core_validates_figure3_entries() {
        let s = Schema::mds_core();
        let host = Entry::at("hn=hostX")
            .unwrap()
            .with_class("computer")
            .with("hn", "hostX")
            .with("system", "mips irix");
        s.validate(&host, Strictness::Strict).unwrap();

        let queue = Entry::at("queue=default, hn=hostX")
            .unwrap()
            .with_class("service")
            .with_class("queue")
            .with("url", "gram://hostX/default")
            .with("dispatchtype", "immediate");
        s.validate(&queue, Strictness::Strict).unwrap();

        let load = Entry::at("perf=load5, hn=hostX")
            .unwrap()
            .with_class("perf")
            .with_class("loadaverage")
            .with("period", 10i64)
            .with("load5", 3.2f64);
        s.validate(&load, Strictness::Strict).unwrap();

        let fs = Entry::at("store=scratch, hn=hostX")
            .unwrap()
            .with_class("storage")
            .with_class("filesystem")
            .with("free", 33515i64)
            .with("path", "/disks/scratch1");
        s.validate(&fs, Strictness::Strict).unwrap();
    }

    #[test]
    fn missing_required_attr_rejected() {
        let s = Schema::mds_core();
        let bad = Entry::at("hn=hostX").unwrap().with_class("computer");
        // "hn" is auto-derivable from the RDN but this entry was built
        // without normalisation, so validation must flag it.
        assert!(s.validate(&bad, Strictness::Strict).is_err());
        assert!(s.validate(&bad, Strictness::Lenient).is_err());
    }

    #[test]
    fn inherited_requirements_enforced() {
        let s = Schema::mds_core();
        // loadaverage extends perf, so "period" is required transitively.
        let bad = Entry::at("perf=load5, hn=h")
            .unwrap()
            .with_class("loadaverage")
            .with("load5", 1.0f64);
        let err = s.validate(&bad, Strictness::Lenient).unwrap_err();
        assert!(err.to_string().contains("period"), "{err}");
    }

    #[test]
    fn unknown_class_lenient_vs_strict() {
        let s = Schema::mds_core();
        let e = Entry::at("x=y").unwrap().with_class("exotic");
        assert!(s.validate(&e, Strictness::Lenient).is_ok());
        assert!(s.validate(&e, Strictness::Strict).is_err());
    }

    #[test]
    fn classless_entry() {
        let s = Schema::mds_core();
        let e = Entry::at("x=y").unwrap();
        assert!(s.validate(&e, Strictness::Lenient).is_ok());
        assert!(s.validate(&e, Strictness::Strict).is_err());
    }

    #[test]
    fn required_attrs_includes_parents() {
        let s = Schema::mds_core();
        let req = s.required_attrs("filesystem");
        assert!(req.contains(&"free".to_string()));
        assert!(req.contains(&"path".to_string()));
    }

    #[test]
    fn inheritance_cycle_is_survived() {
        let mut s = Schema::new();
        s.define(ObjectClassDef::new("a").extends("b").requires("x"));
        s.define(ObjectClassDef::new("b").extends("a").requires("y"));
        let req = s.required_attrs("a");
        assert!(req.contains(&"x".to_string()));
        assert!(req.contains(&"y".to_string()));
    }
}
