//! Distinguished names (DNs).
//!
//! The paper adopts the LDAP data model (Figure 3): every entry is named by
//! a hierarchical distinguished name such as `perf=load5, hn=hostX, o=O1`.
//! The *leftmost* RDN is the most specific component; each suffix of the RDN
//! sequence names an ancestor. Attribute types compare case-insensitively;
//! values compare case-sensitively (MDS values like hostnames are treated
//! as exact strings).

use crate::error::{LdapError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A relative distinguished name: one `type=value` component of a DN.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Rdn {
    /// Attribute type, stored lowercase (types are case-insensitive).
    attr: String,
    /// Attribute value, stored verbatim.
    value: String,
}

impl Rdn {
    /// Build an RDN from an attribute type and value.
    ///
    /// The type is normalised to ASCII lowercase.
    pub fn new(attr: impl Into<String>, value: impl Into<String>) -> Rdn {
        Rdn {
            attr: attr.into().to_ascii_lowercase(),
            value: value.into(),
        }
    }

    /// The (lowercased) attribute type.
    pub fn attr(&self) -> &str {
        &self.attr
    }

    /// The attribute value.
    pub fn value(&self) -> &str {
        &self.value
    }

    fn parse(s: &str) -> Result<Rdn> {
        let mut parts = s.splitn(2, '=');
        let attr = parts.next().unwrap_or("").trim();
        let value = parts
            .next()
            .ok_or_else(|| LdapError::InvalidDn(format!("RDN missing '=': {s:?}")))?
            .trim();
        if attr.is_empty() {
            return Err(LdapError::InvalidDn(format!(
                "empty attribute in RDN {s:?}"
            )));
        }
        if value.is_empty() {
            return Err(LdapError::InvalidDn(format!("empty value in RDN {s:?}")));
        }
        if !attr
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(LdapError::InvalidDn(format!("bad attribute type {attr:?}")));
        }
        Ok(Rdn::new(attr, value))
    }
}

impl fmt::Display for Rdn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.attr, self.value)
    }
}

/// A distinguished name: a sequence of RDNs, most specific first.
///
/// `Dn::root()` is the empty DN naming the DIT root.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct Dn {
    rdns: Vec<Rdn>,
}

impl Dn {
    /// The empty DN (the root of the directory tree).
    pub fn root() -> Dn {
        Dn { rdns: Vec::new() }
    }

    /// Build a DN from a sequence of RDNs (most specific first).
    pub fn from_rdns(rdns: Vec<Rdn>) -> Dn {
        Dn { rdns }
    }

    /// Parse a DN from its string form, e.g. `"perf=load5, hn=hostX"`.
    ///
    /// Whitespace around separators is ignored. The empty string parses to
    /// the root DN.
    pub fn parse(s: &str) -> Result<Dn> {
        let s = s.trim();
        if s.is_empty() {
            return Ok(Dn::root());
        }
        let rdns = s.split(',').map(Rdn::parse).collect::<Result<Vec<_>>>()?;
        Ok(Dn { rdns })
    }

    /// The RDNs of this DN, most specific first.
    pub fn rdns(&self) -> &[Rdn] {
        &self.rdns
    }

    /// The most specific RDN, if any.
    pub fn rdn(&self) -> Option<&Rdn> {
        self.rdns.first()
    }

    /// Number of RDN components (0 for the root).
    pub fn depth(&self) -> usize {
        self.rdns.len()
    }

    /// True for the root DN.
    pub fn is_root(&self) -> bool {
        self.rdns.is_empty()
    }

    /// The parent DN (dropping the most specific RDN). Root has no parent.
    pub fn parent(&self) -> Option<Dn> {
        if self.rdns.is_empty() {
            None
        } else {
            Some(Dn {
                rdns: self.rdns[1..].to_vec(),
            })
        }
    }

    /// Prefix a new most-specific RDN onto this DN, naming a child.
    pub fn child(&self, rdn: Rdn) -> Dn {
        let mut rdns = Vec::with_capacity(self.rdns.len() + 1);
        rdns.push(rdn);
        rdns.extend_from_slice(&self.rdns);
        Dn { rdns }
    }

    /// Append `suffix` below this DN: `self` becomes the most-specific part.
    ///
    /// `Dn("hn=hostX").under(Dn("o=O1"))` is `hn=hostX, o=O1`. This is how
    /// a site directory re-homes provider names inside its own namespace
    /// (Figure 5).
    pub fn under(&self, suffix: &Dn) -> Dn {
        let mut rdns = self.rdns.clone();
        rdns.extend_from_slice(&suffix.rdns);
        Dn { rdns }
    }

    /// True if `self` equals `other` or lies beneath it in the tree.
    ///
    /// Every DN is a descendant-or-self of the root.
    pub fn is_under(&self, other: &Dn) -> bool {
        if other.rdns.len() > self.rdns.len() {
            return false;
        }
        let offset = self.rdns.len() - other.rdns.len();
        self.rdns[offset..] == other.rdns[..]
    }

    /// True if `self` is a strict descendant of `other`.
    pub fn is_strictly_under(&self, other: &Dn) -> bool {
        self.rdns.len() > other.rdns.len() && self.is_under(other)
    }

    /// True if `self` is an immediate child of `parent`. Equivalent to
    /// `self.parent().as_ref() == Some(parent)` but compares RDN slices
    /// in place instead of materializing the parent DN.
    pub fn is_child_of(&self, parent: &Dn) -> bool {
        self.rdns.len() == parent.rdns.len() + 1 && self.is_under(parent)
    }

    /// The remainder of `self` above `suffix`: if `self = prefix + suffix`,
    /// returns `prefix` as a DN. Returns `None` when `self` is not under
    /// `suffix`.
    pub fn strip_suffix(&self, suffix: &Dn) -> Option<Dn> {
        if !self.is_under(suffix) {
            return None;
        }
        Some(Dn {
            rdns: self.rdns[..self.rdns.len() - suffix.rdns.len()].to_vec(),
        })
    }
}

impl fmt::Display for Dn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for rdn in &self.rdns {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{rdn}")?;
            first = false;
        }
        Ok(())
    }
}

impl FromStr for Dn {
    type Err = LdapError;
    fn from_str(s: &str) -> Result<Dn> {
        Dn::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        let dn = Dn::parse("perf=load5, hn=hostX, o=O1").unwrap();
        assert_eq!(dn.depth(), 3);
        assert_eq!(dn.to_string(), "perf=load5, hn=hostX, o=O1");
    }

    #[test]
    fn attr_type_is_case_insensitive() {
        let a = Dn::parse("HN=hostX").unwrap();
        let b = Dn::parse("hn=hostX").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn value_is_case_sensitive() {
        let a = Dn::parse("hn=HostX").unwrap();
        let b = Dn::parse("hn=hostx").unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn root_parses_from_empty() {
        assert!(Dn::parse("").unwrap().is_root());
        assert!(Dn::parse("   ").unwrap().is_root());
    }

    #[test]
    fn rejects_malformed() {
        assert!(Dn::parse("nodelimiter").is_err());
        assert!(Dn::parse("=value").is_err());
        assert!(Dn::parse("attr=").is_err());
        assert!(Dn::parse("a b=c").is_err());
    }

    #[test]
    fn parent_and_child() {
        let dn = Dn::parse("queue=default, hn=hostX").unwrap();
        let parent = dn.parent().unwrap();
        assert_eq!(parent.to_string(), "hn=hostX");
        assert_eq!(parent.child(Rdn::new("queue", "default")), dn);
        assert_eq!(Dn::root().parent(), None);
    }

    #[test]
    fn hierarchy_predicates() {
        let host = Dn::parse("hn=hostX, o=O1").unwrap();
        let queue = Dn::parse("queue=default, hn=hostX, o=O1").unwrap();
        let other = Dn::parse("hn=hostY, o=O1").unwrap();
        assert!(queue.is_under(&host));
        assert!(queue.is_strictly_under(&host));
        assert!(host.is_under(&host));
        assert!(!host.is_strictly_under(&host));
        assert!(!other.is_under(&host));
        assert!(host.is_under(&Dn::root()));
    }

    #[test]
    fn under_and_strip_suffix() {
        let local = Dn::parse("hn=hostX").unwrap();
        let org = Dn::parse("o=O1").unwrap();
        let global = local.under(&org);
        assert_eq!(global.to_string(), "hn=hostX, o=O1");
        assert_eq!(global.strip_suffix(&org).unwrap(), local);
        assert_eq!(global.strip_suffix(&global).unwrap(), Dn::root());
        assert!(org.strip_suffix(&global).is_none());
    }

    #[test]
    fn whitespace_tolerant_parse() {
        let a = Dn::parse("hn = hostX ,  o = O1").unwrap();
        let b = Dn::parse("hn=hostX, o=O1").unwrap();
        assert_eq!(a, b);
    }
}
