//! Prebuilt topologies matching the paper's figures, shared by tests,
//! examples and the experiment harness.

use crate::deploy::{org, SimDeployment};
use gis_giis::{Giis, GiisConfig, GiisMode};
use gis_gris::HostSpec;
use gis_ldap::{Dn, LdapUrl};
use gis_netsim::{secs, NodeId, SimDuration};

/// Figure 5's hierarchy: two resource centers and one individual
/// contribute resources to a VO; site directories aggregate their own
/// hosts and register with the VO root directory.
pub struct HierarchyScenario {
    /// The deployment.
    pub dep: SimDeployment,
    /// VO root directory node.
    pub vo_giis: NodeId,
    /// VO root directory URL.
    pub vo_url: LdapUrl,
    /// Center directories: `(node, url, org suffix)`.
    pub centers: Vec<(NodeId, LdapUrl, Dn)>,
    /// All host GRIS nodes with their URLs and namespaces.
    pub hosts: Vec<(NodeId, LdapUrl, Dn)>,
    /// A client node.
    pub client: NodeId,
}

/// Build Figure 5: center O1 contributes R1..R3, center O2 contributes
/// R1..R2 (names are only *relatively* unique, §8 — the same `hn=R1`
/// exists in both organizations), and an individual contributes `hn=R1`
/// with no organization.
pub fn figure5(seed: u64) -> HierarchyScenario {
    let mut dep = SimDeployment::new(seed);

    let vo_url = LdapUrl::server("giis.vo");
    let vo_giis = dep.add_giis(Giis::new(
        GiisConfig::chaining(vo_url.clone(), Dn::root()),
        secs(30),
        secs(90),
    ));

    let mut centers = Vec::new();
    let mut hosts = Vec::new();
    let mut host_seed = seed.wrapping_mul(31);

    for (org_name, host_names) in [("O1", vec!["R1", "R2", "R3"]), ("O2", vec!["R1", "R2"])] {
        let suffix = org(org_name);
        let center_url = LdapUrl::server(format!("giis.center.{org_name}"));
        let mut center = Giis::new(
            GiisConfig::chaining(center_url.clone(), suffix.clone()),
            secs(30),
            secs(90),
        );
        center.agent.add_target(vo_url.clone());
        let center_node = dep.add_giis(center);
        centers.push((center_node, center_url.clone(), suffix.clone()));

        for name in host_names {
            host_seed = host_seed.wrapping_add(1);
            let host = HostSpec::linux(name, 2 + (host_seed % 6) as u32).at(suffix.clone());
            let ns = host.dn();
            let (node, url) =
                dep.add_standard_host(&host, host_seed, std::slice::from_ref(&center_url));
            hosts.push((node, url, ns));
        }
    }

    // The individual's host registers directly with the VO directory.
    let host = HostSpec::irix("R1", 4);
    let ns = host.dn();
    let (node, url) = dep.add_standard_host(&host, seed ^ 0xdead, std::slice::from_ref(&vo_url));
    hosts.push((node, url, ns));

    let client = dep.add_client("user");
    HierarchyScenario {
        dep,
        vo_giis,
        vo_url,
        centers,
        hosts,
        client,
    }
}

/// Figures 1/4: two VOs with (partially) overlapping resources; VO-B's
/// directory is replicated so the partition experiment can split it.
pub struct TwoVoScenario {
    /// The deployment.
    pub dep: SimDeployment,
    /// VO-A directory.
    pub vo_a: (NodeId, LdapUrl),
    /// VO-B's two replicated directories.
    pub vo_b: [(NodeId, LdapUrl); 2],
    /// Host nodes in VO-A only.
    pub hosts_a: Vec<(NodeId, LdapUrl)>,
    /// Host nodes in VO-B only, split into the two halves that the
    /// partition will separate.
    pub hosts_b: [Vec<(NodeId, LdapUrl)>; 2],
    /// Hosts contributing to both VOs.
    pub shared: Vec<(NodeId, LdapUrl)>,
    /// Clients near each directory: `[client_a, client_b0, client_b1]`.
    pub clients: [NodeId; 3],
}

/// Build the two-VO overlap topology. `hosts_per_group` controls scale
/// (VO-A exclusive, each VO-B half, and the shared pool each get this
/// many hosts). Registration interval/TTL are 10s/30s so partition
/// effects appear within a minute of simulated time.
pub fn two_vos(seed: u64, hosts_per_group: usize) -> TwoVoScenario {
    let mut dep = SimDeployment::new(seed);

    let make_giis = |name: &str| {
        let url = LdapUrl::server(name);
        (
            Giis::new(
                GiisConfig {
                    service: gis_gsi::ServiceConfig::open(url.clone()),
                    namespace: Dn::root(),
                    mode: GiisMode::Chain {
                        timeout: SimDuration::from_secs(2),
                    },
                    accept: gis_giis::AcceptPolicy::All,
                    result_cache_ttl: None,
                    breaker: None,
                    shards: Vec::new(),
                },
                secs(10),
                secs(30),
            ),
            url,
        )
    };

    let (giis_a, url_a) = make_giis("giis.vo-a");
    let vo_a_node = dep.add_giis(giis_a);
    let (giis_b0, url_b0) = make_giis("giis.vo-b0");
    let vo_b0 = dep.add_giis(giis_b0);
    let (giis_b1, url_b1) = make_giis("giis.vo-b1");
    let vo_b1 = dep.add_giis(giis_b1);

    let mut host_seed = seed;
    let mut add_hosts = |dep: &mut SimDeployment, prefix: &str, n: usize, dirs: &[LdapUrl]| {
        let mut out = Vec::new();
        for i in 0..n {
            host_seed = host_seed.wrapping_add(1);
            let host = HostSpec::linux(&format!("{prefix}{i}"), 2).at(org(prefix));
            let mut gris = SimDeployment::standard_host_gris(&host, host_seed);
            // Faster soft-state cadence for partition experiments.
            gris.agent.interval = secs(10);
            gris.agent.ttl = secs(30);
            for d in dirs {
                gris.agent.add_target(d.clone());
            }
            let url = gris.config.url.clone();
            let node = dep.add_gris(gris);
            out.push((node, url));
        }
        out
    };

    let hosts_a = add_hosts(&mut dep, "a", hosts_per_group, std::slice::from_ref(&url_a));
    let hosts_b0 = add_hosts(
        &mut dep,
        "b0-",
        hosts_per_group,
        &[url_b0.clone(), url_b1.clone()],
    );
    let hosts_b1 = add_hosts(
        &mut dep,
        "b1-",
        hosts_per_group,
        &[url_b0.clone(), url_b1.clone()],
    );
    let shared = add_hosts(
        &mut dep,
        "s",
        hosts_per_group,
        &[url_a.clone(), url_b0.clone(), url_b1.clone()],
    );

    let clients = [
        dep.add_client("client-a"),
        dep.add_client("client-b0"),
        dep.add_client("client-b1"),
    ];

    TwoVoScenario {
        dep,
        vo_a: (vo_a_node, url_a),
        vo_b: [(vo_b0, url_b0), (vo_b1, url_b1)],
        hosts_a,
        hosts_b: [hosts_b0, hosts_b1],
        shared,
        clients,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_ldap::Filter;
    use gis_proto::{ResultCode, SearchSpec};

    #[test]
    fn figure5_scoped_and_root_discovery() {
        let mut sc = figure5(11);
        // Registrations: hosts -> centers, centers -> VO root.
        sc.dep.run_for(secs(3));

        // Root search discovers all 6 hosts through the hierarchy.
        let (code, entries, _) = sc
            .dep
            .search_and_wait(
                sc.client,
                &sc.vo_url,
                SearchSpec::subtree(Dn::root(), Filter::parse("(objectclass=computer)").unwrap()),
                secs(20),
            )
            .expect("root search completes");
        assert_eq!(code, ResultCode::Success);
        assert_eq!(entries.len(), 6, "3 + 2 + 1 hosts");

        // Scoped search touches only O1.
        let (_, entries, _) = sc
            .dep
            .search_and_wait(
                sc.client,
                &sc.vo_url,
                SearchSpec::subtree(org("O1"), Filter::parse("(objectclass=computer)").unwrap()),
                secs(20),
            )
            .expect("scoped search completes");
        assert_eq!(entries.len(), 3);
        assert!(entries.iter().all(|e| e.dn().is_under(&org("O1"))));

        // Relative uniqueness (§8): two distinct R1 entries exist, with
        // different global names.
        let (_, entries, _) = sc
            .dep
            .search_and_wait(
                sc.client,
                &sc.vo_url,
                SearchSpec::subtree(Dn::root(), Filter::parse("(hn=R1)").unwrap()),
                secs(20),
            )
            .expect("name search completes");
        assert_eq!(entries.len(), 3, "R1 in O1, R1 in O2, individual R1");
    }

    #[test]
    fn two_vo_partition_keeps_fragments_alive() {
        let mut sc = two_vos(5, 2);
        sc.dep.run_for(secs(5));

        // Pre-partition: VO-B directories see both halves + shared.
        let q = SearchSpec::subtree(Dn::root(), Filter::parse("(objectclass=computer)").unwrap());
        let (_, entries, _) = sc
            .dep
            .search_and_wait(sc.clients[1], &sc.vo_b[0].1, q.clone(), secs(20))
            .expect("pre-partition query");
        assert_eq!(entries.len(), 6, "2 + 2 + 2 shared");

        // Partition VO-B: half 0 (+ b0 directory + its client) away from
        // half 1 (+ b1 directory).
        let side0: Vec<_> = sc.hosts_b[0]
            .iter()
            .map(|(n, _)| *n)
            .chain([sc.vo_b[0].0, sc.clients[1]])
            .collect();
        let side1: Vec<_> = sc.hosts_b[1]
            .iter()
            .map(|(n, _)| *n)
            .chain([sc.vo_b[1].0, sc.clients[2]])
            .collect();
        sc.dep.sim.partition_between(&side0, &side1);

        // Soft state for the unreachable half expires (TTL 30s).
        sc.dep.run_for(secs(45));

        let (code, entries, _) = sc
            .dep
            .search_and_wait(sc.clients[1], &sc.vo_b[0].1, q.clone(), secs(20))
            .expect("fragment 0 still answers");
        assert_eq!(
            code,
            ResultCode::Success,
            "expired children are not chained"
        );
        // Fragment 0 sees its own half + shared pool (shared hosts are
        // not partitioned from side 0).
        assert_eq!(entries.len(), 4, "2 local + 2 shared");

        let (_, entries, _) = sc
            .dep
            .search_and_wait(sc.clients[2], &sc.vo_b[1].1, q.clone(), secs(20))
            .expect("fragment 1 still answers");
        assert_eq!(entries.len(), 4, "disjoint fragment keeps operating");

        // VO-A is unaffected throughout.
        let (_, entries, _) = sc
            .dep
            .search_and_wait(sc.clients[0], &sc.vo_a.1, q.clone(), secs(20))
            .expect("VO-A unaffected");
        assert_eq!(entries.len(), 4, "2 exclusive + 2 shared");

        // Healing re-converges.
        sc.dep.sim.heal_all();
        sc.dep.run_for(secs(30));
        let (_, entries, _) = sc
            .dep
            .search_and_wait(sc.clients[1], &sc.vo_b[0].1, q, secs(20))
            .expect("post-heal query");
        assert_eq!(entries.len(), 6, "full view restored");
    }
}
