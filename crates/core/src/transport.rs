//! TCP transport: real sockets under the live runtime.
//!
//! The engines are sans-IO and the live runtime's [`Router`](crate::live)
//! moves [`LiveMsg`](crate::live::LiveMsg) values between threads; this
//! module is the boundary where those values become length-prefixed
//! [`ProtocolMessage`] frames ([`gis_proto::frame`]) on real connections,
//! so a GRIS/GIIS can serve GRIP and accept GRRP registrations from
//! clients and peers in **other OS processes**.
//!
//! Three pieces:
//!
//! * [`TcpEndpoint`] — a server front-end: an accept loop plus one reader
//!   thread per connection, decoding frames into the service's existing
//!   MPMC inbox. Pooled query workers, tracing envelopes and the
//!   monitoring namespace all work unchanged: by the time a frame reaches
//!   the inbox it is the same `LiveMsg::Request` the channel transport
//!   would have delivered, with [`Address::Tcp`](crate::live::Address)
//!   naming the connection to reply on.
//! * [`ConnTable`] — the reply path: accepted connections registered by
//!   id, written to by whichever thread (owner or query worker) produces
//!   the reply.
//! * [`TcpOutbound`] — a connection-pooling client used for chained
//!   GIIS→child requests and GRRP registration streams to `tcp://` URLs.
//!   Each pooled connection is a small worker thread: write a frame,
//!   optionally wait (bounded by the read deadline) for the single reply
//!   frame, hand it to a completion sink, then return itself to the idle
//!   pool.
//!
//! # Deadlines and backpressure
//!
//! * **Connect deadline** — outbound dials use `connect_timeout`; an
//!   unreachable peer fails the request quickly instead of hanging a
//!   fan-out.
//! * **Read deadline, server side** — an *idle* connection between
//!   frames is legitimate (a subscriber waiting for updates); a
//!   connection stalled **mid-frame** for longer than `read_deadline` is
//!   a slow or wedged peer and is dropped, freeing its connection slot.
//! * **Read deadline, outbound** — a reply not fully received within
//!   `read_deadline` abandons the connection (it can no longer be
//!   trusted to be frame-aligned with the request/reply rhythm); the
//!   completion sink fires with an error and upper layers (client retry,
//!   GIIS fan-out deadline + circuit breaker) take over.
//! * **Write deadline** — a peer that stops draining its socket while we
//!   reply (slow consumer) trips `write_deadline`; the connection is
//!   dropped rather than blocking a query worker indefinitely.
//! * **Connection slots** — at most `max_conns` accepted connections per
//!   endpoint; beyond that, new connections are closed on accept. With
//!   the stall rule above, a slot held by a wedged peer frees within one
//!   read deadline.

use crate::live::{Address, LiveMsg};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use gis_proto::frame::{encode_frame_limited, FrameDecoder};
use gis_proto::{GripReply, ProtocolMessage};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Socket-level knobs for both endpoint (server) and outbound (client)
/// sides. One set of defaults fits tests and production-ish loopback use;
/// experiments and robustness tests tighten individual fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpTuning {
    /// Outbound dial deadline.
    pub connect_timeout: Duration,
    /// Server: maximum mid-frame stall before a connection is dropped.
    /// Outbound: maximum wait for a reply frame.
    pub read_deadline: Duration,
    /// Maximum blocking write before a slow-consumer connection is
    /// dropped.
    pub write_deadline: Duration,
    /// Per-frame body ceiling (both directions).
    pub max_frame: usize,
    /// Server: maximum concurrently accepted connections.
    pub max_conns: usize,
    /// Outbound: idle pooled connections kept per peer.
    pub pool_idle: usize,
}

impl Default for TcpTuning {
    fn default() -> TcpTuning {
        TcpTuning {
            connect_timeout: Duration::from_secs(1),
            read_deadline: Duration::from_secs(5),
            write_deadline: Duration::from_secs(5),
            max_frame: gis_proto::MAX_FRAME,
            max_conns: 256,
            pool_idle: 4,
        }
    }
}

/// Reader-loop buffer size.
const READ_CHUNK: usize = 16 * 1024;

/// How often blocked threads re-check shutdown flags.
const SHUTDOWN_POLL: Duration = Duration::from_millis(100);

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// One accepted connection's write half, shared between the reply path
/// and the endpoint's shutdown path.
struct ConnHandle {
    stream: Mutex<TcpStream>,
    max_frame: usize,
}

/// Registry of accepted connections, keyed by the id carried in
/// [`Address::Tcp`]. Shared by every endpoint of a runtime so the router
/// can write a reply without knowing which endpoint accepted the
/// connection.
#[derive(Default)]
pub(crate) struct ConnTable {
    conns: RwLock<HashMap<u64, Arc<ConnHandle>>>,
    next: AtomicU64,
}

impl ConnTable {
    fn register(&self, stream: TcpStream, max_frame: usize) -> u64 {
        let id = self.next.fetch_add(1, Ordering::Relaxed) + 1;
        self.conns.write().insert(
            id,
            Arc::new(ConnHandle {
                stream: Mutex::new(stream),
                max_frame,
            }),
        );
        id
    }

    fn remove(&self, id: u64) {
        if let Some(conn) = self.conns.write().remove(&id) {
            let _ = conn.stream.lock().shutdown(std::net::Shutdown::Both);
        }
    }

    /// Encode and write one frame to connection `id`. Returns `false`
    /// (and drops the connection) when the peer is gone or too slow —
    /// exactly the silent-drop semantics the in-process router has for
    /// vanished clients.
    pub(crate) fn send(&self, id: u64, msg: &ProtocolMessage) -> bool {
        let Some(conn) = self.conns.read().get(&id).map(Arc::clone) else {
            return false;
        };
        let mut buf = bytes::BytesMut::new();
        if encode_frame_limited(msg, &mut buf, conn.max_frame).is_err() {
            return false;
        }
        let mut stream = conn.stream.lock();
        if stream.write_all(&buf).is_ok() && stream.flush().is_ok() {
            true
        } else {
            drop(stream);
            self.remove(id);
            false
        }
    }
}

/// A served TCP listener: the socket front-end of one spawned service.
pub(crate) struct TcpEndpoint {
    stop: Arc<AtomicBool>,
    conn_ids: Arc<Mutex<Vec<u64>>>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpEndpoint {
    /// Bind `authority` and start serving frames into `inbox`.
    pub(crate) fn spawn(
        authority: &str,
        inbox: Sender<LiveMsg>,
        conns: Arc<ConnTable>,
        tuning: TcpTuning,
    ) -> std::io::Result<TcpEndpoint> {
        let listener = TcpListener::bind(authority)?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let conn_ids = Arc::new(Mutex::new(Vec::new()));
        let active = Arc::new(AtomicUsize::new(0));

        let accept_stop = Arc::clone(&stop);
        let accept_conn_ids = Arc::clone(&conn_ids);
        let accept_thread = std::thread::spawn(move || loop {
            if accept_stop.load(Ordering::Relaxed) {
                break;
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if active.load(Ordering::Relaxed) >= tuning.max_conns {
                        // Slot-limited: refuse by closing immediately.
                        drop(stream);
                        continue;
                    }
                    active.fetch_add(1, Ordering::Relaxed);
                    spawn_conn_reader(
                        stream,
                        inbox.clone(),
                        Arc::clone(&conns),
                        tuning,
                        Arc::clone(&accept_stop),
                        Arc::clone(&accept_conn_ids),
                        Arc::clone(&active),
                    );
                }
                Err(e) if is_timeout(&e) => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => break,
            }
        });

        Ok(TcpEndpoint {
            stop,
            conn_ids,
            accept_thread: Some(accept_thread),
        })
    }

    /// Stop accepting, close every live connection, join the accept loop.
    pub(crate) fn shutdown(mut self, conns: &ConnTable) {
        self.stop.store(true, Ordering::Relaxed);
        for id in self.conn_ids.lock().drain(..) {
            conns.remove(id);
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn spawn_conn_reader(
    stream: TcpStream,
    inbox: Sender<LiveMsg>,
    conns: Arc<ConnTable>,
    tuning: TcpTuning,
    stop: Arc<AtomicBool>,
    conn_ids: Arc<Mutex<Vec<u64>>>,
    active: Arc<AtomicUsize>,
) {
    std::thread::spawn(move || {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_write_timeout(Some(tuning.write_deadline));
        let Ok(read_half) = stream.try_clone() else {
            active.fetch_sub(1, Ordering::Relaxed);
            return;
        };
        let conn_id = conns.register(stream, tuning.max_frame);
        conn_ids.lock().push(conn_id);
        read_loop(read_half, conn_id, &inbox, &tuning, &stop);
        conns.remove(conn_id);
        conn_ids.lock().retain(|&id| id != conn_id);
        active.fetch_sub(1, Ordering::Relaxed);
    });
}

/// Decode frames from one accepted connection into the service inbox
/// until EOF, a protocol error, a mid-frame stall, or shutdown.
fn read_loop(
    mut stream: TcpStream,
    conn_id: u64,
    inbox: &Sender<LiveMsg>,
    tuning: &TcpTuning,
    stop: &AtomicBool,
) {
    // Short socket timeout so both the shutdown flag and the mid-frame
    // deadline are checked promptly; `stall_since` tracks the wall-clock
    // start of the current incomplete frame.
    let _ = stream.set_read_timeout(Some(SHUTDOWN_POLL.min(tuning.read_deadline)));
    let mut dec = FrameDecoder::with_max_frame(tuning.max_frame);
    let mut buf = vec![0u8; READ_CHUNK];
    let mut stall_since: Option<Instant> = None;
    loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        match stream.read(&mut buf) {
            Ok(0) => return, // peer closed
            Ok(n) => {
                dec.feed(&buf[..n]);
                loop {
                    match dec.next() {
                        Ok(Some(msg)) => {
                            if !dispatch_inbound(msg, conn_id, inbox) {
                                return;
                            }
                        }
                        Ok(None) => break,
                        // Oversized or malformed frame: drop the
                        // connection cleanly; the sender sees EOF.
                        Err(_) => return,
                    }
                }
                stall_since = if dec.mid_frame() {
                    Some(stall_since.unwrap_or_else(Instant::now))
                } else {
                    None
                };
            }
            Err(e) if is_timeout(&e) => {
                if let Some(since) = stall_since {
                    if since.elapsed() >= tuning.read_deadline {
                        // Half a frame, then silence: slow-peer deadline
                        // trips and the connection slot is freed.
                        return;
                    }
                } else if dec.mid_frame() {
                    stall_since = Some(Instant::now());
                }
            }
            Err(_) => return,
        }
    }
}

/// Translate one decoded frame into the same `LiveMsg` the in-process
/// transport would deliver. Returns `false` when the connection must be
/// dropped (service gone, or the peer sent a frame a server never
/// accepts).
fn dispatch_inbound(msg: ProtocolMessage, conn_id: u64, inbox: &Sender<LiveMsg>) -> bool {
    let (trace, inner) = msg.untraced();
    let live = match inner {
        ProtocolMessage::Request(request) => LiveMsg::Request {
            from: Address::Tcp(conn_id),
            request,
            trace,
            enqueued: Instant::now(),
        },
        ProtocolMessage::Grrp(m) => LiveMsg::Grrp(m),
        // A server-side connection carries requests and registrations;
        // an unsolicited Reply is a protocol violation.
        ProtocolMessage::Reply(_) | ProtocolMessage::Traced { .. } => return false,
    };
    inbox.send(live).is_ok()
}

/// What one outbound request produced.
pub(crate) type OutboundResult = Result<GripReply, TransportError>;

/// Why an outbound request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum TransportError {
    /// Could not dial the peer.
    Connect,
    /// The connection dropped (or desynced) before a full reply arrived.
    Dropped,
    /// No full reply within the read deadline.
    Timeout,
}

/// Completion callback for one outbound request.
pub(crate) type ReplySink = Box<dyn FnOnce(OutboundResult) + Send + 'static>;

/// One unit of outbound work: a frame, plus (for requests) the sink the
/// single reply frame is handed to. GRRP notifications are one-way.
struct Job {
    frame: ProtocolMessage,
    reply: Option<ReplySink>,
}

/// Connection-pooling TCP client shared by a runtime (GIIS chaining,
/// GRRP registration streams) and by standalone [`LiveClient`]
/// (crate::live::LiveClient) handles in client-only processes.
pub(crate) struct TcpOutbound {
    /// Idle pooled connections per `host:port` peer. Behind an `Arc` so
    /// connection workers can re-register themselves without borrowing
    /// the pool.
    idle: Arc<Mutex<HashMap<String, Vec<Sender<Job>>>>>,
    tuning: TcpTuning,
    closed: Arc<AtomicBool>,
}

impl Default for TcpOutbound {
    fn default() -> TcpOutbound {
        TcpOutbound::new(TcpTuning::default())
    }
}

impl TcpOutbound {
    pub(crate) fn new(tuning: TcpTuning) -> TcpOutbound {
        TcpOutbound {
            idle: Arc::new(Mutex::new(HashMap::new())),
            tuning,
            closed: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Fire-and-forget a frame (GRRP notifications). Connection errors
    /// are the soft-state protocol's problem: a lost registration is
    /// re-sent at the next refresh interval.
    pub(crate) fn oneway(&self, peer: &str, frame: ProtocolMessage) {
        self.submit(peer, Job { frame, reply: None });
    }

    /// Send a request frame and hand the single reply frame (or the
    /// failure) to `sink`, asynchronously.
    pub(crate) fn request(&self, peer: &str, frame: ProtocolMessage, sink: ReplySink) {
        self.submit(
            peer,
            Job {
                frame,
                reply: Some(sink),
            },
        );
    }

    /// Stop all pooled connection workers (checked at their next poll).
    pub(crate) fn close(&self) {
        self.closed.store(true, Ordering::Relaxed);
        self.idle.lock().clear();
    }

    fn submit(&self, peer: &str, mut job: Job) {
        if self.closed.load(Ordering::Relaxed) {
            if let Some(sink) = job.reply.take() {
                sink(Err(TransportError::Dropped));
            }
            return;
        }
        // Reuse an idle pooled connection when one exists.
        loop {
            let Some(tx) = self.idle.lock().get_mut(peer).and_then(Vec::pop) else {
                break;
            };
            match tx.send(job) {
                Ok(()) => return,
                // That worker died since going idle; try the next.
                Err(crossbeam::channel::SendError(j)) => job = j,
            }
        }
        self.spawn_conn(peer, job);
    }

    fn spawn_conn(&self, peer: &str, job: Job) {
        let (tx, rx): (Sender<Job>, Receiver<Job>) = bounded(1);
        let peer_key = peer.to_owned();
        let tuning = self.tuning;
        let closed = Arc::clone(&self.closed);
        let idle = IdleHook {
            closed: Arc::clone(&self.closed),
            map: Arc::clone(&self.idle),
        };
        std::thread::spawn(move || {
            conn_worker(&peer_key, job, rx, tx, tuning, closed, idle);
        });
    }
}

/// A cloneable handle through which a connection worker re-registers
/// itself as idle. Holds the pool's idle map behind an `Arc`, detached
/// from the pool's lifetime (workers outlive `TcpOutbound::close`
/// briefly; the `closed` flag keeps them from re-registering).
struct IdleHook {
    closed: Arc<AtomicBool>,
    map: Arc<Mutex<HashMap<String, Vec<Sender<Job>>>>>,
}

impl IdleHook {
    fn park(&self, peer: &str, tx: Sender<Job>, cap: usize) -> bool {
        if self.closed.load(Ordering::Relaxed) {
            return false;
        }
        let mut map = self.map.lock();
        let slot = map.entry(peer.to_owned()).or_default();
        if slot.len() >= cap {
            return false;
        }
        slot.push(tx);
        true
    }
}

fn conn_worker(
    peer: &str,
    first: Job,
    rx: Receiver<Job>,
    self_tx: Sender<Job>,
    tuning: TcpTuning,
    closed: Arc<AtomicBool>,
    idle: IdleHook,
) {
    // Dial with the connect deadline.
    let stream = resolve(peer)
        .and_then(|addr| TcpStream::connect_timeout(&addr, tuning.connect_timeout).ok());
    let Some(mut stream) = stream else {
        if let Some(sink) = first.reply {
            sink(Err(TransportError::Connect));
        }
        return;
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(tuning.write_deadline));
    let _ = stream.set_read_timeout(Some(SHUTDOWN_POLL.min(tuning.read_deadline)));
    let mut dec = FrameDecoder::with_max_frame(tuning.max_frame);

    let mut job = Some(first);
    loop {
        let Some(j) = job.take() else {
            // Wait parked-idle for the next job.
            match rx.recv_timeout(SHUTDOWN_POLL * 5) {
                Ok(j) => job = Some(j),
                Err(RecvTimeoutError::Timeout) => {
                    if closed.load(Ordering::Relaxed) {
                        return;
                    }
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => return,
            }
            continue;
        };
        if !run_job(j, &mut stream, &mut dec, &tuning) {
            return; // connection no longer trustworthy
        }
        if !idle.park(peer, self_tx.clone(), tuning.pool_idle) {
            return; // pool full or closed: retire this connection
        }
    }
}

/// Execute one job on the live connection. Returns `false` when the
/// connection must be retired.
fn run_job(job: Job, stream: &mut TcpStream, dec: &mut FrameDecoder, tuning: &TcpTuning) -> bool {
    let mut buf = bytes::BytesMut::new();
    if encode_frame_limited(&job.frame, &mut buf, tuning.max_frame).is_err()
        || stream.write_all(&buf).is_err()
        || stream.flush().is_err()
    {
        if let Some(sink) = job.reply {
            sink(Err(TransportError::Dropped));
        }
        return false;
    }
    let Some(sink) = job.reply else {
        return true; // one-way: done
    };
    // Wait for exactly one reply frame within the read deadline.
    let deadline = Instant::now() + tuning.read_deadline;
    let mut chunk = vec![0u8; READ_CHUNK];
    loop {
        match dec.next() {
            Ok(Some(ProtocolMessage::Reply(reply))) => {
                sink(Ok(reply));
                // Any residual bytes mean the peer broke the one-reply
                // rhythm; keep the connection only when clean.
                return !dec.mid_frame();
            }
            Ok(Some(_)) => {
                sink(Err(TransportError::Dropped));
                return false;
            }
            Ok(None) => {}
            Err(_) => {
                sink(Err(TransportError::Dropped));
                return false;
            }
        }
        if Instant::now() >= deadline {
            sink(Err(TransportError::Timeout));
            return false;
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                sink(Err(TransportError::Dropped));
                return false;
            }
            Ok(n) => dec.feed(&chunk[..n]),
            Err(e) if is_timeout(&e) => {}
            Err(_) => {
                sink(Err(TransportError::Dropped));
                return false;
            }
        }
    }
}

/// Resolve `host:port` to the first socket address.
pub(crate) fn resolve(peer: &str) -> Option<SocketAddr> {
    peer.to_socket_addrs().ok()?.next()
}

/// Why [`ClientConn::recv`] returned no message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RecvFail {
    /// Deadline passed with no complete frame.
    Timeout,
    /// Connection closed or desynced; the caller must reconnect.
    Closed,
}

/// A client's single persistent connection to one endpoint. Unlike the
/// pooled [`TcpOutbound`] connections (strict request/reply rhythm),
/// this carries a full client session: requests out, any number of
/// replies and subscription updates back, in whatever order the service
/// produces them — the socket analogue of a [`LiveClient`]
/// (crate::live::LiveClient) reply channel.
pub(crate) struct ClientConn {
    stream: TcpStream,
    dec: FrameDecoder,
}

impl ClientConn {
    /// Dial `peer` (`host:port`) under `tuning`'s connect deadline.
    pub(crate) fn connect(peer: &str, tuning: TcpTuning) -> std::io::Result<ClientConn> {
        let addr = resolve(peer).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("bad peer {peer:?}"),
            )
        })?;
        let stream = TcpStream::connect_timeout(&addr, tuning.connect_timeout)?;
        stream.set_nodelay(true)?;
        stream.set_write_timeout(Some(tuning.write_deadline))?;
        stream.set_read_timeout(Some(SHUTDOWN_POLL))?;
        Ok(ClientConn {
            stream,
            dec: FrameDecoder::with_max_frame(tuning.max_frame),
        })
    }

    /// Encode and send one frame. `false` means the connection is dead.
    pub(crate) fn send(&mut self, msg: &ProtocolMessage, max_frame: usize) -> bool {
        let mut buf = bytes::BytesMut::new();
        encode_frame_limited(msg, &mut buf, max_frame).is_ok()
            && self.stream.write_all(&buf).is_ok()
            && self.stream.flush().is_ok()
    }

    /// Receive the next frame, waiting up to `timeout`.
    pub(crate) fn recv(&mut self, timeout: Duration) -> Result<ProtocolMessage, RecvFail> {
        let deadline = Instant::now() + timeout;
        let mut chunk = vec![0u8; READ_CHUNK];
        loop {
            match self.dec.next() {
                Ok(Some(msg)) => return Ok(msg),
                Ok(None) => {}
                Err(_) => return Err(RecvFail::Closed),
            }
            if Instant::now() >= deadline {
                return Err(RecvFail::Timeout);
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(RecvFail::Closed),
                Ok(n) => self.dec.feed(&chunk[..n]),
                Err(e) if is_timeout(&e) => {}
                Err(_) => return Err(RecvFail::Closed),
            }
        }
    }
}
