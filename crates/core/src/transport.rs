//! TCP transport: real sockets under the live runtime, driven by the
//! readiness reactor.
//!
//! The engines are sans-IO and the live runtime's [`Router`](crate::live)
//! moves [`LiveMsg`](crate::live::LiveMsg) values between threads; this
//! module is the boundary where those values become length-prefixed
//! [`ProtocolMessage`] frames ([`gis_proto::frame`]) on real connections,
//! so a GRIS/GIIS can serve GRIP and accept GRRP registrations from
//! clients and peers in **other OS processes**.
//!
//! # Who blocks on what
//!
//! No thread blocks on a socket. Every socket — the listener, each
//! accepted connection, each outbound connection — is a nonblocking fd
//! owned by one shard of the process-global [`Reactor`]
//! (crate::reactor::Reactor): `O(shards)` transport threads total, not
//! `O(connections)`. The per-socket state machines live here:
//!
//! * [`ListenerSource`] — accepts until `EAGAIN`; fd-exhaustion
//!   (`EMFILE`/`ENFILE`) sheds *new* connections with a metered backoff
//!   (interest off, timer on) while existing connections keep serving,
//!   and every accept failure bumps the `tcp-accept-errors` counter.
//! * [`ServerConn`] — read-ready drives the connection's
//!   [`FrameDecoder`] into the service's MPMC inbox (or the
//!   [`InlineHandler`] fast path, answered on the shard thread);
//!   write-ready drains the per-connection staging buffer. A mid-frame
//!   stall or a peer that stops draining our replies arms the shard's
//!   timer wheel and the deadline drops the connection.
//! * [`OutboundSource`] — the client side of one multiplexed
//!   connection: a nonblocking connect completes via writability +
//!   `SO_ERROR`, then read-ready matches reply frames to callers by
//!   correlation id and the timer wheel fires per-request deadlines
//!   (the connection stays up; a late reply is dropped as unknown).
//!
//! # Staging-buffer ownership
//!
//! Any thread may produce bytes for a connection (owner threads, query
//! workers, inline handlers) by appending to its mutexed staging buffer
//! and attempting a nonblocking drain. On `EAGAIN` the writer leaves the
//! remainder staged and nudges the connection's shard
//! ([`Nudge::attend`]), which enables write interest and finishes the
//! drain on write-ready. The PR 6 corking heuristics are unchanged:
//! while a connection's cork count is non-zero, drains are no-ops and
//! bytes accumulate so a burst leaves as one `write(2)`.
//!
//! # Correlation-id space
//!
//! Outbound rewrites each request's GRIP id into a per-connection
//! correlation counter before framing (and restores the original on the
//! matching reply), so independent engines sharing one connection cannot
//! collide. Servers echo request ids verbatim, which makes the reply's
//! id *be* the correlation id; the envelope additionally carries it so
//! receivers can drop mislabeled frames. A connection starts in plain
//! framing and a server marks it mux-speaking only after **receiving**
//! an enveloped frame, so an old peer is never sent an envelope it
//! cannot decode.
//!
//! # Deadlines and backpressure
//!
//! * **Connect deadline** — outbound dials arm `connect_timeout` on the
//!   timer wheel; an unreachable peer fails its queued requests quickly
//!   instead of hanging a fan-out.
//! * **Read deadline, server side** — an *idle* connection between
//!   frames is legitimate (a subscriber waiting for updates); a
//!   connection stalled **mid-frame** for longer than `read_deadline` is
//!   a slow or wedged peer and is dropped, freeing its connection slot.
//! * **Read deadline, outbound** — each in-flight request has its own
//!   deadline; expiry fires that request's sink with a timeout while the
//!   connection (still frame-aligned — framing is self-describing)
//!   stays up, and the late reply is dropped as unknown. Upper layers
//!   (client retry, GIIS fan-out deadline + circuit breaker) take over.
//! * **Write deadline** — a peer that stops draining its socket while we
//!   reply (slow consumer) trips `write_deadline`; the connection is
//!   dropped rather than growing its staging buffer forever.
//! * **In-flight depth** — a submitter finding `mux_depth` requests
//!   already in flight blocks (bounded by `write_deadline`) until a slot
//!   frees: backpressure, not unbounded queueing. On a reactor shard
//!   thread the wait is skipped (briefly overshooting the depth) —
//!   parking a shard would stall every connection it owns.
//! * **Connection slots** — at most `max_conns` accepted connections per
//!   endpoint; beyond that, new connections are closed on accept. With
//!   the stall rule above, a slot held by a wedged peer frees within one
//!   read deadline.
//!
//! A poisoned decoder (oversized header, undecodable body, trailing
//! bytes) still drops the connection on either side — framing has lost
//! sync and is never resynchronized; the peer sees EOF, the silent
//! network the upper layers already handle.

use crate::live::{Address, LiveMsg};
use crate::reactor::{
    connect_nonblocking, take_socket_error, Ctl, EventSource, Keep, Nudge, Reactor,
};
use gis_gsi::{Authenticator, BindToken, Credential, SecurityPolicy, TrustStore};
use gis_proto::frame::{encode_frame_limited, encode_mux_frame_limited, Frame, FrameDecoder};
use gis_proto::metrics::{Gauge, MetricsRegistry};
use gis_proto::{
    Counter, GripReply, GripRequest, Handshake, ProtocolMessage, ResultCode, TraceContext,
};
use parking_lot::{Mutex, RwLock};
// The vendored parking_lot is a shim over std primitives, so its guards
// interoperate with the std condition variable.
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::sync::Condvar;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use crossbeam::channel::Sender;

/// Socket-level knobs for both endpoint (server) and outbound (client)
/// sides. One set of defaults fits tests and production-ish loopback use;
/// experiments and robustness tests tighten individual fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpTuning {
    /// Outbound dial deadline.
    pub connect_timeout: Duration,
    /// Server: maximum mid-frame stall before a connection is dropped.
    /// Outbound: maximum wait for each in-flight request's reply.
    pub read_deadline: Duration,
    /// Maximum write stall before a slow-consumer connection is
    /// dropped; also bounds how long a submitter waits for an in-flight
    /// slot when the connection is at `mux_depth`.
    pub write_deadline: Duration,
    /// Per-frame body ceiling (both directions).
    pub max_frame: usize,
    /// Server: maximum concurrently accepted connections.
    pub max_conns: usize,
    /// Outbound: in-flight requests allowed per connection before
    /// submitters block for a free slot.
    pub mux_depth: usize,
    /// Outbound: persistent connections kept per peer, used round-robin.
    pub conns_per_peer: usize,
}

impl Default for TcpTuning {
    fn default() -> TcpTuning {
        TcpTuning {
            connect_timeout: Duration::from_secs(1),
            read_deadline: Duration::from_secs(5),
            write_deadline: Duration::from_secs(5),
            max_frame: gis_proto::MAX_FRAME,
            max_conns: 256,
            mux_depth: 32,
            conns_per_peer: 1,
        }
    }
}

/// Client-session read buffer size (the reactor shards use their own
/// shared scratch buffers).
const READ_CHUNK: usize = 16 * 1024;

/// How many scratch-buffer reads one connection may consume per
/// readiness callback before yielding the shard to its neighbors
/// (level-triggered polling re-reports the fd immediately).
const READS_PER_WAKE: usize = 8;

/// How often a blocking client session re-checks its deadline.
const SHUTDOWN_POLL: Duration = Duration::from_millis(100);

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Accept-time fd exhaustion: per-process (`EMFILE`) or system-wide
/// (`ENFILE`) file-table limits. Transient by nature — existing
/// connections closing frees slots — so the listener sheds instead of
/// dying.
fn is_fd_exhaustion(e: &std::io::Error) -> bool {
    matches!(e.raw_os_error(), Some(23) | Some(24)) // ENFILE | EMFILE
}

/// Correlation id to echo on a reply frame's envelope: the reply's GRIP
/// id (servers echo request ids, which outbound rewrote to the
/// correlation value).
fn reply_corr(msg: &ProtocolMessage) -> Option<u64> {
    match msg {
        ProtocolMessage::Reply(r) => Some(r.id()),
        ProtocolMessage::Traced { inner, .. } => reply_corr(inner),
        _ => None,
    }
}

/// Rewrite the GRIP request id inside `msg` (through a trace envelope)
/// to `new`, returning the original id. `None` when `msg` carries no
/// request.
fn rewrite_request_id(msg: &mut ProtocolMessage, new: u64) -> Option<u64> {
    match msg {
        ProtocolMessage::Request(r) => {
            let old = r.id();
            r.set_id(new);
            Some(old)
        }
        ProtocolMessage::Traced { inner, .. } => rewrite_request_id(inner, new),
        _ => None,
    }
}

/// Health of a connection's staging buffer after a drain attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WriteHealth {
    /// Nothing left to write (or writing is deferred: corked / still
    /// dialing).
    Idle,
    /// The socket stopped accepting bytes (`EAGAIN`); the remainder is
    /// staged and the shard must watch for write-readiness.
    Pending,
    /// The peer is gone; the connection must be dropped.
    Dead,
}

/// One accepted connection: the write half plus its coalescing staging
/// buffer, shared between the reply path (shard, owner and query-worker
/// threads) and the endpoint's shutdown path.
struct ConnHandle {
    /// The one socket, shared with the shard's [`ServerConn`] reader —
    /// one fd per connection, not a `try_clone` pair (reads and writes
    /// are independent directions, and writes are serialized by the
    /// `queued` lock).
    stream: Arc<TcpStream>,
    /// Frames encoded but not yet written; whichever thread drains next
    /// writes them, so concurrent repliers coalesce into one write.
    queued: Mutex<bytes::BytesMut>,
    /// Set once the peer sends an enveloped frame; replies then carry
    /// the envelope too. Plain peers never see a tag they can't decode.
    mux: AtomicBool,
    /// Cork count; while non-zero, [`drain`](Self::drain) stages without
    /// writing. The shard corks around each decoded batch so the inline
    /// replies to a pipelined burst leave as one `write(2)`; an owner
    /// thread corks every handle around an inbox batch
    /// ([`ConnTable::cork_all`]) for the same effect on its reply burst.
    /// Corks nest, hence a count rather than a flag; whoever drops the
    /// count to zero flushes what everyone staged.
    corked: AtomicUsize,
    max_frame: usize,
    /// Handle to the shard that owns this connection's read half, set
    /// before the connection's source is activated. Writers nudge it
    /// when a drain leaves bytes staged.
    nudge: OnceLock<Nudge>,
}

impl ConnHandle {
    /// Nonblocking drain of `queued` to the socket. Never blocks: on
    /// `EAGAIN` the remainder stays staged and the caller decides who
    /// finishes the job (writer threads nudge the owning shard; the
    /// shard itself enables write interest).
    fn drain(&self) -> WriteHealth {
        if self.corked.load(Ordering::Acquire) > 0 {
            return WriteHealth::Idle;
        }
        let mut q = self.queued.lock();
        while !q.is_empty() {
            match (&*self.stream).write(&q[..]) {
                Ok(0) => return WriteHealth::Dead,
                Ok(n) => q.advance(n),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    return WriteHealth::Pending
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return WriteHealth::Dead,
            }
        }
        WriteHealth::Idle
    }

    /// Writer-thread drain: `false` drops the connection (peer gone);
    /// a partial write stages the remainder and hands completion to the
    /// owning shard.
    fn flush(&self) -> bool {
        match self.drain() {
            WriteHealth::Dead => false,
            WriteHealth::Idle => true,
            WriteHealth::Pending => {
                if let Some(nudge) = self.nudge.get() {
                    nudge.attend();
                }
                true
            }
        }
    }
}

/// Registry of accepted connections, keyed by the id carried in
/// [`Address::Tcp`]. Shared by every endpoint of a runtime so the router
/// can write a reply without knowing which endpoint accepted the
/// connection.
#[derive(Default)]
pub(crate) struct ConnTable {
    conns: RwLock<HashMap<u64, Arc<ConnHandle>>>,
    next: AtomicU64,
}

impl ConnTable {
    fn register(&self, stream: Arc<TcpStream>, max_frame: usize) -> (u64, Arc<ConnHandle>) {
        let id = self.next.fetch_add(1, Ordering::Relaxed) + 1;
        let handle = Arc::new(ConnHandle {
            stream,
            queued: Mutex::new(bytes::BytesMut::new()),
            mux: AtomicBool::new(false),
            corked: AtomicUsize::new(0),
            max_frame,
            nudge: OnceLock::new(),
        });
        self.conns.write().insert(id, Arc::clone(&handle));
        (id, handle)
    }

    fn remove(&self, id: u64) {
        if let Some(conn) = self.conns.write().remove(&id) {
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        }
    }

    /// Encode and write one frame to connection `id`, enveloped with the
    /// reply's correlation id when the peer speaks the mux envelope.
    /// Returns `false` (and drops the connection) when the peer is gone
    /// — exactly the silent-drop semantics the in-process router has for
    /// vanished clients. A partial write is a success: the remainder is
    /// staged and the owning shard drains it on write-ready.
    pub(crate) fn send(&self, id: u64, msg: &ProtocolMessage) -> bool {
        let Some(conn) = self.conns.read().get(&id).map(Arc::clone) else {
            return false;
        };
        let encoded = {
            let mut q = conn.queued.lock();
            match reply_corr(msg).filter(|_| conn.mux.load(Ordering::Relaxed)) {
                Some(corr) => encode_mux_frame_limited(corr, msg, &mut q, conn.max_frame).is_ok(),
                None => encode_frame_limited(msg, &mut q, conn.max_frame).is_ok(),
            }
        };
        if encoded && conn.flush() {
            true
        } else {
            self.remove(id);
            false
        }
    }

    /// Cork every accepted connection until the returned guard drops:
    /// replies written in between stage in their handles and leave as
    /// one write per connection. Used by owner threads draining an inbox
    /// batch whose messages each produce a reply.
    pub(crate) fn cork_all(self: &Arc<Self>) -> ReplyCork {
        let conns: Vec<(u64, Arc<ConnHandle>)> = self
            .conns
            .read()
            .iter()
            .map(|(id, conn)| (*id, Arc::clone(conn)))
            .collect();
        for (_, conn) in &conns {
            conn.corked.fetch_add(1, Ordering::AcqRel);
        }
        ReplyCork {
            table: Arc::clone(self),
            conns,
        }
    }
}

/// RAII cork over the accepted connections that existed when
/// [`ConnTable::cork_all`] ran (later arrivals write directly, which is
/// merely unbatched). Dropping uncorks and flushes; a connection whose
/// flush fails is dropped exactly as a failed direct write would be.
pub(crate) struct ReplyCork {
    table: Arc<ConnTable>,
    conns: Vec<(u64, Arc<ConnHandle>)>,
}

impl Drop for ReplyCork {
    fn drop(&mut self) {
        for (id, conn) in &self.conns {
            conn.corked.fetch_sub(1, Ordering::AcqRel);
            if !conn.flush() {
                self.table.remove(*id);
            }
        }
    }
}

/// Fast-path hook a service installs on its endpoint: called on the
/// connection's shard thread for every inbound GRIP request. Returning
/// `None` means the request was fully handled (replies already written
/// via [`ConnTable::send`]); returning the request forwards it to the
/// service inbox for the owner thread, exactly as if no hook existed.
pub(crate) type InlineHandler =
    Arc<dyn Fn(u64, GripRequest, Option<TraceContext>) -> Option<GripRequest> + Send + Sync>;

/// Notification that connection `conn_id` proved `subject` (the runtime
/// marks the engine session authenticated).
pub(crate) type AuthCallback = Arc<dyn Fn(u64, &str) + Send + Sync>;

/// Per-connection lifecycle notification (auth rejection, close).
pub(crate) type ConnCallback = Arc<dyn Fn(u64) + Send + Sync>;

/// One endpoint's §7 wire-security posture: how inbound `Hello` frames
/// are verified, whether unauthenticated traffic is served at all, and
/// what to tell the owning runtime when a connection's handshake
/// settles. Built by the live runtime from the service's
/// [`SecurityPolicy`]; the transport itself stays policy-free — it only
/// executes the handshake state machine.
pub(crate) struct WireSecurity {
    /// When true, a non-handshake frame on a connection that has not
    /// authenticated drops that *connection* (never the service). The
    /// anonymous tier leaves this false, so legacy peers keep working.
    pub(crate) required: bool,
    /// Verifies inbound `Hello` tokens. `None` means this endpoint does
    /// not speak the handshake: any `Hello` is answered with
    /// `Reject(UnwillingToPerform)` and the connection is closed.
    pub(crate) authenticator: Option<Authenticator>,
    /// Credential signing the `Welcome` return token (the server half of
    /// mutual authentication). The token binds to `service_name`, the
    /// endpoint's own advertised URL — the name the client dialed — so
    /// the client can verify it against its trust store.
    pub(crate) credential: Option<Credential>,
    /// The endpoint's advertised `tcp://host:port` URL string.
    pub(crate) service_name: String,
    /// Fired when a connection authenticates.
    pub(crate) on_auth: AuthCallback,
    /// Fired when a `Hello` fails verification (auth-failure span).
    pub(crate) on_reject: ConnCallback,
    /// Fired when an accepted connection closes (session cleanup).
    pub(crate) on_close: ConnCallback,
    /// Handshakes accepted.
    pub(crate) auth_ok: Arc<Counter>,
    /// `Hello` tokens that failed verification.
    pub(crate) auth_rejected: Arc<Counter>,
    /// Frames dropped (with their connection) for arriving before
    /// authentication on a `required` endpoint.
    pub(crate) auth_gated: Arc<Counter>,
}

impl WireSecurity {
    /// An open endpoint: no handshake support, nothing required — the
    /// pre-§7 wire behaviour. Counters register under `registry` so the
    /// monitoring namespace shows zeros rather than missing series.
    #[cfg(test)]
    pub(crate) fn open(registry: &MetricsRegistry) -> Arc<WireSecurity> {
        Arc::new(WireSecurity {
            required: false,
            authenticator: None,
            credential: None,
            service_name: String::new(),
            on_auth: Arc::new(|_, _| {}),
            on_reject: Arc::new(|_| {}),
            on_close: Arc::new(|_| {}),
            auth_ok: registry.counter("auth-ok"),
            auth_rejected: registry.counter("auth-rejected"),
            auth_gated: registry.counter("auth-gated"),
        })
    }
}

/// What an outbound connection presents when dialing: the client half of
/// the §7 handshake. Snapshotted per peer at dial time by
/// [`TcpOutbound::conn_for`].
#[derive(Clone, Default)]
pub(crate) struct OutboundSecurity {
    /// When present, every new connection opens with a `Hello` carrying
    /// a [`BindToken`] over the peer's `tcp://host:port` name.
    pub(crate) credential: Option<Credential>,
    /// When present, the server's `Welcome` token must verify against
    /// this store (mutual authentication) or the connection dies.
    pub(crate) trust: Option<TrustStore>,
}

impl OutboundSecurity {
    /// Derive the wire-client posture from a service-level policy.
    pub(crate) fn from_policy(policy: &SecurityPolicy) -> OutboundSecurity {
        OutboundSecurity {
            credential: policy.credential.clone(),
            trust: policy.trust.clone(),
        }
    }

    /// The staged `Hello` token and `Welcome` verifier for dialing
    /// `peer` (`host:port`), or `None` when this side stays anonymous.
    fn hello_for(&self, peer: &str) -> Option<ClientHello> {
        let cred = self.credential.as_ref()?;
        let target = format!("tcp://{peer}");
        Some(ClientHello {
            token: BindToken::create(cred, &target).to_bytes(),
            verify: self
                .trust
                .as_ref()
                .map(|t| Authenticator::new(t.clone(), target)),
        })
    }
}

/// The prepared client half of one connection's handshake.
struct ClientHello {
    token: Vec<u8>,
    verify: Option<Authenticator>,
}

/// A bound-but-not-yet-serving listener. Splitting bind from serve lets
/// the runtime read the kernel-assigned port (`tcp://host:0`) and fix up
/// registration URLs *before* any traffic arrives.
pub(crate) struct BoundEndpoint {
    listener: TcpListener,
    local: SocketAddr,
}

impl BoundEndpoint {
    /// Bind `authority` (`host:port`, port may be 0 for ephemeral).
    pub(crate) fn bind(authority: &str) -> std::io::Result<BoundEndpoint> {
        let listener = TcpListener::bind(authority)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        Ok(BoundEndpoint { listener, local })
    }

    /// The actual bound address (real port even when 0 was requested).
    pub(crate) fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Register the listener with the reactor and start serving frames
    /// into `inbox`, with read-path requests optionally short-circuited
    /// by `inline` on the shard threads and connections authenticated
    /// under `security`. `registry` receives the endpoint's
    /// `tcp-accept-errors` counter and `tcp-conns` gauge.
    pub(crate) fn serve(
        self,
        inbox: Sender<LiveMsg>,
        conns: Arc<ConnTable>,
        tuning: TcpTuning,
        inline: Option<InlineHandler>,
        security: Arc<WireSecurity>,
        registry: &MetricsRegistry,
    ) -> TcpEndpoint {
        let conn_ids = Arc::new(Mutex::new(Vec::new()));
        let reg = Reactor::global().bind(false);
        let endpoint = TcpEndpoint {
            listener: reg.nudge(),
            conn_ids: Arc::clone(&conn_ids),
        };
        reg.activate(
            Box::new(ListenerSource {
                listener: self.listener,
                inbox,
                conns,
                tuning,
                inline,
                security,
                conn_ids,
                active: Arc::new(AtomicUsize::new(0)),
                accept_errors: registry.counter("tcp-accept-errors"),
                conns_gauge: registry.gauge("tcp-conns"),
                shed_rounds: 0,
            }),
            true,
            false,
            None,
        );
        endpoint
    }
}

/// A served TCP listener: the socket front-end of one spawned service.
pub(crate) struct TcpEndpoint {
    listener: Nudge,
    conn_ids: Arc<Mutex<Vec<u64>>>,
}

impl TcpEndpoint {
    /// Stop accepting and close every live connection. The listener
    /// deregisters on its shard's next loop iteration; connections see
    /// their sockets shut down immediately and their sources collect on
    /// the resulting readiness events.
    pub(crate) fn shutdown(self, conns: &ConnTable) {
        self.listener.close();
        for id in self.conn_ids.lock().drain(..) {
            conns.remove(id);
        }
    }
}

/// Accept loop as a reactor source: accepts until `EAGAIN`, registering
/// each connection as a [`ServerConn`] on some shard (round-robin).
struct ListenerSource {
    listener: TcpListener,
    inbox: Sender<LiveMsg>,
    conns: Arc<ConnTable>,
    tuning: TcpTuning,
    inline: Option<InlineHandler>,
    security: Arc<WireSecurity>,
    conn_ids: Arc<Mutex<Vec<u64>>>,
    active: Arc<AtomicUsize>,
    accept_errors: Arc<Counter>,
    conns_gauge: Arc<Gauge>,
    /// Consecutive fd-exhaustion sheds; scales the backoff 10 ms → 640 ms.
    shed_rounds: u32,
}

impl ListenerSource {
    /// Register one accepted connection with the reactor.
    fn admit(&self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let stream = Arc::new(stream);
        let read_half = Arc::clone(&stream);
        let (conn_id, handle) = self.conns.register(stream, self.tuning.max_frame);
        self.conn_ids.lock().push(conn_id);
        let live = self.active.fetch_add(1, Ordering::Relaxed) + 1;
        self.conns_gauge.set(live as u64);
        let reg = Reactor::global().bind(true);
        // The nudge must be reachable from the handle before the first
        // event can fire — that is what the reserve/activate split is for.
        let _ = handle.nudge.set(reg.nudge());
        reg.activate(
            Box::new(ServerConn {
                read_half,
                conn_id,
                handle,
                conns: Arc::clone(&self.conns),
                dec: FrameDecoder::with_max_frame(self.tuning.max_frame),
                inbox: self.inbox.clone(),
                inline: self.inline.clone(),
                security: Arc::clone(&self.security),
                authed: false,
                tuning: self.tuning,
                conn_ids: Arc::clone(&self.conn_ids),
                active: Arc::clone(&self.active),
                conns_gauge: Arc::clone(&self.conns_gauge),
                read_stall: None,
                write_stall: None,
            }),
            true,
            false,
            None,
        );
    }
}

impl EventSource for ListenerSource {
    fn fd(&self) -> RawFd {
        self.listener.as_raw_fd()
    }

    fn on_ready(&mut self, _readable: bool, _writable: bool, ctl: &mut Ctl<'_>) -> Keep {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    self.shed_rounds = 0;
                    if self.active.load(Ordering::Relaxed) >= self.tuning.max_conns {
                        // Slot-limited: refuse by closing immediately.
                        drop(stream);
                        continue;
                    }
                    self.admit(stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if is_fd_exhaustion(&e) => {
                    // Out of fds: shed *new* connections for a bounded
                    // backoff while existing connections keep serving.
                    // Pending accepts get kernel backlog treatment; the
                    // timer re-enables read interest.
                    self.accept_errors.bump();
                    self.shed_rounds = (self.shed_rounds + 1).min(6);
                    let delay = Duration::from_millis(10u64 << self.shed_rounds);
                    eprintln!(
                        "gis-core: accept shed ({e}); pausing accepts for {delay:?}, \
                         existing connections unaffected"
                    );
                    ctl.set_interest(false, false);
                    ctl.arm_timer(Instant::now() + delay);
                    return Keep::Keep;
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::ConnectionAborted | std::io::ErrorKind::Interrupted
                    ) =>
                {
                    // The peer gave up between SYN and accept: their
                    // problem, keep accepting.
                    self.accept_errors.bump();
                }
                Err(e) => {
                    // Fatal listener error: stop accepting. Connections
                    // already admitted are independent sources and keep
                    // serving.
                    self.accept_errors.bump();
                    eprintln!("gis-core: listener failed ({e}); no longer accepting");
                    return Keep::Drop;
                }
            }
        }
        Keep::Keep
    }

    fn on_timer(&mut self, ctl: &mut Ctl<'_>) -> Keep {
        // Shed backoff over: resume accepting.
        ctl.set_interest(true, false);
        Keep::Keep
    }

    fn on_attend(&mut self, _ctl: &mut Ctl<'_>) -> Keep {
        Keep::Keep
    }
}

/// One accepted connection's reactor state machine: decode frames into
/// the service inbox (or the inline handler), drain staged replies, trip
/// stall deadlines.
struct ServerConn {
    read_half: Arc<TcpStream>,
    conn_id: u64,
    handle: Arc<ConnHandle>,
    conns: Arc<ConnTable>,
    dec: FrameDecoder,
    inbox: Sender<LiveMsg>,
    inline: Option<InlineHandler>,
    security: Arc<WireSecurity>,
    /// Whether this connection completed the §7 handshake.
    authed: bool,
    tuning: TcpTuning,
    conn_ids: Arc<Mutex<Vec<u64>>>,
    active: Arc<AtomicUsize>,
    conns_gauge: Arc<Gauge>,
    /// Deadline for the currently incomplete inbound frame, if any.
    read_stall: Option<Instant>,
    /// Deadline for the current undrained reply backlog, if any.
    write_stall: Option<Instant>,
}

impl Drop for ServerConn {
    fn drop(&mut self) {
        // Runs on the shard thread whenever the source is dropped —
        // protocol error, EOF, deadline, or endpoint shutdown.
        (self.security.on_close)(self.conn_id);
        self.conns.remove(self.conn_id);
        self.conn_ids.lock().retain(|&id| id != self.conn_id);
        let live = self
            .active
            .fetch_sub(1, Ordering::Relaxed)
            .saturating_sub(1);
        self.conns_gauge.set(live as u64);
    }
}

impl ServerConn {
    /// Drain staged replies and track write interest + stall deadline.
    fn pump_writes(&mut self, ctl: &mut Ctl<'_>) -> Keep {
        match self.handle.drain() {
            WriteHealth::Dead => Keep::Drop,
            WriteHealth::Idle => {
                self.write_stall = None;
                ctl.set_interest(true, false);
                Keep::Keep
            }
            WriteHealth::Pending => {
                if self.write_stall.is_none() {
                    self.write_stall = Some(Instant::now() + self.tuning.write_deadline);
                }
                ctl.set_interest(true, true);
                Keep::Keep
            }
        }
    }

    /// Arm the earlier of the two stall deadlines (or clear).
    fn rearm(&self, ctl: &mut Ctl<'_>) {
        match [self.read_stall, self.write_stall]
            .into_iter()
            .flatten()
            .min()
        {
            Some(at) => ctl.arm_timer(at),
            None => ctl.clear_timer(),
        }
    }

    /// Run the server half of the §7 handshake for one inbound
    /// handshake frame. `false` drops the connection — every failure
    /// path stages an explanatory `Reject` first, so a well-behaved
    /// client learns *why* before the EOF.
    fn handle_handshake(&mut self, frame: Frame) -> bool {
        let ProtocolMessage::Handshake(Handshake::Hello { token }) = frame.msg else {
            // Welcome/Reject aimed at a server, or a second frame after
            // one of those: out of protocol order.
            return false;
        };
        if self.authed {
            return false; // one handshake per connection
        }
        let Some(auth) = &self.security.authenticator else {
            // This endpoint does not speak the handshake (anonymous
            // tier with no trust store): refuse the *connection*, not
            // the service — anonymous peers that never send a Hello are
            // unaffected.
            let _ = self.conns.send(
                self.conn_id,
                &ProtocolMessage::Handshake(Handshake::Reject {
                    code: ResultCode::UnwillingToPerform,
                }),
            );
            return false;
        };
        match auth.authenticate(&token) {
            Some(subject) => {
                self.authed = true;
                self.security.auth_ok.bump();
                (self.security.on_auth)(self.conn_id, &subject);
                // Mutual auth: prove our own identity by binding a
                // token to the name the client dialed. No credential
                // (authenticator-only endpoint) sends an empty token;
                // clients holding a trust store treat that as failure.
                let token = self
                    .security
                    .credential
                    .as_ref()
                    .map(|c| BindToken::create(c, &self.security.service_name).to_bytes())
                    .unwrap_or_default();
                self.conns.send(
                    self.conn_id,
                    &ProtocolMessage::Handshake(Handshake::Welcome { subject, token }),
                )
            }
            None => {
                self.security.auth_rejected.bump();
                (self.security.on_reject)(self.conn_id);
                let _ = self.conns.send(
                    self.conn_id,
                    &ProtocolMessage::Handshake(Handshake::Reject {
                        code: ResultCode::AuthRejected,
                    }),
                );
                false
            }
        }
    }
}

impl EventSource for ServerConn {
    fn fd(&self) -> RawFd {
        self.read_half.as_raw_fd()
    }

    fn on_ready(&mut self, readable: bool, _writable: bool, ctl: &mut Ctl<'_>) -> Keep {
        if readable {
            let mut rounds = 0;
            loop {
                match (&*self.read_half).read(ctl.scratch) {
                    Ok(0) => return Keep::Drop, // peer closed
                    Ok(n) => {
                        self.dec.feed(&ctl.scratch[..n]);
                        // Cork while draining the batch: inline replies
                        // to every frame in this read coalesce into a
                        // single write in pump_writes below.
                        self.handle.corked.fetch_add(1, Ordering::AcqRel);
                        let mut keep = true;
                        loop {
                            match self.dec.next_frame() {
                                Ok(Some(frame)) => {
                                    if frame.corr.is_some() {
                                        // The peer speaks the envelope;
                                        // echo it on replies from now on.
                                        self.handle.mux.store(true, Ordering::Relaxed);
                                    }
                                    if matches!(frame.msg, ProtocolMessage::Handshake(_)) {
                                        if !self.handle_handshake(frame) {
                                            keep = false;
                                            break;
                                        }
                                        continue;
                                    }
                                    if self.security.required && !self.authed {
                                        // §7: an authenticated-tier
                                        // endpoint refuses GRIP/GRRP
                                        // before the handshake. The
                                        // *connection* dies; the
                                        // service keeps serving.
                                        self.security.auth_gated.bump();
                                        keep = false;
                                        break;
                                    }
                                    if !dispatch_inbound(
                                        frame,
                                        self.conn_id,
                                        &self.inbox,
                                        self.inline.as_ref(),
                                    ) {
                                        keep = false;
                                        break;
                                    }
                                }
                                Ok(None) => break,
                                // Oversized or malformed frame: drop the
                                // connection cleanly; the sender sees EOF.
                                Err(_) => {
                                    keep = false;
                                    break;
                                }
                            }
                        }
                        self.handle.corked.fetch_sub(1, Ordering::AcqRel);
                        if !keep {
                            // Best effort: flush any staged handshake
                            // Reject so the peer learns why before the
                            // EOF. A blocked socket just drops it.
                            let _ = self.handle.drain();
                            return Keep::Drop;
                        }
                        rounds += 1;
                        if n < ctl.scratch.len() || rounds >= READS_PER_WAKE {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => return Keep::Drop,
                }
            }
            // Half a frame, then silence, trips the slow-peer deadline
            // and frees the connection slot; a complete frame clears it.
            self.read_stall = if self.dec.mid_frame() {
                Some(
                    self.read_stall
                        .unwrap_or_else(|| Instant::now() + self.tuning.read_deadline),
                )
            } else {
                None
            };
        }
        if self.pump_writes(ctl) == Keep::Drop {
            return Keep::Drop;
        }
        self.rearm(ctl);
        Keep::Keep
    }

    fn on_timer(&mut self, ctl: &mut Ctl<'_>) -> Keep {
        let now = Instant::now();
        if self.read_stall.is_some_and(|at| now >= at) {
            return Keep::Drop; // wedged mid-frame
        }
        if self.write_stall.is_some_and(|at| now >= at) {
            return Keep::Drop; // peer stopped draining our replies
        }
        self.rearm(ctl);
        Keep::Keep
    }

    fn on_attend(&mut self, ctl: &mut Ctl<'_>) -> Keep {
        // A writer thread staged bytes it could not finish writing.
        if self.pump_writes(ctl) == Keep::Drop {
            return Keep::Drop;
        }
        self.rearm(ctl);
        Keep::Keep
    }
}

/// Translate one decoded frame into the same `LiveMsg` the in-process
/// transport would deliver — unless the inline handler answers it on
/// this thread. Returns `false` when the connection must be dropped
/// (service gone, or the peer sent a frame a server never accepts).
fn dispatch_inbound(
    frame: Frame,
    conn_id: u64,
    inbox: &Sender<LiveMsg>,
    inline: Option<&InlineHandler>,
) -> bool {
    let corr = frame.corr;
    let (trace, inner) = frame.msg.untraced();
    let live = match inner {
        ProtocolMessage::Request(request) => {
            // A mislabeled envelope (corr disagreeing with the id the
            // reply would echo) can never be answered correctly; drop
            // the frame, keep the connection.
            if corr.is_some_and(|c| c != request.id()) {
                return true;
            }
            let request = match inline {
                Some(handler) => match handler(conn_id, request, trace) {
                    None => return true, // answered on this thread
                    Some(owner_work) => owner_work,
                },
                None => request,
            };
            LiveMsg::Request {
                from: Address::Tcp(conn_id),
                request,
                trace,
                enqueued: Instant::now(),
            }
        }
        ProtocolMessage::Grrp(m) => LiveMsg::Grrp(m, Some(Address::Tcp(conn_id))),
        // A server-side connection carries requests and registrations;
        // an unsolicited Reply is a protocol violation, and a
        // handshake frame reaching dispatch (a second Hello after the
        // connection authenticated, or a client-side Welcome/Reject
        // aimed at a server) is out of protocol order.
        ProtocolMessage::Reply(_)
        | ProtocolMessage::Traced { .. }
        | ProtocolMessage::Handshake(_) => return false,
    };
    inbox.send(live).is_ok()
}

/// What one outbound request produced.
pub(crate) type OutboundResult = Result<GripReply, TransportError>;

/// Why an outbound request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum TransportError {
    /// Could not dial the peer.
    Connect,
    /// The connection dropped (or desynced) before a full reply arrived.
    Dropped,
    /// No full reply within the read deadline (or no in-flight slot
    /// within the write deadline).
    Timeout,
}

/// Completion callback for one outbound request.
pub(crate) type ReplySink = Box<dyn FnOnce(OutboundResult) + Send + 'static>;

/// One in-flight request on a multiplexed connection.
struct MuxPending {
    sink: ReplySink,
    /// The GRIP id the caller used, restored onto the reply.
    original: u64,
    deadline: Instant,
}

/// Writer-half lifecycle of a multiplexed connection.
enum WireState {
    /// The nonblocking connect has not completed; submitted frames stage
    /// in `queued` and flush on connection.
    Dialing,
    /// Connected: whoever drains writes through this socket (shared
    /// with the shard's reader — one fd per connection).
    Up(Arc<TcpStream>),
    /// Killed; every submit fails fast.
    Dead,
}

/// Shared state of one multiplexed persistent connection: many
/// submitting threads, one reactor shard that completes the dial then
/// reads replies and fires deadlines.
struct MuxConn {
    tuning: TcpTuning,
    state: Mutex<WireState>,
    /// Staged frames: pre-connect backlog and the coalescing buffer.
    queued: Mutex<bytes::BytesMut>,
    /// In-flight requests keyed by correlation id; its lock also guards
    /// the depth gate (`gate` waits on it).
    pending: Mutex<HashMap<u64, MuxPending>>,
    gate: Condvar,
    alive: AtomicBool,
    next_corr: AtomicU64,
    /// Cork count (see [`TcpOutbound::cork_all`]): while non-zero,
    /// [`drain`](Self::drain) stages submitted frames instead of
    /// writing, so a burst of requests coalesces into one write.
    corked: AtomicUsize,
    /// Handle to the shard that owns this connection's socket, set
    /// before the source is activated.
    nudge: OnceLock<Nudge>,
    /// When set, the server's `Welcome` token must verify against this
    /// authenticator (mutual auth); an empty or forged token drops the
    /// connection.
    verify: Option<Authenticator>,
}

impl MuxConn {
    /// Create the connection state, begin a nonblocking dial, and
    /// register it with the reactor. A peer that cannot even be resolved
    /// or a socket that cannot be created kills the connection
    /// immediately (callers see `Connect` failures fast). With `hello`
    /// set, a §7 `Hello` frame is staged ahead of any traffic, so the
    /// handshake rides the same initial burst as the first request.
    fn spawn(
        peer: &str,
        tuning: TcpTuning,
        closed: Arc<AtomicBool>,
        hello: Option<ClientHello>,
    ) -> Arc<MuxConn> {
        let (hello_token, verify) = match hello {
            Some(h) => (Some(h.token), h.verify),
            None => (None, None),
        };
        let conn = Arc::new(MuxConn {
            tuning,
            state: Mutex::new(WireState::Dialing),
            queued: Mutex::new(bytes::BytesMut::new()),
            pending: Mutex::new(HashMap::new()),
            gate: Condvar::new(),
            alive: AtomicBool::new(true),
            next_corr: AtomicU64::new(0),
            corked: AtomicUsize::new(0),
            nudge: OnceLock::new(),
            verify,
        });
        if let Some(token) = hello_token {
            // Plain-framed: the handshake predates any envelope
            // negotiation and expects no correlated reply.
            let mut q = conn.queued.lock();
            let _ = encode_frame_limited(
                &ProtocolMessage::Handshake(Handshake::Hello { token }),
                &mut q,
                tuning.max_frame,
            );
        }
        let sock = resolve(peer).and_then(|addr| connect_nonblocking(&addr).ok());
        let Some((sock, _immediate)) = sock else {
            conn.kill(TransportError::Connect);
            return conn;
        };
        let _ = sock.set_nodelay(true);
        let sock = Arc::new(sock);
        let connect_deadline = Instant::now() + tuning.connect_timeout;
        let reg = Reactor::global().bind(true);
        let _ = conn.nudge.set(reg.nudge());
        reg.activate(
            Box::new(OutboundSource {
                conn: Arc::clone(&conn),
                sock,
                dec: FrameDecoder::with_max_frame(tuning.max_frame),
                closed,
                connected: false,
                connect_deadline,
                write_stall: None,
            }),
            false,
            true, // connect completion reports as writability
            Some(connect_deadline),
        );
        conn
    }

    /// Match one inbound frame to its caller. `false` means protocol
    /// violation (drop the connection); mismatched, duplicate and
    /// unknown correlation ids drop the *frame* only.
    fn on_frame(&self, frame: Frame) -> bool {
        if let ProtocolMessage::Handshake(h) = &frame.msg {
            return match h {
                // Mutual auth: with a trust store configured, the
                // server must prove its identity; without one we accept
                // the Welcome on faith (authenticated-client-only).
                Handshake::Welcome { token, .. } => match &self.verify {
                    Some(auth) => auth.authenticate(token).is_some(),
                    None => true,
                },
                // Reject (or a nonsensical client-bound Hello): the
                // server will not serve us — kill the connection so
                // every pending request fails and the breaker counts.
                _ => false,
            };
        }
        let ProtocolMessage::Reply(mut reply) = frame.msg else {
            return false;
        };
        let key = reply.id();
        if frame.corr.is_some_and(|c| c != key) {
            return true; // mislabeled envelope: not answerable, drop it
        }
        // An unknown or duplicate id is a late reply: drop the frame.
        if let Some(p) = self.pending.lock().remove(&key) {
            self.gate.notify_all();
            reply.set_id(p.original);
            (p.sink)(Ok(reply));
        }
        true
    }

    /// Fire timed-out in-flight requests. The connection stays up:
    /// framing is self-describing, so a late reply is simply dropped as
    /// unknown when it eventually lands.
    fn reap_expired(&self) {
        let now = Instant::now();
        let fired: Vec<MuxPending> = {
            let mut pending = self.pending.lock();
            let expired: Vec<u64> = pending
                .iter()
                .filter(|(_, p)| now >= p.deadline)
                .map(|(k, _)| *k)
                .collect();
            expired
                .into_iter()
                .filter_map(|k| pending.remove(&k))
                .collect()
        };
        if !fired.is_empty() {
            self.gate.notify_all();
            for p in fired {
                (p.sink)(Err(TransportError::Timeout));
            }
        }
    }

    /// Earliest in-flight reply deadline, for the shard's timer.
    fn earliest_deadline(&self) -> Option<Instant> {
        self.pending.lock().values().map(|p| p.deadline).min()
    }

    /// Register `frame` as an in-flight request (rewriting its GRIP id
    /// into the correlation space) and stage its bytes for writing.
    fn submit(&self, mut frame: ProtocolMessage, sink: ReplySink) {
        let deadline = Instant::now() + self.tuning.read_deadline;
        let corr = {
            let mut pending = self.pending.lock();
            while pending.len() >= self.tuning.mux_depth {
                if Reactor::on_reactor_thread() {
                    // Never park a shard thread on backpressure: every
                    // connection the shard owns would stall behind it.
                    // Briefly exceeding mux_depth is the lesser evil.
                    break;
                }
                if !self.alive.load(Ordering::Relaxed) {
                    drop(pending);
                    sink(Err(TransportError::Dropped));
                    return;
                }
                let (guard, wait) = self
                    .gate
                    .wait_timeout(pending, self.tuning.write_deadline)
                    .unwrap_or_else(|e| e.into_inner());
                pending = guard;
                if wait.timed_out() && pending.len() >= self.tuning.mux_depth {
                    drop(pending);
                    sink(Err(TransportError::Timeout));
                    return;
                }
            }
            if !self.alive.load(Ordering::Relaxed) {
                drop(pending);
                sink(Err(TransportError::Dropped));
                return;
            }
            let corr = self.next_corr.fetch_add(1, Ordering::Relaxed) + 1;
            let Some(original) = rewrite_request_id(&mut frame, corr) else {
                drop(pending);
                sink(Err(TransportError::Dropped));
                return;
            };
            pending.insert(
                corr,
                MuxPending {
                    sink,
                    original,
                    deadline,
                },
            );
            corr
        };
        let encoded = {
            let mut q = self.queued.lock();
            encode_mux_frame_limited(corr, &frame, &mut q, self.tuning.max_frame).is_ok()
        };
        if !encoded || !self.flush() {
            // Fire our own sink (unless a concurrent kill already did)
            // and retire the connection.
            if let Some(p) = self.pending.lock().remove(&corr) {
                (p.sink)(Err(TransportError::Dropped));
            }
            self.kill(TransportError::Dropped);
            return;
        }
        // Ask the owning shard to fold this request's reply deadline
        // into its timer (and finish any partial write).
        if let Some(nudge) = self.nudge.get() {
            nudge.attend();
        }
    }

    /// Stage a one-way frame (GRRP notification) — plain framing, no
    /// envelope, no reply expected.
    fn submit_oneway(&self, frame: &ProtocolMessage) {
        let encoded = {
            let mut q = self.queued.lock();
            encode_frame_limited(frame, &mut q, self.tuning.max_frame).is_ok()
        };
        if !encoded || !self.flush() {
            self.kill(TransportError::Dropped);
        }
    }

    /// Nonblocking drain of `queued` through the writer half. Staging is
    /// success while dialing or corked (the shard flushes on connect;
    /// the uncork writes the burst).
    fn drain(&self) -> WriteHealth {
        let mut st = self.state.lock();
        match &mut *st {
            WireState::Dialing => WriteHealth::Idle,
            WireState::Dead => WriteHealth::Dead,
            WireState::Up(stream) => {
                if self.corked.load(Ordering::Acquire) > 0 {
                    return WriteHealth::Idle;
                }
                let mut q = self.queued.lock();
                while !q.is_empty() {
                    match (&**stream).write(&q[..]) {
                        Ok(0) => return WriteHealth::Dead,
                        Ok(n) => q.advance(n),
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            return WriteHealth::Pending
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(_) => return WriteHealth::Dead,
                    }
                }
                WriteHealth::Idle
            }
        }
    }

    /// Writer-thread drain: `true` while the connection is usable. A
    /// partial write stages the remainder and nudges the owning shard.
    fn flush(&self) -> bool {
        match self.drain() {
            WriteHealth::Dead => false,
            WriteHealth::Idle => true,
            WriteHealth::Pending => {
                if let Some(nudge) = self.nudge.get() {
                    nudge.attend();
                }
                true
            }
        }
    }

    /// Tear the connection down: every in-flight and future request
    /// fails with `err`. Idempotent.
    fn kill(&self, err: TransportError) {
        if !self.alive.swap(false, Ordering::Relaxed) {
            return;
        }
        {
            let mut st = self.state.lock();
            if let WireState::Up(stream) = &*st {
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
            *st = WireState::Dead;
        }
        self.queued.lock().clear();
        let fired: Vec<MuxPending> = {
            let mut pending = self.pending.lock();
            pending.drain().map(|(_, p)| p).collect()
        };
        self.gate.notify_all();
        for p in fired {
            (p.sink)(Err(err.clone()));
        }
        // Let the owning shard collect the source (and close the fd)
        // promptly instead of waiting for a readiness event.
        if let Some(nudge) = self.nudge.get() {
            nudge.attend();
        }
    }
}

/// Reactor state machine for one outbound connection: complete the
/// nonblocking dial, then read replies, drain staged requests, and fire
/// per-request deadlines off the shard's timer wheel.
struct OutboundSource {
    conn: Arc<MuxConn>,
    sock: Arc<TcpStream>,
    dec: FrameDecoder,
    closed: Arc<AtomicBool>,
    connected: bool,
    connect_deadline: Instant,
    /// Deadline for the current undrained request backlog, if any.
    write_stall: Option<Instant>,
}

impl OutboundSource {
    /// Writability during `Dialing`: the connect finished — check
    /// `SO_ERROR` and promote to `Up` (or kill).
    fn complete_connect(&mut self) -> bool {
        if take_socket_error(&self.sock).is_err() {
            self.conn.kill(TransportError::Connect);
            return false;
        }
        {
            let mut st = self.conn.state.lock();
            if matches!(*st, WireState::Dead) {
                return false; // killed while dialing
            }
            *st = WireState::Up(Arc::clone(&self.sock));
        }
        self.connected = true;
        true
    }

    /// Drain staged requests and track write interest + stall deadline.
    /// Only meaningful once connected.
    fn pump_writes(&mut self, ctl: &mut Ctl<'_>) -> Keep {
        match self.conn.drain() {
            WriteHealth::Dead => {
                self.conn.kill(TransportError::Dropped);
                Keep::Drop
            }
            WriteHealth::Idle => {
                self.write_stall = None;
                ctl.set_interest(true, false);
                Keep::Keep
            }
            WriteHealth::Pending => {
                if self.write_stall.is_none() {
                    self.write_stall = Some(Instant::now() + self.conn.tuning.write_deadline);
                }
                ctl.set_interest(true, true);
                Keep::Keep
            }
        }
    }

    /// Arm the earliest relevant deadline: connect (while dialing),
    /// earliest in-flight reply, write stall.
    fn rearm(&self, ctl: &mut Ctl<'_>) {
        let mut at = if self.connected {
            None
        } else {
            Some(self.connect_deadline)
        };
        for cand in [self.conn.earliest_deadline(), self.write_stall]
            .into_iter()
            .flatten()
        {
            at = Some(at.map_or(cand, |a: Instant| a.min(cand)));
        }
        match at {
            Some(at) => ctl.arm_timer(at),
            None => ctl.clear_timer(),
        }
    }
}

impl EventSource for OutboundSource {
    fn fd(&self) -> RawFd {
        self.sock.as_raw_fd()
    }

    fn on_ready(&mut self, readable: bool, _writable: bool, ctl: &mut Ctl<'_>) -> Keep {
        if self.closed.load(Ordering::Relaxed) || !self.conn.alive.load(Ordering::Relaxed) {
            self.conn.kill(TransportError::Dropped);
            return Keep::Drop;
        }
        if !self.connected && !self.complete_connect() {
            return Keep::Drop;
        }
        if readable {
            let mut rounds = 0;
            loop {
                match (&*self.sock).read(ctl.scratch) {
                    Ok(0) => {
                        self.conn.kill(TransportError::Dropped);
                        return Keep::Drop;
                    }
                    Ok(n) => {
                        self.dec.feed(&ctl.scratch[..n]);
                        loop {
                            match self.dec.next_frame() {
                                Ok(Some(frame)) => {
                                    if !self.conn.on_frame(frame) {
                                        self.conn.kill(TransportError::Dropped);
                                        return Keep::Drop;
                                    }
                                }
                                Ok(None) => break,
                                Err(_) => {
                                    // Poisoned decoder: the stream is out
                                    // of sync; drop it, never
                                    // resynchronize.
                                    self.conn.kill(TransportError::Dropped);
                                    return Keep::Drop;
                                }
                            }
                        }
                        rounds += 1;
                        if n < ctl.scratch.len() || rounds >= READS_PER_WAKE {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        self.conn.kill(TransportError::Dropped);
                        return Keep::Drop;
                    }
                }
            }
            self.conn.reap_expired();
            if !self.conn.alive.load(Ordering::Relaxed) {
                return Keep::Drop;
            }
        }
        if self.pump_writes(ctl) == Keep::Drop {
            return Keep::Drop;
        }
        self.rearm(ctl);
        Keep::Keep
    }

    fn on_timer(&mut self, ctl: &mut Ctl<'_>) -> Keep {
        if self.closed.load(Ordering::Relaxed) || !self.conn.alive.load(Ordering::Relaxed) {
            self.conn.kill(TransportError::Dropped);
            return Keep::Drop;
        }
        let now = Instant::now();
        if !self.connected {
            if now >= self.connect_deadline {
                self.conn.kill(TransportError::Connect);
                return Keep::Drop;
            }
            // An in-flight deadline fired before the dial finished.
            self.conn.reap_expired();
            self.rearm(ctl);
            return Keep::Keep;
        }
        self.conn.reap_expired();
        if !self.conn.alive.load(Ordering::Relaxed) {
            return Keep::Drop;
        }
        if self.write_stall.is_some_and(|at| now >= at) {
            // The peer stopped draining our requests.
            self.conn.kill(TransportError::Dropped);
            return Keep::Drop;
        }
        self.rearm(ctl);
        Keep::Keep
    }

    fn on_attend(&mut self, ctl: &mut Ctl<'_>) -> Keep {
        // A submitter staged bytes / armed a deadline, or kill() wants
        // the fd collected.
        if self.closed.load(Ordering::Relaxed) || !self.conn.alive.load(Ordering::Relaxed) {
            self.conn.kill(TransportError::Dropped);
            return Keep::Drop;
        }
        if !self.connected {
            // Still dialing: keep write interest for the connect; the
            // staged bytes flush on promotion to Up.
            self.rearm(ctl);
            return Keep::Keep;
        }
        if self.pump_writes(ctl) == Keep::Drop {
            return Keep::Drop;
        }
        self.rearm(ctl);
        Keep::Keep
    }
}

/// Round-robin ring of persistent connections to one peer.
struct PeerRing {
    conns: Vec<Option<Arc<MuxConn>>>,
    rr: usize,
}

/// Multiplexing TCP client shared by a runtime (GIIS chaining, GRRP
/// registration streams) and by standalone [`LiveClient`]
/// (crate::live::LiveClient) handles in client-only processes. Keeps
/// `conns_per_peer` persistent connections per `host:port` peer, each
/// carrying up to `mux_depth` concurrent requests; a dead connection is
/// replaced on the next submit (so a failed dial stays cheap to retry
/// and the circuit breaker sees every failure).
pub(crate) struct TcpOutbound {
    peers: Mutex<HashMap<String, PeerRing>>,
    tuning: TcpTuning,
    closed: Arc<AtomicBool>,
    /// Client-side §7 identity: when a credential is present every new
    /// connection leads with a bound `Hello`.
    security: Mutex<OutboundSecurity>,
}

impl Default for TcpOutbound {
    fn default() -> TcpOutbound {
        TcpOutbound::new(TcpTuning::default())
    }
}

impl TcpOutbound {
    pub(crate) fn new(tuning: TcpTuning) -> TcpOutbound {
        TcpOutbound {
            peers: Mutex::new(HashMap::new()),
            tuning,
            closed: Arc::new(AtomicBool::new(false)),
            security: Mutex::new(OutboundSecurity::default()),
        }
    }

    /// Install the outbound identity. Existing connections keep their
    /// tier; new dials lead with a `Hello` bound to the dialed peer.
    pub(crate) fn set_security(&self, sec: OutboundSecurity) {
        *self.security.lock() = sec;
    }

    /// Fire-and-forget a frame (GRRP notifications). Connection errors
    /// are the soft-state protocol's problem: a lost registration is
    /// re-sent at the next refresh interval.
    pub(crate) fn oneway(&self, peer: &str, frame: ProtocolMessage) {
        if self.closed.load(Ordering::Relaxed) {
            return;
        }
        self.conn_for(peer).submit_oneway(&frame);
    }

    /// Send a request frame and hand the single reply frame (or the
    /// failure) to `sink`, asynchronously.
    pub(crate) fn request(&self, peer: &str, frame: ProtocolMessage, sink: ReplySink) {
        if self.closed.load(Ordering::Relaxed) {
            sink(Err(TransportError::Dropped));
            return;
        }
        self.conn_for(peer).submit(frame, sink);
    }

    /// Tear down every connection and fail every in-flight request.
    pub(crate) fn close(&self) {
        self.closed.store(true, Ordering::Relaxed);
        let rings: Vec<PeerRing> = {
            let mut peers = self.peers.lock();
            peers.drain().map(|(_, ring)| ring).collect()
        };
        for ring in rings {
            for conn in ring.conns.into_iter().flatten() {
                conn.kill(TransportError::Dropped);
            }
        }
    }

    /// Cork every live connection until the returned guard drops:
    /// requests submitted in between stage their frames, and the uncork
    /// writes each connection's burst in one go. Lets an owner thread
    /// draining an inbox batch (GIIS chain fan-out) pay one write per
    /// child connection instead of one per sub-query.
    pub(crate) fn cork_all(&self) -> OutboundCork {
        let conns: Vec<Arc<MuxConn>> = {
            let peers = self.peers.lock();
            peers
                .values()
                .flat_map(|ring| ring.conns.iter().flatten().cloned())
                .collect()
        };
        for conn in &conns {
            conn.corked.fetch_add(1, Ordering::AcqRel);
        }
        OutboundCork { conns }
    }

    /// The live connection for `peer` this request should ride — round
    /// robin across the ring, replacing dead slots.
    fn conn_for(&self, peer: &str) -> Arc<MuxConn> {
        let mut peers = self.peers.lock();
        let width = self.tuning.conns_per_peer.max(1);
        let ring = peers.entry(peer.to_owned()).or_insert_with(|| PeerRing {
            conns: vec![None; width],
            rr: 0,
        });
        ring.rr = (ring.rr + 1) % ring.conns.len();
        let slot = ring.rr;
        match &ring.conns[slot] {
            Some(conn) if conn.alive.load(Ordering::Relaxed) => Arc::clone(conn),
            _ => {
                let hello = self.security.lock().hello_for(peer);
                let conn = MuxConn::spawn(peer, self.tuning, Arc::clone(&self.closed), hello);
                ring.conns[slot] = Some(Arc::clone(&conn));
                conn
            }
        }
    }
}

/// RAII cork over the pooled connections that existed when
/// [`TcpOutbound::cork_all`] ran (a connection dialed mid-cork writes
/// directly, which is merely unbatched). Dropping uncorks and flushes;
/// a connection whose flush fails is torn down exactly as a failed
/// direct write would be.
pub(crate) struct OutboundCork {
    conns: Vec<Arc<MuxConn>>,
}

impl Drop for OutboundCork {
    fn drop(&mut self) {
        for conn in &self.conns {
            conn.corked.fetch_sub(1, Ordering::AcqRel);
            if !conn.flush() {
                conn.kill(TransportError::Dropped);
            }
        }
    }
}

/// Resolve `host:port` to the first socket address.
pub(crate) fn resolve(peer: &str) -> Option<SocketAddr> {
    peer.to_socket_addrs().ok()?.next()
}

/// Why [`ClientConn::recv`] returned no message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RecvFail {
    /// Deadline passed with no complete frame.
    Timeout,
    /// Connection closed or desynced; the caller must reconnect.
    Closed,
}

/// A client's single persistent connection to one endpoint. Carries a
/// full client session: pipelined requests out, any number of replies
/// and subscription updates back, in whatever order the service produces
/// them — the socket analogue of a [`LiveClient`]
/// (crate::live::LiveClient) reply channel. Deliberately **blocking**:
/// a client session is one caller waiting on its own socket, which is
/// exactly the case threads are good at; the reactor exists for the
/// N-connection sides (endpoint, outbound pool). Requests go out in the
/// mux envelope (correlation id = the request's own GRIP id, which is
/// already unique per session); inbound frames tolerate both enveloped
/// and plain framing, dropping any whose envelope disagrees with the
/// reply id it carries.
pub(crate) struct ClientConn {
    stream: TcpStream,
    dec: FrameDecoder,
    /// Reused read buffer: one allocation per connection, not per recv.
    chunk: Vec<u8>,
    /// Reused encode buffer for outgoing frames; while corked it
    /// accumulates a burst that [`uncork`](Self::uncork) writes at once.
    ebuf: bytes::BytesMut,
    corked: bool,
}

impl ClientConn {
    /// Dial `peer` (`host:port`) under `tuning`'s connect deadline.
    pub(crate) fn connect(peer: &str, tuning: TcpTuning) -> std::io::Result<ClientConn> {
        let addr = resolve(peer).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("bad peer {peer:?}"),
            )
        })?;
        let stream = TcpStream::connect_timeout(&addr, tuning.connect_timeout)?;
        stream.set_nodelay(true)?;
        stream.set_write_timeout(Some(tuning.write_deadline))?;
        stream.set_read_timeout(Some(SHUTDOWN_POLL))?;
        Ok(ClientConn {
            stream,
            dec: FrameDecoder::with_max_frame(tuning.max_frame),
            chunk: vec![0u8; READ_CHUNK],
            ebuf: bytes::BytesMut::new(),
            corked: false,
        })
    }

    /// Dial `peer` and, when `security` carries a credential, run the
    /// §7 handshake before returning: send a bound `Hello`, block for
    /// the server's verdict, and verify its `Welcome` token against the
    /// trust store (when one is configured). Returns the connection and
    /// the measured handshake round-trip (`None` for anonymous dials).
    /// A `Reject` (or unverifiable server identity) surfaces as
    /// `PermissionDenied`.
    pub(crate) fn connect_secured(
        peer: &str,
        tuning: TcpTuning,
        security: &SecurityPolicy,
    ) -> std::io::Result<(ClientConn, Option<Duration>)> {
        let mut conn = ClientConn::connect(peer, tuning)?;
        let outbound = OutboundSecurity::from_policy(security);
        let Some(hello) = outbound.hello_for(peer) else {
            return Ok((conn, None));
        };
        let denied = |why: &str| {
            std::io::Error::new(
                std::io::ErrorKind::PermissionDenied,
                format!("handshake with {peer}: {why}"),
            )
        };
        let started = Instant::now();
        if !conn.send(
            &ProtocolMessage::Handshake(Handshake::Hello { token: hello.token }),
            tuning.max_frame,
        ) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                format!("handshake with {peer}: connection closed"),
            ));
        }
        match conn.recv(tuning.read_deadline) {
            Ok(ProtocolMessage::Handshake(Handshake::Welcome { token, .. })) => {
                if let Some(auth) = &hello.verify {
                    if auth.authenticate(&token).is_none() {
                        return Err(denied("server identity unverifiable"));
                    }
                }
                Ok((conn, Some(started.elapsed())))
            }
            Ok(ProtocolMessage::Handshake(Handshake::Reject { code })) => Err(denied(code.label())),
            Ok(_) => Err(denied("out-of-order reply before handshake")),
            Err(RecvFail::Timeout) => Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                format!("handshake with {peer}: no verdict"),
            )),
            Err(RecvFail::Closed) => Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                format!("handshake with {peer}: connection closed"),
            )),
        }
    }

    /// Start staging outgoing frames instead of writing each one: a
    /// pipelined burst becomes a single `write(2)` at
    /// [`uncork`](Self::uncork).
    pub(crate) fn cork(&mut self) {
        self.corked = true;
    }

    /// Write everything staged since [`cork`](Self::cork) in one go.
    /// `false` means the connection is dead. No-op when not corked (a
    /// mid-burst redial hands out a fresh, uncorked connection).
    pub(crate) fn uncork(&mut self) -> bool {
        if !self.corked {
            return true;
        }
        self.corked = false;
        if self.ebuf.is_empty() {
            return true;
        }
        let ok = self.stream.write_all(&self.ebuf).is_ok() && self.stream.flush().is_ok();
        self.ebuf.clear();
        ok
    }

    /// Encode and send one frame (staged while corked). `false` means
    /// the connection is dead.
    pub(crate) fn send(&mut self, msg: &ProtocolMessage, max_frame: usize) -> bool {
        if !self.corked {
            self.ebuf.clear();
        }
        let encoded = match request_corr(msg) {
            Some(corr) => encode_mux_frame_limited(corr, msg, &mut self.ebuf, max_frame).is_ok(),
            None => encode_frame_limited(msg, &mut self.ebuf, max_frame).is_ok(),
        };
        if !encoded {
            return false;
        }
        if self.corked {
            return true;
        }
        self.stream.write_all(&self.ebuf).is_ok() && self.stream.flush().is_ok()
    }

    /// Receive the next frame, waiting up to `timeout`. Frames whose
    /// envelope contradicts the reply they carry are dropped without
    /// closing the session.
    pub(crate) fn recv(&mut self, timeout: Duration) -> Result<ProtocolMessage, RecvFail> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.dec.next_frame() {
                Ok(Some(frame)) => {
                    match frame.corr {
                        Some(c) if reply_corr(&frame.msg) != Some(c) => {
                            continue; // mislabeled envelope: drop frame
                        }
                        _ => return Ok(frame.msg),
                    }
                }
                Ok(None) => {}
                Err(_) => return Err(RecvFail::Closed),
            }
            if Instant::now() >= deadline {
                return Err(RecvFail::Timeout);
            }
            match self.stream.read(&mut self.chunk) {
                Ok(0) => return Err(RecvFail::Closed),
                Ok(n) => self.dec.feed(&self.chunk[..n]),
                Err(e) if is_timeout(&e) => {}
                Err(_) => return Err(RecvFail::Closed),
            }
        }
    }
}

/// Correlation id for an outgoing client-session request: its own GRIP
/// id (unique per session).
fn request_corr(msg: &ProtocolMessage) -> Option<u64> {
    match msg {
        ProtocolMessage::Request(r) => Some(r.id()),
        ProtocolMessage::Traced { inner, .. } => request_corr(inner),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_ldap::{Dn, Entry};
    use gis_proto::grip::{ResultCode, SearchSpec};
    use gis_proto::MAX_FRAME;
    use std::sync::mpsc;

    /// A scripted loopback server: accepts one connection, reads `n`
    /// requests, then answers them in the order `plan` dictates
    /// (indices into arrival order), optionally preceded by junk frames
    /// that a correct client must drop without failing real callers.
    fn scripted_server(
        n: usize,
        plan: Vec<usize>,
        inject_junk: bool,
    ) -> (String, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut dec = FrameDecoder::new();
            let mut got: Vec<(u64, Dn)> = Vec::new();
            let mut chunk = [0u8; 4096];
            while got.len() < n {
                let read = stream.read(&mut chunk).unwrap();
                assert_ne!(read, 0, "client hung up early");
                dec.feed(&chunk[..read]);
                while let Some(frame) = dec.next_frame().unwrap() {
                    let corr = frame.corr.expect("outbound requests are enveloped");
                    let ProtocolMessage::Request(GripRequest::Search { id, spec }) = frame.msg
                    else {
                        panic!("expected a search request");
                    };
                    assert_eq!(corr, id, "correlation id is the rewritten GRIP id");
                    got.push((id, spec.base.clone()));
                }
            }
            let mut out = bytes::BytesMut::new();
            if inject_junk {
                // Unknown correlation id: must be dropped.
                let stray = ProtocolMessage::Reply(GripReply::SearchResult {
                    id: 0xDEAD_BEEF,
                    code: ResultCode::Success,
                    entries: vec![],
                    referrals: vec![],
                });
                encode_mux_frame_limited(0xDEAD_BEEF, &stray, &mut out, MAX_FRAME).unwrap();
                // Envelope contradicting the reply id: must be dropped.
                let (first_id, first_dn) = got[0].clone();
                let mislabeled = ProtocolMessage::Reply(GripReply::SearchResult {
                    id: 0xBAD,
                    code: ResultCode::Success,
                    entries: vec![Entry::at(&first_dn.to_string()).unwrap()],
                    referrals: vec![],
                });
                encode_mux_frame_limited(first_id, &mislabeled, &mut out, MAX_FRAME).unwrap();
            }
            for &slot in &plan {
                let (id, dn) = got[slot].clone();
                let reply = ProtocolMessage::Reply(GripReply::SearchResult {
                    id,
                    code: ResultCode::Success,
                    entries: vec![Entry::at(&dn.to_string()).unwrap()],
                    referrals: vec![],
                });
                encode_mux_frame_limited(id, &reply, &mut out, MAX_FRAME).unwrap();
                if inject_junk && slot == plan[0] {
                    // Duplicate of an already-consumed id: must be
                    // dropped, not double-delivered.
                    encode_mux_frame_limited(id, &reply, &mut out, MAX_FRAME).unwrap();
                }
            }
            stream.write_all(&out).unwrap();
            // Hold the socket open until the client is done reading.
            let _ = stream.read(&mut chunk);
        });
        (addr, handle)
    }

    /// Drive `n` concurrent requests through one multiplexed connection
    /// against a server replying in `plan` order; assert every caller
    /// gets exactly its own reply.
    fn run_mux_exchange(n: usize, plan: Vec<usize>, inject_junk: bool) {
        let (addr, server) = scripted_server(n, plan, inject_junk);
        let out = TcpOutbound::new(TcpTuning {
            mux_depth: n.max(1),
            ..TcpTuning::default()
        });
        let (tx, rx) = mpsc::channel::<(u64, OutboundResult)>();
        for i in 0..n {
            let req = ProtocolMessage::Request(GripRequest::Search {
                // Deliberately colliding GRIP ids across callers: the
                // correlation space must keep them apart.
                id: 100 + (i as u64 % 3),
                spec: SearchSpec::lookup(Dn::parse(&format!("hn=h{i}")).unwrap()),
            });
            let tx = tx.clone();
            let marker = i as u64;
            out.request(
                &addr,
                req,
                Box::new(move |res| {
                    let _ = tx.send((marker, res));
                }),
            );
        }
        drop(tx);
        let mut seen = 0;
        while let Ok((marker, res)) = rx.recv() {
            let reply = res.expect("caller must get its reply");
            let GripReply::SearchResult { id, entries, .. } = reply else {
                panic!("expected a search result");
            };
            assert_eq!(id, 100 + (marker % 3), "original GRIP id restored");
            assert_eq!(
                entries[0].dn().to_string(),
                format!("hn=h{marker}"),
                "caller {marker} got someone else's reply"
            );
            seen += 1;
        }
        assert_eq!(seen, n);
        out.close();
        server.join().unwrap();
    }

    #[test]
    fn pipelined_requests_match_out_of_order_replies() {
        run_mux_exchange(6, vec![5, 0, 3, 1, 4, 2], false);
    }

    #[test]
    fn junk_frames_dropped_without_poisoning_callers() {
        run_mux_exchange(4, vec![1, 0, 3, 2], true);
    }

    #[test]
    fn per_request_timeout_keeps_the_connection_alive() {
        // The server never answers request A but answers B and a later
        // C: A's timeout must fire its sink without tearing down the
        // connection the others ride.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut dec = FrameDecoder::new();
            let mut answered = 0;
            let mut chunk = [0u8; 4096];
            while answered < 2 {
                let read = stream.read(&mut chunk).unwrap();
                assert_ne!(read, 0, "client dropped the connection");
                dec.feed(&chunk[..read]);
                while let Some(f) = dec.next_frame().unwrap() {
                    let corr = f.corr.unwrap();
                    if corr == 1 {
                        continue; // request A: never answered
                    }
                    let reply = ProtocolMessage::Reply(GripReply::SearchResult {
                        id: corr,
                        code: ResultCode::Success,
                        entries: vec![],
                        referrals: vec![],
                    });
                    let mut out = bytes::BytesMut::new();
                    encode_mux_frame_limited(corr, &reply, &mut out, MAX_FRAME).unwrap();
                    stream.write_all(&out).unwrap();
                    answered += 1;
                }
            }
            let _ = stream.read(&mut chunk);
        });
        let out = TcpOutbound::new(TcpTuning {
            read_deadline: Duration::from_millis(300),
            ..TcpTuning::default()
        });
        let send = |out: &TcpOutbound, tag: u8| {
            let (tx, rx) = mpsc::channel::<OutboundResult>();
            let req = ProtocolMessage::Request(GripRequest::Search {
                id: tag as u64,
                spec: SearchSpec::lookup(Dn::parse("hn=x").unwrap()),
            });
            out.request(
                &addr,
                req,
                Box::new(move |res| {
                    let _ = tx.send(res);
                }),
            );
            rx
        };
        let rx_a = send(&out, b'a'); // corr 1: the server ignores it
        let rx_b = send(&out, b'b'); // corr 2: answered promptly
        assert!(rx_b.recv().unwrap().is_ok(), "B answered while A pends");
        assert_eq!(
            rx_a.recv().unwrap(),
            Err(TransportError::Timeout),
            "A's own deadline fires"
        );
        let rx_c = send(&out, b'c'); // corr 3: rides the same connection
        assert!(
            rx_c.recv().unwrap().is_ok(),
            "the connection outlives an unrelated per-request timeout"
        );
        out.close();
        server.join().unwrap();
    }

    /// Spin up a real served endpooint (reactor-driven) with no inline
    /// handler: every decoded request lands in the returned inbox.
    fn spawn_endpoint(
        tuning: TcpTuning,
    ) -> (
        TcpEndpoint,
        String,
        crossbeam::channel::Receiver<LiveMsg>,
        Arc<ConnTable>,
        Arc<MetricsRegistry>,
    ) {
        let bound = BoundEndpoint::bind("127.0.0.1:0").unwrap();
        let addr = bound.local_addr().to_string();
        let conns = Arc::new(ConnTable::default());
        let (tx, rx) = crossbeam::channel::unbounded();
        let registry = Arc::new(MetricsRegistry::new());
        let security = WireSecurity::open(&registry);
        let ep = bound.serve(tx, Arc::clone(&conns), tuning, None, security, &registry);
        (ep, addr, rx, conns, registry)
    }

    fn lookup_request(id: u64, dn: &str) -> ProtocolMessage {
        ProtocolMessage::Request(GripRequest::Search {
            id,
            spec: SearchSpec::lookup(Dn::parse(dn).unwrap()),
        })
    }

    // Satellite: a half-frame stall must trip the read deadline on the
    // reactor build, freeing the connection slot for the next client —
    // the transport-level slow-loris defense.
    #[test]
    fn half_frame_stall_trips_deadline_and_frees_the_only_slot() {
        let tuning = TcpTuning {
            read_deadline: Duration::from_millis(200),
            max_conns: 1,
            ..TcpTuning::default()
        };
        let (ep, addr, rx, conns, _registry) = spawn_endpoint(tuning);

        let mut staller = TcpStream::connect(&addr).unwrap();
        staller.write_all(&[0x00, 0x00]).unwrap(); // half a length prefix
        staller
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut byte = [0u8; 1];
        let got = staller.read(&mut byte);
        assert!(
            matches!(got, Ok(0)),
            "mid-frame staller must be disconnected by the deadline, got {got:?}"
        );

        // The freed slot admits a new client whose request reaches the
        // inbox. Retry: the listener may briefly still count the old
        // connection against max_conns.
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut delivered = false;
        while Instant::now() < deadline && !delivered {
            let mut client = match ClientConn::connect(&addr, tuning) {
                Ok(c) => c,
                Err(_) => continue,
            };
            if !client.send(&lookup_request(9, "hn=after-loris"), tuning.max_frame) {
                continue;
            }
            if let Ok(LiveMsg::Request { request, .. }) =
                rx.recv_timeout(Duration::from_millis(500))
            {
                assert_eq!(request.id(), 9);
                delivered = true;
            }
        }
        assert!(delivered, "slot never freed for the next client");
        ep.shutdown(&conns);
    }

    // Satellite: a reply far larger than the socket buffers must drain
    // through write-readiness (partial writes stage the remainder; the
    // shard finishes the job) and arrive byte-exact.
    #[test]
    fn oversized_reply_drains_through_write_readiness() {
        let tuning = TcpTuning::default();
        let (ep, addr, rx, conns, _registry) = spawn_endpoint(tuning);

        // Answer every inbox request with a ~6 MiB reply — far beyond
        // loopback socket buffering, so the first nonblocking write
        // cannot complete.
        let replier_conns = Arc::clone(&conns);
        let blob = "x".repeat(1024 * 1024);
        let expect_entries = 6usize;
        let reply_for = move |id: u64| {
            let entries: Vec<Entry> = (0..expect_entries)
                .map(|i| {
                    Entry::at(&format!("hn=bulk{i}"))
                        .unwrap()
                        .with("payload", blob.as_str())
                })
                .collect();
            ProtocolMessage::Reply(GripReply::SearchResult {
                id,
                code: ResultCode::Success,
                entries,
                referrals: vec![],
            })
        };
        let replier = std::thread::spawn(move || {
            while let Ok(msg) = rx.recv() {
                if let LiveMsg::Request {
                    from: Address::Tcp(conn_id),
                    request,
                    ..
                } = msg
                {
                    assert!(replier_conns.send(conn_id, &reply_for(request.id())));
                }
            }
        });

        let mut client = ClientConn::connect(&addr, tuning).unwrap();
        assert!(client.send(&lookup_request(42, "hn=bulk"), tuning.max_frame));
        // Give the write side time to hit EAGAIN before we start
        // draining: the reply must survive being parked in the staging
        // buffer.
        std::thread::sleep(Duration::from_millis(150));
        let msg = client.recv(Duration::from_secs(20)).expect("bulk reply");
        let ProtocolMessage::Reply(GripReply::SearchResult { id, entries, .. }) = msg else {
            panic!("expected search result");
        };
        assert_eq!(id, 42);
        assert_eq!(entries.len(), expect_entries);
        for (i, entry) in entries.iter().enumerate() {
            assert_eq!(entry.dn().to_string(), format!("hn=bulk{i}"));
            assert_eq!(
                entry.get_str("payload").map(str::len),
                Some(1024 * 1024),
                "payload truncated in transit"
            );
        }
        // The connection survived the staged write: a second exchange
        // still works.
        assert!(client.send(&lookup_request(43, "hn=again"), tuning.max_frame));
        let again = client.recv(Duration::from_secs(20)).expect("second reply");
        let ProtocolMessage::Reply(GripReply::SearchResult { id, .. }) = again else {
            panic!("expected search result");
        };
        assert_eq!(id, 43);

        ep.shutdown(&conns);
        replier.join().unwrap();
    }

    // Satellite: arbitrary fragmentation (EAGAIN at every byte boundary
    // the chunk size dictates) must decode identically to feeding the
    // decoder the same bytes directly. Case count kept low: each case
    // spins up a real listener.
    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig {
            cases: 8, ..Default::default()
        })]

        #[test]
        fn fragmented_reads_decode_identically(
            n in 1usize..12,
            chunk in 1usize..9,
            seed in proptest::prelude::any::<u64>(),
        ) {
            // Build a wire image of n request frames, mixing enveloped
            // and plain framing by seed bits.
            let mut wire = bytes::BytesMut::new();
            for i in 0..n {
                let id = (i + 1) as u64;
                let msg = lookup_request(id, &format!("hn=frag{i}"));
                if (seed >> (i % 64)) & 1 == 1 {
                    encode_mux_frame_limited(id, &msg, &mut wire, MAX_FRAME).unwrap();
                } else {
                    encode_frame_limited(&msg, &mut wire, MAX_FRAME).unwrap();
                }
            }
            let wire = wire.to_vec();

            // Oracle: the same bytes through a decoder directly.
            let mut oracle = Vec::new();
            let mut dec = FrameDecoder::with_max_frame(MAX_FRAME);
            dec.feed(&wire);
            while let Some(frame) = dec.next_frame().unwrap() {
                let ProtocolMessage::Request(GripRequest::Search { id, spec }) = frame.msg
                else { panic!("expected request") };
                oracle.push((id, spec.base.to_string()));
            }
            assert_eq!(oracle.len(), n);

            // Live: the same bytes dribbled at the endpoint in
            // `chunk`-sized writes (down to one byte per write).
            let (ep, addr, rx, conns, _registry) = spawn_endpoint(TcpTuning::default());
            let mut sock = TcpStream::connect(&addr).unwrap();
            sock.set_nodelay(true).unwrap();
            for piece in wire.chunks(chunk) {
                sock.write_all(piece).unwrap();
            }
            let mut got = Vec::new();
            for _ in 0..n {
                match rx.recv_timeout(Duration::from_secs(10)).expect("frame lost in reassembly") {
                    LiveMsg::Request { request: GripRequest::Search { id, spec }, .. } => {
                        got.push((id, spec.base.to_string()));
                    }
                    other => panic!("unexpected inbox message: {other:?}"),
                }
            }
            assert_eq!(got, oracle, "fragmented stream decoded differently");
            ep.shutdown(&conns);
        }
    }

    // Satellite: multiplexing correctness as a property — arbitrary
    // shuffles of reply order over one real loopback connection, every
    // caller gets exactly its own reply. Case count kept low: each case
    // spins up a real listener.
    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig {
            cases: 12, ..Default::default()
        })]

        #[test]
        fn shuffled_replies_always_reach_their_callers(
            n in 2usize..10,
            seed in proptest::prelude::any::<u64>(),
            junk in proptest::prelude::any::<bool>(),
        ) {
            // Fisher–Yates with a deterministic LCG over the seed.
            let mut plan: Vec<usize> = (0..n).collect();
            let mut s = seed | 1;
            for i in (1..n).rev() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let j = (s >> 33) as usize % (i + 1);
                plan.swap(i, j);
            }
            run_mux_exchange(n, plan, junk);
        }
    }

    /// A §7-secured endpoint requiring mutual auth. Returns the policy a
    /// well-behaved client should present (a credential the server's
    /// trust store vouches for, plus the same store for verifying the
    /// server back).
    fn spawn_secured_endpoint(
        tuning: TcpTuning,
    ) -> (
        TcpEndpoint,
        String,
        crossbeam::channel::Receiver<LiveMsg>,
        Arc<ConnTable>,
        Arc<MetricsRegistry>,
        SecurityPolicy,
    ) {
        let ca = gis_gsi::CertAuthority::new("/O=Grid/CN=CA", 42);
        let mut trust = TrustStore::new();
        trust.add_ca(&ca);
        let bound = BoundEndpoint::bind("127.0.0.1:0").unwrap();
        let addr = bound.local_addr().to_string();
        let service_name = format!("tcp://{addr}");
        let conns = Arc::new(ConnTable::default());
        let (tx, rx) = crossbeam::channel::unbounded();
        let registry = Arc::new(MetricsRegistry::new());
        let server = SecurityPolicy::authenticated(ca.issue(&service_name), trust.clone());
        let security = Arc::new(WireSecurity {
            required: true,
            authenticator: server.authenticator(service_name.clone()),
            credential: server.credential.clone(),
            service_name,
            on_auth: Arc::new(|_, _| {}),
            on_reject: Arc::new(|_| {}),
            on_close: Arc::new(|_| {}),
            auth_ok: registry.counter("auth-ok"),
            auth_rejected: registry.counter("auth-rejected"),
            auth_gated: registry.counter("auth-gated"),
        });
        let ep = bound.serve(tx, Arc::clone(&conns), tuning, None, security, &registry);
        let client = SecurityPolicy::authenticated(ca.issue("/O=Grid/CN=client"), trust);
        (ep, addr, rx, conns, registry, client)
    }

    // Tentpole: GRIP before the handshake on an authenticated endpoint
    // kills that *connection* — never the service. The next, properly
    // authenticated dial is served.
    #[test]
    fn grip_before_auth_drops_connection_not_service() {
        let tuning = TcpTuning::default();
        let (ep, addr, rx, conns, registry, client_policy) = spawn_secured_endpoint(tuning);

        let mut anon = ClientConn::connect(&addr, tuning).unwrap();
        assert!(anon.send(&lookup_request(1, "hn=x"), tuning.max_frame));
        assert!(
            matches!(anon.recv(Duration::from_secs(5)), Err(RecvFail::Closed)),
            "unauthenticated GRIP must drop the connection"
        );
        assert!(
            rx.try_recv().is_err(),
            "the gated request must never reach the inbox"
        );
        assert_eq!(registry.counter("auth-gated").get(), 1);

        let (mut authed, rtt) = ClientConn::connect_secured(&addr, tuning, &client_policy).unwrap();
        assert!(rtt.is_some(), "handshake round-trip measured");
        assert!(authed.send(&lookup_request(2, "hn=y"), tuning.max_frame));
        match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            LiveMsg::Request { request, .. } => assert_eq!(request.id(), 2),
            other => panic!("unexpected inbox message: {other:?}"),
        }
        assert_eq!(registry.counter("auth-ok").get(), 1);
        ep.shutdown(&conns);
    }

    // An unverifiable token is answered with the `auth-rejected` wire
    // code before the connection closes, so the peer learns *why*.
    #[test]
    fn forged_hello_gets_wire_reject_code() {
        let tuning = TcpTuning::default();
        let (ep, addr, _rx, conns, registry, _) = spawn_secured_endpoint(tuning);
        let mut conn = ClientConn::connect(&addr, tuning).unwrap();
        assert!(conn.send(
            &ProtocolMessage::Handshake(Handshake::Hello {
                token: vec![0xDE, 0xAD, 0xBE, 0xEF],
            }),
            tuning.max_frame,
        ));
        match conn.recv(Duration::from_secs(5)) {
            Ok(ProtocolMessage::Handshake(Handshake::Reject { code })) => {
                assert_eq!(code, ResultCode::AuthRejected);
            }
            other => panic!("expected a Reject frame, got {other:?}"),
        }
        assert!(matches!(
            conn.recv(Duration::from_secs(5)),
            Err(RecvFail::Closed)
        ));
        assert_eq!(registry.counter("auth-rejected").get(), 1);
        ep.shutdown(&conns);
    }

    // Satellite: a truncated handshake frame (half a length prefix,
    // then silence) is reaped by the read-stall deadline and leaves the
    // endpoint healthy for the next client.
    #[test]
    fn truncated_handshake_frame_leaves_service_healthy() {
        let tuning = TcpTuning {
            read_deadline: Duration::from_millis(200),
            ..TcpTuning::default()
        };
        let (ep, addr, rx, conns, _registry, client_policy) = spawn_secured_endpoint(tuning);

        let mut stall = TcpStream::connect(&addr).unwrap();
        stall.write_all(&[0x00, 0x00, 0x01]).unwrap();
        stall
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut byte = [0u8; 1];
        assert!(
            matches!(stall.read(&mut byte), Ok(0)),
            "truncated handshake must be reaped by the deadline"
        );

        let (mut ok, _) = ClientConn::connect_secured(&addr, tuning, &client_policy).unwrap();
        assert!(ok.send(&lookup_request(3, "hn=after-stall"), tuning.max_frame));
        match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            LiveMsg::Request { request, .. } => assert_eq!(request.id(), 3),
            other => panic!("unexpected inbox message: {other:?}"),
        }
        ep.shutdown(&conns);
    }

    // Satellite: an absurd length prefix is a framing error — the
    // connection dies immediately, the service does not.
    #[test]
    fn oversized_handshake_frame_drops_connection_cleanly() {
        let tuning = TcpTuning::default();
        let (ep, addr, rx, conns, _registry, client_policy) = spawn_secured_endpoint(tuning);

        let mut big = TcpStream::connect(&addr).unwrap();
        big.write_all(&u32::MAX.to_be_bytes()).unwrap();
        big.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut byte = [0u8; 1];
        assert!(
            matches!(big.read(&mut byte), Ok(0)),
            "oversized frame must close the connection"
        );

        let (mut ok, _) = ClientConn::connect_secured(&addr, tuning, &client_policy).unwrap();
        assert!(ok.send(&lookup_request(4, "hn=after-bomb"), tuning.max_frame));
        match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            LiveMsg::Request { request, .. } => assert_eq!(request.id(), 4),
            other => panic!("unexpected inbox message: {other:?}"),
        }
        ep.shutdown(&conns);
    }

    // Satellite: the handshake survives arbitrary TCP fragmentation —
    // a Hello and the first request sliced at arbitrary byte positions
    // still authenticate and deliver. Case count kept low: each case
    // binds a real listener.
    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig {
            cases: 8, ..Default::default()
        })]

        #[test]
        fn fragmented_handshake_still_authenticates(
            cuts in proptest::collection::vec(1usize..48, 0..6),
        ) {
            let tuning = TcpTuning::default();
            let (ep, addr, rx, conns, _registry, client_policy) =
                spawn_secured_endpoint(tuning);
            let hello = OutboundSecurity::from_policy(&client_policy)
                .hello_for(&addr)
                .expect("client policy carries a credential");
            let mut bytes = bytes::BytesMut::new();
            encode_frame_limited(
                &ProtocolMessage::Handshake(Handshake::Hello { token: hello.token }),
                &mut bytes,
                MAX_FRAME,
            )
            .unwrap();
            encode_mux_frame_limited(
                7,
                &lookup_request(7, "hn=frag"),
                &mut bytes,
                MAX_FRAME,
            )
            .unwrap();
            let mut stream = TcpStream::connect(&addr).unwrap();
            let mut off = 0usize;
            for cut in cuts {
                let end = (off + cut).min(bytes.len());
                if off < end {
                    stream.write_all(&bytes[off..end]).unwrap();
                    stream.flush().unwrap();
                    std::thread::sleep(Duration::from_millis(2));
                    off = end;
                }
            }
            stream.write_all(&bytes[off..]).unwrap();
            match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
                LiveMsg::Request { request, .. } => assert_eq!(request.id(), 7),
                other => panic!("unexpected inbox message: {other:?}"),
            }
            ep.shutdown(&conns);
        }
    }
}
