//! TCP transport: real sockets under the live runtime.
//!
//! The engines are sans-IO and the live runtime's [`Router`](crate::live)
//! moves [`LiveMsg`](crate::live::LiveMsg) values between threads; this
//! module is the boundary where those values become length-prefixed
//! [`ProtocolMessage`] frames ([`gis_proto::frame`]) on real connections,
//! so a GRIS/GIIS can serve GRIP and accept GRRP registrations from
//! clients and peers in **other OS processes**.
//!
//! # Multiplexed persistent connections
//!
//! Every connection is **multiplexed**: frames carry a correlation id in
//! the [`MUX_TAG`](gis_proto::MUX_TAG) envelope, so one connection holds
//! many in-flight GRIP exchanges and replies return in whatever order
//! the service produces them. The pieces:
//!
//! * [`TcpEndpoint`] — a server front-end: an accept loop plus one reader
//!   thread per connection, decoding frames into the service's existing
//!   MPMC inbox — or, for read-path queries, answering **inline** on the
//!   reader thread via an [`InlineHandler`] without waking a worker.
//!   By the time a frame reaches the inbox it is the same
//!   `LiveMsg::Request` the channel transport would have delivered, with
//!   [`Address::Tcp`](crate::live::Address) naming the connection to
//!   reply on.
//! * [`ConnTable`] — the reply path: accepted connections registered by
//!   id, written to by whichever thread (reader, owner or query worker)
//!   produces the reply. Writers append to a per-connection staging
//!   buffer and the thread holding the socket drains it, so small frames
//!   produced concurrently **coalesce** into one `write` syscall.
//! * [`TcpOutbound`] — the client side for chained GIIS→child requests
//!   and GRRP registration streams to `tcp://` URLs. Each peer gets a
//!   small fixed set of persistent connections (`conns_per_peer`), each
//!   driven by **one pump thread** that dials, flushes queued frames,
//!   then reads replies and matches them to callers by correlation id —
//!   out of order, up to `mux_depth` in flight.
//!
//! # Correlation-id space
//!
//! Outbound rewrites each request's GRIP id into a per-connection
//! correlation counter before framing (and restores the original on the
//! matching reply), so independent engines sharing one connection cannot
//! collide. Servers echo request ids verbatim, which makes the reply's
//! id *be* the correlation id; the envelope additionally carries it so
//! receivers can drop mislabeled frames. A connection starts in plain
//! framing and a server marks it mux-speaking only after **receiving**
//! an enveloped frame, so an old peer is never sent an envelope it
//! cannot decode.
//!
//! # Deadlines and backpressure
//!
//! * **Connect deadline** — outbound dials use `connect_timeout`; an
//!   unreachable peer fails its queued requests quickly instead of
//!   hanging a fan-out.
//! * **Read deadline, server side** — an *idle* connection between
//!   frames is legitimate (a subscriber waiting for updates); a
//!   connection stalled **mid-frame** for longer than `read_deadline` is
//!   a slow or wedged peer and is dropped, freeing its connection slot.
//! * **Read deadline, outbound** — each in-flight request has its own
//!   deadline; expiry fires that request's sink with a timeout while the
//!   connection (still frame-aligned — framing is self-describing)
//!   stays up, and the late reply is dropped as unknown. Upper layers
//!   (client retry, GIIS fan-out deadline + circuit breaker) take over.
//! * **Write deadline** — a peer that stops draining its socket while we
//!   reply (slow consumer) trips `write_deadline`; the connection is
//!   dropped rather than blocking a writer indefinitely.
//! * **In-flight depth** — a submitter finding `mux_depth` requests
//!   already in flight blocks (bounded by `write_deadline`) until a slot
//!   frees: backpressure, not unbounded queueing.
//! * **Connection slots** — at most `max_conns` accepted connections per
//!   endpoint; beyond that, new connections are closed on accept. With
//!   the stall rule above, a slot held by a wedged peer frees within one
//!   read deadline.
//!
//! A poisoned decoder (oversized header, undecodable body, trailing
//! bytes) still drops the connection on either side — framing has lost
//! sync and is never resynchronized; the peer sees EOF, the silent
//! network the upper layers already handle.

use crate::live::{Address, LiveMsg};
use gis_proto::frame::{encode_frame_limited, encode_mux_frame_limited, Frame, FrameDecoder};
use gis_proto::{GripReply, GripRequest, ProtocolMessage, TraceContext};
use parking_lot::{Mutex, RwLock};
// The vendored parking_lot is a shim over std primitives, so its guards
// interoperate with the std condition variable.
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::sync::Condvar;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::Sender;

/// Socket-level knobs for both endpoint (server) and outbound (client)
/// sides. One set of defaults fits tests and production-ish loopback use;
/// experiments and robustness tests tighten individual fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpTuning {
    /// Outbound dial deadline.
    pub connect_timeout: Duration,
    /// Server: maximum mid-frame stall before a connection is dropped.
    /// Outbound: maximum wait for each in-flight request's reply.
    pub read_deadline: Duration,
    /// Maximum blocking write before a slow-consumer connection is
    /// dropped; also bounds how long a submitter waits for an in-flight
    /// slot when the connection is at `mux_depth`.
    pub write_deadline: Duration,
    /// Per-frame body ceiling (both directions).
    pub max_frame: usize,
    /// Server: maximum concurrently accepted connections.
    pub max_conns: usize,
    /// Outbound: in-flight requests allowed per connection before
    /// submitters block for a free slot.
    pub mux_depth: usize,
    /// Outbound: persistent connections kept per peer, used round-robin.
    pub conns_per_peer: usize,
}

impl Default for TcpTuning {
    fn default() -> TcpTuning {
        TcpTuning {
            connect_timeout: Duration::from_secs(1),
            read_deadline: Duration::from_secs(5),
            write_deadline: Duration::from_secs(5),
            max_frame: gis_proto::MAX_FRAME,
            max_conns: 256,
            mux_depth: 32,
            conns_per_peer: 1,
        }
    }
}

/// Reader-loop buffer size.
const READ_CHUNK: usize = 16 * 1024;

/// How often blocked threads re-check shutdown flags.
const SHUTDOWN_POLL: Duration = Duration::from_millis(100);

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Correlation id to echo on a reply frame's envelope: the reply's GRIP
/// id (servers echo request ids, which outbound rewrote to the
/// correlation value).
fn reply_corr(msg: &ProtocolMessage) -> Option<u64> {
    match msg {
        ProtocolMessage::Reply(r) => Some(r.id()),
        ProtocolMessage::Traced { inner, .. } => reply_corr(inner),
        _ => None,
    }
}

/// Rewrite the GRIP request id inside `msg` (through a trace envelope)
/// to `new`, returning the original id. `None` when `msg` carries no
/// request.
fn rewrite_request_id(msg: &mut ProtocolMessage, new: u64) -> Option<u64> {
    match msg {
        ProtocolMessage::Request(r) => {
            let old = r.id();
            r.set_id(new);
            Some(old)
        }
        ProtocolMessage::Traced { inner, .. } => rewrite_request_id(inner, new),
        _ => None,
    }
}

/// One accepted connection: the write half plus its coalescing staging
/// buffer, shared between the reply path (reader, owner and query-worker
/// threads) and the endpoint's shutdown path.
struct ConnHandle {
    stream: Mutex<TcpStream>,
    /// Frames encoded but not yet written; whichever thread holds the
    /// stream drains it, so concurrent repliers coalesce into one write.
    queued: Mutex<bytes::BytesMut>,
    /// Set once the peer sends an enveloped frame; replies then carry
    /// the envelope too. Plain peers never see a tag they can't decode.
    mux: AtomicBool,
    /// Cork count; while non-zero, [`flush`](Self::flush) stages without
    /// writing. The reader thread corks around each decoded batch so the
    /// inline replies to a pipelined burst leave as one `write(2)`; an
    /// owner thread corks every handle around an inbox batch
    /// ([`ConnTable::cork_all`]) for the same effect on its reply burst.
    /// Corks nest, hence a count rather than a flag; whoever drops the
    /// count to zero flushes what everyone staged.
    corked: AtomicUsize,
    max_frame: usize,
}

impl ConnHandle {
    /// Drain `queued` to the socket. `false` drops the connection (peer
    /// gone or too slow).
    fn flush(&self) -> bool {
        if self.corked.load(Ordering::Acquire) > 0 {
            return true;
        }
        let mut stream = self.stream.lock();
        loop {
            let batch = {
                let mut q = self.queued.lock();
                if q.is_empty() {
                    return true;
                }
                q.split()
            };
            if stream.write_all(&batch).is_err() || stream.flush().is_err() {
                return false;
            }
        }
    }
}

/// Registry of accepted connections, keyed by the id carried in
/// [`Address::Tcp`]. Shared by every endpoint of a runtime so the router
/// can write a reply without knowing which endpoint accepted the
/// connection.
#[derive(Default)]
pub(crate) struct ConnTable {
    conns: RwLock<HashMap<u64, Arc<ConnHandle>>>,
    next: AtomicU64,
}

impl ConnTable {
    fn register(&self, stream: TcpStream, max_frame: usize) -> (u64, Arc<ConnHandle>) {
        let id = self.next.fetch_add(1, Ordering::Relaxed) + 1;
        let handle = Arc::new(ConnHandle {
            stream: Mutex::new(stream),
            queued: Mutex::new(bytes::BytesMut::new()),
            mux: AtomicBool::new(false),
            corked: AtomicUsize::new(0),
            max_frame,
        });
        self.conns.write().insert(id, Arc::clone(&handle));
        (id, handle)
    }

    fn remove(&self, id: u64) {
        if let Some(conn) = self.conns.write().remove(&id) {
            let _ = conn.stream.lock().shutdown(std::net::Shutdown::Both);
        }
    }

    /// Encode and write one frame to connection `id`, enveloped with the
    /// reply's correlation id when the peer speaks the mux envelope.
    /// Returns `false` (and drops the connection) when the peer is gone
    /// or too slow — exactly the silent-drop semantics the in-process
    /// router has for vanished clients.
    pub(crate) fn send(&self, id: u64, msg: &ProtocolMessage) -> bool {
        let Some(conn) = self.conns.read().get(&id).map(Arc::clone) else {
            return false;
        };
        let encoded = {
            let mut q = conn.queued.lock();
            match reply_corr(msg).filter(|_| conn.mux.load(Ordering::Relaxed)) {
                Some(corr) => encode_mux_frame_limited(corr, msg, &mut q, conn.max_frame).is_ok(),
                None => encode_frame_limited(msg, &mut q, conn.max_frame).is_ok(),
            }
        };
        if encoded && conn.flush() {
            true
        } else {
            self.remove(id);
            false
        }
    }

    /// Cork every accepted connection until the returned guard drops:
    /// replies written in between stage in their handles and leave as
    /// one write per connection. Used by owner threads draining an inbox
    /// batch whose messages each produce a reply.
    pub(crate) fn cork_all(self: &Arc<Self>) -> ReplyCork {
        let conns: Vec<(u64, Arc<ConnHandle>)> = self
            .conns
            .read()
            .iter()
            .map(|(id, conn)| (*id, Arc::clone(conn)))
            .collect();
        for (_, conn) in &conns {
            conn.corked.fetch_add(1, Ordering::AcqRel);
        }
        ReplyCork {
            table: Arc::clone(self),
            conns,
        }
    }
}

/// RAII cork over the accepted connections that existed when
/// [`ConnTable::cork_all`] ran (later arrivals write directly, which is
/// merely unbatched). Dropping uncorks and flushes; a connection whose
/// flush fails is dropped exactly as a failed direct write would be.
pub(crate) struct ReplyCork {
    table: Arc<ConnTable>,
    conns: Vec<(u64, Arc<ConnHandle>)>,
}

impl Drop for ReplyCork {
    fn drop(&mut self) {
        for (id, conn) in &self.conns {
            conn.corked.fetch_sub(1, Ordering::AcqRel);
            if !conn.flush() {
                self.table.remove(*id);
            }
        }
    }
}

/// Fast-path hook a service installs on its endpoint: called on the
/// connection's reader thread for every inbound GRIP request. Returning
/// `None` means the request was fully handled (replies already written
/// via [`ConnTable::send`]); returning the request forwards it to the
/// service inbox for the owner thread, exactly as if no hook existed.
pub(crate) type InlineHandler =
    Arc<dyn Fn(u64, GripRequest, Option<TraceContext>) -> Option<GripRequest> + Send + Sync>;

/// A bound-but-not-yet-serving listener. Splitting bind from serve lets
/// the runtime read the kernel-assigned port (`tcp://host:0`) and fix up
/// registration URLs *before* any traffic arrives.
pub(crate) struct BoundEndpoint {
    listener: TcpListener,
    local: SocketAddr,
}

impl BoundEndpoint {
    /// Bind `authority` (`host:port`, port may be 0 for ephemeral).
    pub(crate) fn bind(authority: &str) -> std::io::Result<BoundEndpoint> {
        let listener = TcpListener::bind(authority)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        Ok(BoundEndpoint { listener, local })
    }

    /// The actual bound address (real port even when 0 was requested).
    pub(crate) fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Start serving frames into `inbox`, with read-path requests
    /// optionally short-circuited by `inline` on the reader threads.
    pub(crate) fn serve(
        self,
        inbox: Sender<LiveMsg>,
        conns: Arc<ConnTable>,
        tuning: TcpTuning,
        inline: Option<InlineHandler>,
    ) -> TcpEndpoint {
        let listener = self.listener;
        let stop = Arc::new(AtomicBool::new(false));
        let conn_ids = Arc::new(Mutex::new(Vec::new()));
        let active = Arc::new(AtomicUsize::new(0));

        let accept_stop = Arc::clone(&stop);
        let accept_conn_ids = Arc::clone(&conn_ids);
        let accept_thread = std::thread::spawn(move || loop {
            if accept_stop.load(Ordering::Relaxed) {
                break;
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if active.load(Ordering::Relaxed) >= tuning.max_conns {
                        // Slot-limited: refuse by closing immediately.
                        drop(stream);
                        continue;
                    }
                    active.fetch_add(1, Ordering::Relaxed);
                    spawn_conn_reader(
                        stream,
                        inbox.clone(),
                        Arc::clone(&conns),
                        tuning,
                        Arc::clone(&accept_stop),
                        Arc::clone(&accept_conn_ids),
                        Arc::clone(&active),
                        inline.clone(),
                    );
                }
                Err(e) if is_timeout(&e) => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => break,
            }
        });

        TcpEndpoint {
            stop,
            conn_ids,
            accept_thread: Some(accept_thread),
        }
    }
}

/// A served TCP listener: the socket front-end of one spawned service.
pub(crate) struct TcpEndpoint {
    stop: Arc<AtomicBool>,
    conn_ids: Arc<Mutex<Vec<u64>>>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpEndpoint {
    /// Stop accepting, close every live connection, join the accept loop.
    pub(crate) fn shutdown(mut self, conns: &ConnTable) {
        self.stop.store(true, Ordering::Relaxed);
        for id in self.conn_ids.lock().drain(..) {
            conns.remove(id);
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn spawn_conn_reader(
    stream: TcpStream,
    inbox: Sender<LiveMsg>,
    conns: Arc<ConnTable>,
    tuning: TcpTuning,
    stop: Arc<AtomicBool>,
    conn_ids: Arc<Mutex<Vec<u64>>>,
    active: Arc<AtomicUsize>,
    inline: Option<InlineHandler>,
) {
    std::thread::spawn(move || {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_write_timeout(Some(tuning.write_deadline));
        let Ok(read_half) = stream.try_clone() else {
            active.fetch_sub(1, Ordering::Relaxed);
            return;
        };
        let (conn_id, handle) = conns.register(stream, tuning.max_frame);
        conn_ids.lock().push(conn_id);
        read_loop(
            read_half,
            conn_id,
            &handle,
            &inbox,
            &tuning,
            &stop,
            inline.as_ref(),
        );
        conns.remove(conn_id);
        conn_ids.lock().retain(|&id| id != conn_id);
        active.fetch_sub(1, Ordering::Relaxed);
    });
}

/// Decode frames from one accepted connection into the service inbox
/// (or the inline handler) until EOF, a protocol error, a mid-frame
/// stall, or shutdown.
fn read_loop(
    mut stream: TcpStream,
    conn_id: u64,
    handle: &ConnHandle,
    inbox: &Sender<LiveMsg>,
    tuning: &TcpTuning,
    stop: &AtomicBool,
    inline: Option<&InlineHandler>,
) {
    // Short socket timeout so both the shutdown flag and the mid-frame
    // deadline are checked promptly; `stall_since` tracks the wall-clock
    // start of the current incomplete frame.
    let _ = stream.set_read_timeout(Some(SHUTDOWN_POLL.min(tuning.read_deadline)));
    let mut dec = FrameDecoder::with_max_frame(tuning.max_frame);
    let mut buf = vec![0u8; READ_CHUNK];
    let mut stall_since: Option<Instant> = None;
    loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        match stream.read(&mut buf) {
            Ok(0) => return, // peer closed
            Ok(n) => {
                dec.feed(&buf[..n]);
                // Cork while draining the batch: inline replies to every
                // frame in this read coalesce into a single write below.
                handle.corked.fetch_add(1, Ordering::AcqRel);
                let mut keep = true;
                loop {
                    match dec.next_frame() {
                        Ok(Some(frame)) => {
                            if frame.corr.is_some() {
                                // The peer speaks the envelope; echo it
                                // on replies from now on.
                                handle.mux.store(true, Ordering::Relaxed);
                            }
                            if !dispatch_inbound(frame, conn_id, inbox, inline) {
                                keep = false;
                                break;
                            }
                        }
                        Ok(None) => break,
                        // Oversized or malformed frame: drop the
                        // connection cleanly; the sender sees EOF.
                        Err(_) => {
                            keep = false;
                            break;
                        }
                    }
                }
                handle.corked.fetch_sub(1, Ordering::AcqRel);
                let flushed = handle.flush();
                if !flushed || !keep {
                    return;
                }
                stall_since = if dec.mid_frame() {
                    Some(stall_since.unwrap_or_else(Instant::now))
                } else {
                    None
                };
            }
            Err(e) if is_timeout(&e) => {
                if let Some(since) = stall_since {
                    if since.elapsed() >= tuning.read_deadline {
                        // Half a frame, then silence: slow-peer deadline
                        // trips and the connection slot is freed.
                        return;
                    }
                } else if dec.mid_frame() {
                    stall_since = Some(Instant::now());
                }
            }
            Err(_) => return,
        }
    }
}

/// Translate one decoded frame into the same `LiveMsg` the in-process
/// transport would deliver — unless the inline handler answers it on
/// this thread. Returns `false` when the connection must be dropped
/// (service gone, or the peer sent a frame a server never accepts).
fn dispatch_inbound(
    frame: Frame,
    conn_id: u64,
    inbox: &Sender<LiveMsg>,
    inline: Option<&InlineHandler>,
) -> bool {
    let corr = frame.corr;
    let (trace, inner) = frame.msg.untraced();
    let live = match inner {
        ProtocolMessage::Request(request) => {
            // A mislabeled envelope (corr disagreeing with the id the
            // reply would echo) can never be answered correctly; drop
            // the frame, keep the connection.
            if corr.is_some_and(|c| c != request.id()) {
                return true;
            }
            let request = match inline {
                Some(handler) => match handler(conn_id, request, trace) {
                    None => return true, // answered on this thread
                    Some(owner_work) => owner_work,
                },
                None => request,
            };
            LiveMsg::Request {
                from: Address::Tcp(conn_id),
                request,
                trace,
                enqueued: Instant::now(),
            }
        }
        ProtocolMessage::Grrp(m) => LiveMsg::Grrp(m),
        // A server-side connection carries requests and registrations;
        // an unsolicited Reply is a protocol violation.
        ProtocolMessage::Reply(_) | ProtocolMessage::Traced { .. } => return false,
    };
    inbox.send(live).is_ok()
}

/// What one outbound request produced.
pub(crate) type OutboundResult = Result<GripReply, TransportError>;

/// Why an outbound request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum TransportError {
    /// Could not dial the peer.
    Connect,
    /// The connection dropped (or desynced) before a full reply arrived.
    Dropped,
    /// No full reply within the read deadline (or no in-flight slot
    /// within the write deadline).
    Timeout,
}

/// Completion callback for one outbound request.
pub(crate) type ReplySink = Box<dyn FnOnce(OutboundResult) + Send + 'static>;

/// One in-flight request on a multiplexed connection.
struct MuxPending {
    sink: ReplySink,
    /// The GRIP id the caller used, restored onto the reply.
    original: u64,
    deadline: Instant,
}

/// Writer-half lifecycle of a multiplexed connection.
enum WireState {
    /// Pump thread is dialing; submitted frames stage in `queued`.
    Dialing,
    /// Connected: whoever flushes writes through this half.
    Up(TcpStream),
    /// Killed; every submit fails fast.
    Dead,
}

/// Shared state of one multiplexed persistent connection: many
/// submitting threads, one pump thread that dials then reads replies.
struct MuxConn {
    peer: String,
    tuning: TcpTuning,
    state: Mutex<WireState>,
    /// Staged frames: pre-connect backlog and the coalescing buffer.
    queued: Mutex<bytes::BytesMut>,
    /// In-flight requests keyed by correlation id; its lock also guards
    /// the depth gate (`gate` waits on it).
    pending: Mutex<HashMap<u64, MuxPending>>,
    gate: Condvar,
    alive: AtomicBool,
    next_corr: AtomicU64,
    /// Cork count (see [`TcpOutbound::cork_all`]): while non-zero,
    /// [`flush`](Self::flush) stages submitted frames instead of
    /// writing, so a burst of requests coalesces into one write.
    corked: AtomicUsize,
}

impl MuxConn {
    /// Create the connection state and start its pump thread.
    fn spawn(peer: &str, tuning: TcpTuning, closed: Arc<AtomicBool>) -> Arc<MuxConn> {
        let conn = Arc::new(MuxConn {
            peer: peer.to_owned(),
            tuning,
            state: Mutex::new(WireState::Dialing),
            queued: Mutex::new(bytes::BytesMut::new()),
            pending: Mutex::new(HashMap::new()),
            gate: Condvar::new(),
            alive: AtomicBool::new(true),
            next_corr: AtomicU64::new(0),
            corked: AtomicUsize::new(0),
        });
        let pump = Arc::clone(&conn);
        std::thread::spawn(move || pump.run(closed));
        conn
    }

    /// Pump thread: dial, flush the backlog, then read replies until the
    /// connection dies or the pool closes.
    fn run(self: Arc<MuxConn>, closed: Arc<AtomicBool>) {
        let stream = resolve(&self.peer)
            .and_then(|addr| TcpStream::connect_timeout(&addr, self.tuning.connect_timeout).ok());
        let Some(stream) = stream else {
            self.kill(TransportError::Connect);
            return;
        };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_write_timeout(Some(self.tuning.write_deadline));
        let _ = stream.set_read_timeout(Some(SHUTDOWN_POLL.min(self.tuning.read_deadline)));
        let Ok(write_half) = stream.try_clone() else {
            self.kill(TransportError::Connect);
            return;
        };
        {
            let mut st = self.state.lock();
            if matches!(*st, WireState::Dead) {
                return; // closed while dialing
            }
            *st = WireState::Up(write_half);
        }
        if !self.flush() {
            self.kill(TransportError::Dropped);
            return;
        }
        let mut dec = FrameDecoder::with_max_frame(self.tuning.max_frame);
        let mut chunk = vec![0u8; READ_CHUNK];
        let mut reader = stream;
        loop {
            if closed.load(Ordering::Relaxed) || !self.alive.load(Ordering::Relaxed) {
                self.kill(TransportError::Dropped);
                return;
            }
            match reader.read(&mut chunk) {
                Ok(0) => {
                    self.kill(TransportError::Dropped);
                    return;
                }
                Ok(n) => {
                    dec.feed(&chunk[..n]);
                    loop {
                        match dec.next_frame() {
                            Ok(Some(frame)) => {
                                if !self.on_frame(frame) {
                                    self.kill(TransportError::Dropped);
                                    return;
                                }
                            }
                            Ok(None) => break,
                            Err(_) => {
                                // Poisoned decoder: the stream is out of
                                // sync; drop it, never resynchronize.
                                self.kill(TransportError::Dropped);
                                return;
                            }
                        }
                    }
                    self.reap_expired();
                }
                Err(e) if is_timeout(&e) => self.reap_expired(),
                Err(_) => {
                    self.kill(TransportError::Dropped);
                    return;
                }
            }
        }
    }

    /// Match one inbound frame to its caller. `false` means protocol
    /// violation (drop the connection); mismatched, duplicate and
    /// unknown correlation ids drop the *frame* only.
    fn on_frame(&self, frame: Frame) -> bool {
        let ProtocolMessage::Reply(mut reply) = frame.msg else {
            return false;
        };
        let key = reply.id();
        if frame.corr.is_some_and(|c| c != key) {
            return true; // mislabeled envelope: not answerable, drop it
        }
        // An unknown or duplicate id is a late reply: drop the frame.
        if let Some(p) = self.pending.lock().remove(&key) {
            self.gate.notify_all();
            reply.set_id(p.original);
            (p.sink)(Ok(reply));
        }
        true
    }

    /// Fire timed-out in-flight requests. The connection stays up:
    /// framing is self-describing, so a late reply is simply dropped as
    /// unknown when it eventually lands.
    fn reap_expired(&self) {
        let now = Instant::now();
        let fired: Vec<MuxPending> = {
            let mut pending = self.pending.lock();
            let expired: Vec<u64> = pending
                .iter()
                .filter(|(_, p)| now >= p.deadline)
                .map(|(k, _)| *k)
                .collect();
            expired
                .into_iter()
                .filter_map(|k| pending.remove(&k))
                .collect()
        };
        if !fired.is_empty() {
            self.gate.notify_all();
            for p in fired {
                (p.sink)(Err(TransportError::Timeout));
            }
        }
    }

    /// Register `frame` as an in-flight request (rewriting its GRIP id
    /// into the correlation space) and stage its bytes for writing.
    fn submit(&self, mut frame: ProtocolMessage, sink: ReplySink) {
        let deadline = Instant::now() + self.tuning.read_deadline;
        let corr = {
            let mut pending = self.pending.lock();
            while pending.len() >= self.tuning.mux_depth {
                if !self.alive.load(Ordering::Relaxed) {
                    drop(pending);
                    sink(Err(TransportError::Dropped));
                    return;
                }
                let (guard, wait) = self
                    .gate
                    .wait_timeout(pending, self.tuning.write_deadline)
                    .unwrap_or_else(|e| e.into_inner());
                pending = guard;
                if wait.timed_out() && pending.len() >= self.tuning.mux_depth {
                    drop(pending);
                    sink(Err(TransportError::Timeout));
                    return;
                }
            }
            if !self.alive.load(Ordering::Relaxed) {
                drop(pending);
                sink(Err(TransportError::Dropped));
                return;
            }
            let corr = self.next_corr.fetch_add(1, Ordering::Relaxed) + 1;
            let Some(original) = rewrite_request_id(&mut frame, corr) else {
                drop(pending);
                sink(Err(TransportError::Dropped));
                return;
            };
            pending.insert(
                corr,
                MuxPending {
                    sink,
                    original,
                    deadline,
                },
            );
            corr
        };
        let encoded = {
            let mut q = self.queued.lock();
            encode_mux_frame_limited(corr, &frame, &mut q, self.tuning.max_frame).is_ok()
        };
        if !encoded || !self.flush() {
            // Fire our own sink (unless a concurrent kill already did)
            // and retire the connection.
            if let Some(p) = self.pending.lock().remove(&corr) {
                (p.sink)(Err(TransportError::Dropped));
            }
            self.kill(TransportError::Dropped);
        }
    }

    /// Stage a one-way frame (GRRP notification) — plain framing, no
    /// envelope, no reply expected.
    fn submit_oneway(&self, frame: &ProtocolMessage) {
        let encoded = {
            let mut q = self.queued.lock();
            encode_frame_limited(frame, &mut q, self.tuning.max_frame).is_ok()
        };
        if !encoded || !self.flush() {
            self.kill(TransportError::Dropped);
        }
    }

    /// Drain `queued` through the writer half. `true` while the
    /// connection is usable (including still-dialing, when the pump
    /// flushes after connecting).
    fn flush(&self) -> bool {
        let mut st = self.state.lock();
        match &mut *st {
            WireState::Dialing => true,
            WireState::Dead => false,
            WireState::Up(stream) => {
                if self.corked.load(Ordering::Acquire) > 0 {
                    return true; // staged; the uncork writes the burst
                }
                loop {
                    let batch = {
                        let mut q = self.queued.lock();
                        if q.is_empty() {
                            return true;
                        }
                        q.split()
                    };
                    if stream.write_all(&batch).is_err() || stream.flush().is_err() {
                        return false;
                    }
                }
            }
        }
    }

    /// Tear the connection down: every in-flight and future request
    /// fails with `err`. Idempotent.
    fn kill(&self, err: TransportError) {
        if !self.alive.swap(false, Ordering::Relaxed) {
            return;
        }
        {
            let mut st = self.state.lock();
            if let WireState::Up(stream) = &*st {
                // Unblock the pump's reader half.
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
            *st = WireState::Dead;
        }
        self.queued.lock().clear();
        let fired: Vec<MuxPending> = {
            let mut pending = self.pending.lock();
            pending.drain().map(|(_, p)| p).collect()
        };
        self.gate.notify_all();
        for p in fired {
            (p.sink)(Err(err.clone()));
        }
    }
}

/// Round-robin ring of persistent connections to one peer.
struct PeerRing {
    conns: Vec<Option<Arc<MuxConn>>>,
    rr: usize,
}

/// Multiplexing TCP client shared by a runtime (GIIS chaining, GRRP
/// registration streams) and by standalone [`LiveClient`]
/// (crate::live::LiveClient) handles in client-only processes. Keeps
/// `conns_per_peer` persistent connections per `host:port` peer, each
/// carrying up to `mux_depth` concurrent requests; a dead connection is
/// replaced on the next submit (so a failed dial stays cheap to retry
/// and the circuit breaker sees every failure).
pub(crate) struct TcpOutbound {
    peers: Mutex<HashMap<String, PeerRing>>,
    tuning: TcpTuning,
    closed: Arc<AtomicBool>,
}

impl Default for TcpOutbound {
    fn default() -> TcpOutbound {
        TcpOutbound::new(TcpTuning::default())
    }
}

impl TcpOutbound {
    pub(crate) fn new(tuning: TcpTuning) -> TcpOutbound {
        TcpOutbound {
            peers: Mutex::new(HashMap::new()),
            tuning,
            closed: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Fire-and-forget a frame (GRRP notifications). Connection errors
    /// are the soft-state protocol's problem: a lost registration is
    /// re-sent at the next refresh interval.
    pub(crate) fn oneway(&self, peer: &str, frame: ProtocolMessage) {
        if self.closed.load(Ordering::Relaxed) {
            return;
        }
        self.conn_for(peer).submit_oneway(&frame);
    }

    /// Send a request frame and hand the single reply frame (or the
    /// failure) to `sink`, asynchronously.
    pub(crate) fn request(&self, peer: &str, frame: ProtocolMessage, sink: ReplySink) {
        if self.closed.load(Ordering::Relaxed) {
            sink(Err(TransportError::Dropped));
            return;
        }
        self.conn_for(peer).submit(frame, sink);
    }

    /// Stop all pump threads and fail every in-flight request.
    pub(crate) fn close(&self) {
        self.closed.store(true, Ordering::Relaxed);
        let rings: Vec<PeerRing> = {
            let mut peers = self.peers.lock();
            peers.drain().map(|(_, ring)| ring).collect()
        };
        for ring in rings {
            for conn in ring.conns.into_iter().flatten() {
                conn.kill(TransportError::Dropped);
            }
        }
    }

    /// Cork every live connection until the returned guard drops:
    /// requests submitted in between stage their frames, and the uncork
    /// writes each connection's burst in one go. Lets an owner thread
    /// draining an inbox batch (GIIS chain fan-out) pay one write per
    /// child connection instead of one per sub-query.
    pub(crate) fn cork_all(&self) -> OutboundCork {
        let conns: Vec<Arc<MuxConn>> = {
            let peers = self.peers.lock();
            peers
                .values()
                .flat_map(|ring| ring.conns.iter().flatten().cloned())
                .collect()
        };
        for conn in &conns {
            conn.corked.fetch_add(1, Ordering::AcqRel);
        }
        OutboundCork { conns }
    }

    /// The live connection for `peer` this request should ride — round
    /// robin across the ring, replacing dead slots.
    fn conn_for(&self, peer: &str) -> Arc<MuxConn> {
        let mut peers = self.peers.lock();
        let width = self.tuning.conns_per_peer.max(1);
        let ring = peers.entry(peer.to_owned()).or_insert_with(|| PeerRing {
            conns: vec![None; width],
            rr: 0,
        });
        ring.rr = (ring.rr + 1) % ring.conns.len();
        let slot = ring.rr;
        match &ring.conns[slot] {
            Some(conn) if conn.alive.load(Ordering::Relaxed) => Arc::clone(conn),
            _ => {
                let conn = MuxConn::spawn(peer, self.tuning, Arc::clone(&self.closed));
                ring.conns[slot] = Some(Arc::clone(&conn));
                conn
            }
        }
    }
}

/// RAII cork over the pooled connections that existed when
/// [`TcpOutbound::cork_all`] ran (a connection dialed mid-cork writes
/// directly, which is merely unbatched). Dropping uncorks and flushes;
/// a connection whose flush fails is torn down exactly as a failed
/// direct write would be.
pub(crate) struct OutboundCork {
    conns: Vec<Arc<MuxConn>>,
}

impl Drop for OutboundCork {
    fn drop(&mut self) {
        for conn in &self.conns {
            conn.corked.fetch_sub(1, Ordering::AcqRel);
            if !conn.flush() {
                conn.kill(TransportError::Dropped);
            }
        }
    }
}

/// Resolve `host:port` to the first socket address.
pub(crate) fn resolve(peer: &str) -> Option<SocketAddr> {
    peer.to_socket_addrs().ok()?.next()
}

/// Why [`ClientConn::recv`] returned no message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RecvFail {
    /// Deadline passed with no complete frame.
    Timeout,
    /// Connection closed or desynced; the caller must reconnect.
    Closed,
}

/// A client's single persistent connection to one endpoint. Carries a
/// full client session: pipelined requests out, any number of replies
/// and subscription updates back, in whatever order the service produces
/// them — the socket analogue of a [`LiveClient`]
/// (crate::live::LiveClient) reply channel. Requests go out in the mux
/// envelope (correlation id = the request's own GRIP id, which is
/// already unique per session); inbound frames tolerate both enveloped
/// and plain framing, dropping any whose envelope disagrees with the
/// reply id it carries.
pub(crate) struct ClientConn {
    stream: TcpStream,
    dec: FrameDecoder,
    /// Reused read buffer: one allocation per connection, not per recv.
    chunk: Vec<u8>,
    /// Reused encode buffer for outgoing frames; while corked it
    /// accumulates a burst that [`uncork`](Self::uncork) writes at once.
    ebuf: bytes::BytesMut,
    corked: bool,
}

impl ClientConn {
    /// Dial `peer` (`host:port`) under `tuning`'s connect deadline.
    pub(crate) fn connect(peer: &str, tuning: TcpTuning) -> std::io::Result<ClientConn> {
        let addr = resolve(peer).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("bad peer {peer:?}"),
            )
        })?;
        let stream = TcpStream::connect_timeout(&addr, tuning.connect_timeout)?;
        stream.set_nodelay(true)?;
        stream.set_write_timeout(Some(tuning.write_deadline))?;
        stream.set_read_timeout(Some(SHUTDOWN_POLL))?;
        Ok(ClientConn {
            stream,
            dec: FrameDecoder::with_max_frame(tuning.max_frame),
            chunk: vec![0u8; READ_CHUNK],
            ebuf: bytes::BytesMut::new(),
            corked: false,
        })
    }

    /// Start staging outgoing frames instead of writing each one: a
    /// pipelined burst becomes a single `write(2)` at
    /// [`uncork`](Self::uncork).
    pub(crate) fn cork(&mut self) {
        self.corked = true;
    }

    /// Write everything staged since [`cork`](Self::cork) in one go.
    /// `false` means the connection is dead. No-op when not corked (a
    /// mid-burst redial hands out a fresh, uncorked connection).
    pub(crate) fn uncork(&mut self) -> bool {
        if !self.corked {
            return true;
        }
        self.corked = false;
        if self.ebuf.is_empty() {
            return true;
        }
        let ok = self.stream.write_all(&self.ebuf).is_ok() && self.stream.flush().is_ok();
        self.ebuf.clear();
        ok
    }

    /// Encode and send one frame (staged while corked). `false` means
    /// the connection is dead.
    pub(crate) fn send(&mut self, msg: &ProtocolMessage, max_frame: usize) -> bool {
        if !self.corked {
            self.ebuf.clear();
        }
        let encoded = match request_corr(msg) {
            Some(corr) => encode_mux_frame_limited(corr, msg, &mut self.ebuf, max_frame).is_ok(),
            None => encode_frame_limited(msg, &mut self.ebuf, max_frame).is_ok(),
        };
        if !encoded {
            return false;
        }
        if self.corked {
            return true;
        }
        self.stream.write_all(&self.ebuf).is_ok() && self.stream.flush().is_ok()
    }

    /// Receive the next frame, waiting up to `timeout`. Frames whose
    /// envelope contradicts the reply they carry are dropped without
    /// closing the session.
    pub(crate) fn recv(&mut self, timeout: Duration) -> Result<ProtocolMessage, RecvFail> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.dec.next_frame() {
                Ok(Some(frame)) => {
                    match frame.corr {
                        Some(c) if reply_corr(&frame.msg) != Some(c) => {
                            continue; // mislabeled envelope: drop frame
                        }
                        _ => return Ok(frame.msg),
                    }
                }
                Ok(None) => {}
                Err(_) => return Err(RecvFail::Closed),
            }
            if Instant::now() >= deadline {
                return Err(RecvFail::Timeout);
            }
            match self.stream.read(&mut self.chunk) {
                Ok(0) => return Err(RecvFail::Closed),
                Ok(n) => self.dec.feed(&self.chunk[..n]),
                Err(e) if is_timeout(&e) => {}
                Err(_) => return Err(RecvFail::Closed),
            }
        }
    }
}

/// Correlation id for an outgoing client-session request: its own GRIP
/// id (unique per session).
fn request_corr(msg: &ProtocolMessage) -> Option<u64> {
    match msg {
        ProtocolMessage::Request(r) => Some(r.id()),
        ProtocolMessage::Traced { inner, .. } => request_corr(inner),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_ldap::{Dn, Entry};
    use gis_proto::grip::{ResultCode, SearchSpec};
    use gis_proto::MAX_FRAME;
    use std::sync::mpsc;

    /// A scripted loopback server: accepts one connection, reads `n`
    /// requests, then answers them in the order `plan` dictates
    /// (indices into arrival order), optionally preceded by junk frames
    /// that a correct client must drop without failing real callers.
    fn scripted_server(
        n: usize,
        plan: Vec<usize>,
        inject_junk: bool,
    ) -> (String, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut dec = FrameDecoder::new();
            let mut got: Vec<(u64, Dn)> = Vec::new();
            let mut chunk = [0u8; 4096];
            while got.len() < n {
                let read = stream.read(&mut chunk).unwrap();
                assert_ne!(read, 0, "client hung up early");
                dec.feed(&chunk[..read]);
                while let Some(frame) = dec.next_frame().unwrap() {
                    let corr = frame.corr.expect("outbound requests are enveloped");
                    let ProtocolMessage::Request(GripRequest::Search { id, spec }) = frame.msg
                    else {
                        panic!("expected a search request");
                    };
                    assert_eq!(corr, id, "correlation id is the rewritten GRIP id");
                    got.push((id, spec.base.clone()));
                }
            }
            let mut out = bytes::BytesMut::new();
            if inject_junk {
                // Unknown correlation id: must be dropped.
                let stray = ProtocolMessage::Reply(GripReply::SearchResult {
                    id: 0xDEAD_BEEF,
                    code: ResultCode::Success,
                    entries: vec![],
                    referrals: vec![],
                });
                encode_mux_frame_limited(0xDEAD_BEEF, &stray, &mut out, MAX_FRAME).unwrap();
                // Envelope contradicting the reply id: must be dropped.
                let (first_id, first_dn) = got[0].clone();
                let mislabeled = ProtocolMessage::Reply(GripReply::SearchResult {
                    id: 0xBAD,
                    code: ResultCode::Success,
                    entries: vec![Entry::at(&first_dn.to_string()).unwrap()],
                    referrals: vec![],
                });
                encode_mux_frame_limited(first_id, &mislabeled, &mut out, MAX_FRAME).unwrap();
            }
            for &slot in &plan {
                let (id, dn) = got[slot].clone();
                let reply = ProtocolMessage::Reply(GripReply::SearchResult {
                    id,
                    code: ResultCode::Success,
                    entries: vec![Entry::at(&dn.to_string()).unwrap()],
                    referrals: vec![],
                });
                encode_mux_frame_limited(id, &reply, &mut out, MAX_FRAME).unwrap();
                if inject_junk && slot == plan[0] {
                    // Duplicate of an already-consumed id: must be
                    // dropped, not double-delivered.
                    encode_mux_frame_limited(id, &reply, &mut out, MAX_FRAME).unwrap();
                }
            }
            stream.write_all(&out).unwrap();
            // Hold the socket open until the client is done reading.
            let _ = stream.read(&mut chunk);
        });
        (addr, handle)
    }

    /// Drive `n` concurrent requests through one multiplexed connection
    /// against a server replying in `plan` order; assert every caller
    /// gets exactly its own reply.
    fn run_mux_exchange(n: usize, plan: Vec<usize>, inject_junk: bool) {
        let (addr, server) = scripted_server(n, plan, inject_junk);
        let out = TcpOutbound::new(TcpTuning {
            mux_depth: n.max(1),
            ..TcpTuning::default()
        });
        let (tx, rx) = mpsc::channel::<(u64, OutboundResult)>();
        for i in 0..n {
            let req = ProtocolMessage::Request(GripRequest::Search {
                // Deliberately colliding GRIP ids across callers: the
                // correlation space must keep them apart.
                id: 100 + (i as u64 % 3),
                spec: SearchSpec::lookup(Dn::parse(&format!("hn=h{i}")).unwrap()),
            });
            let tx = tx.clone();
            let marker = i as u64;
            out.request(
                &addr,
                req,
                Box::new(move |res| {
                    let _ = tx.send((marker, res));
                }),
            );
        }
        drop(tx);
        let mut seen = 0;
        while let Ok((marker, res)) = rx.recv() {
            let reply = res.expect("caller must get its reply");
            let GripReply::SearchResult { id, entries, .. } = reply else {
                panic!("expected a search result");
            };
            assert_eq!(id, 100 + (marker % 3), "original GRIP id restored");
            assert_eq!(
                entries[0].dn().to_string(),
                format!("hn=h{marker}"),
                "caller {marker} got someone else's reply"
            );
            seen += 1;
        }
        assert_eq!(seen, n);
        out.close();
        server.join().unwrap();
    }

    #[test]
    fn pipelined_requests_match_out_of_order_replies() {
        run_mux_exchange(6, vec![5, 0, 3, 1, 4, 2], false);
    }

    #[test]
    fn junk_frames_dropped_without_poisoning_callers() {
        run_mux_exchange(4, vec![1, 0, 3, 2], true);
    }

    #[test]
    fn per_request_timeout_keeps_the_connection_alive() {
        // The server never answers request A but answers B and a later
        // C: A's timeout must fire its sink without tearing down the
        // connection the others ride.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut dec = FrameDecoder::new();
            let mut answered = 0;
            let mut chunk = [0u8; 4096];
            while answered < 2 {
                let read = stream.read(&mut chunk).unwrap();
                assert_ne!(read, 0, "client dropped the connection");
                dec.feed(&chunk[..read]);
                while let Some(f) = dec.next_frame().unwrap() {
                    let corr = f.corr.unwrap();
                    if corr == 1 {
                        continue; // request A: never answered
                    }
                    let reply = ProtocolMessage::Reply(GripReply::SearchResult {
                        id: corr,
                        code: ResultCode::Success,
                        entries: vec![],
                        referrals: vec![],
                    });
                    let mut out = bytes::BytesMut::new();
                    encode_mux_frame_limited(corr, &reply, &mut out, MAX_FRAME).unwrap();
                    stream.write_all(&out).unwrap();
                    answered += 1;
                }
            }
            let _ = stream.read(&mut chunk);
        });
        let out = TcpOutbound::new(TcpTuning {
            read_deadline: Duration::from_millis(300),
            ..TcpTuning::default()
        });
        let send = |out: &TcpOutbound, tag: u8| {
            let (tx, rx) = mpsc::channel::<OutboundResult>();
            let req = ProtocolMessage::Request(GripRequest::Search {
                id: tag as u64,
                spec: SearchSpec::lookup(Dn::parse("hn=x").unwrap()),
            });
            out.request(
                &addr,
                req,
                Box::new(move |res| {
                    let _ = tx.send(res);
                }),
            );
            rx
        };
        let rx_a = send(&out, b'a'); // corr 1: the server ignores it
        let rx_b = send(&out, b'b'); // corr 2: answered promptly
        assert!(rx_b.recv().unwrap().is_ok(), "B answered while A pends");
        assert_eq!(
            rx_a.recv().unwrap(),
            Err(TransportError::Timeout),
            "A's own deadline fires"
        );
        let rx_c = send(&out, b'c'); // corr 3: rides the same connection
        assert!(
            rx_c.recv().unwrap().is_ok(),
            "the connection outlives an unrelated per-request timeout"
        );
        out.close();
        server.join().unwrap();
    }

    // Satellite: multiplexing correctness as a property — arbitrary
    // shuffles of reply order over one real loopback connection, every
    // caller gets exactly its own reply. Case count kept low: each case
    // spins up a real listener.
    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig {
            cases: 12, ..Default::default()
        })]

        #[test]
        fn shuffled_replies_always_reach_their_callers(
            n in 2usize..10,
            seed in proptest::prelude::any::<u64>(),
            junk in proptest::prelude::any::<bool>(),
        ) {
            // Fisher–Yates with a deterministic LCG over the seed.
            let mut plan: Vec<usize> = (0..n).collect();
            let mut s = seed | 1;
            for i in (1..n).rev() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let j = (s >> 33) as usize % (i + 1);
                plan.swap(i, j);
            }
            run_mux_exchange(n, plan, junk);
        }
    }
}
