//! MDS-2 assembly: deployments, runtimes and scenario topologies.
//!
//! This crate binds the sans-IO protocol engines (`gis-gris`,
//! `gis-giis`) to executable runtimes:
//!
//! * [`actors`] + [`deploy`] — the deterministic simulated runtime used
//!   by tests and experiments (Figures 1, 4, 5 become reproducible
//!   simulations);
//! * [`scenario`] — prebuilt topologies matching the paper's figures;
//! * [`live`] — a multi-threaded in-process runtime (crossbeam channels,
//!   one thread per service) demonstrating that the same engines run
//!   over real concurrency;
//! * [`transport`] — the TCP boundary under [`live`]: length-prefixed
//!   `ProtocolMessage` frames on real sockets, so services spawned with
//!   `Transport::Tcp` serve GRIP/GRRP to other OS processes.

#![warn(missing_docs)]

pub mod actors;
pub mod bootstrap;
pub mod deploy;
pub mod live;
pub mod naming;
pub mod reactor;
pub mod scenario;
pub mod transport;

pub use actors::{ClientActor, GiisActor, GrisActor, NameService};
pub use bootstrap::{
    discover_directories, join_via_hierarchy, local_default_directory, manual_join,
};
pub use deploy::{org, SimDeployment, DEFAULT_TICK};
pub use live::{
    LiveClient, LiveNetMetrics, LiveRuntime, ReplicaBalancer, RetryPolicy, SearchRequest,
    SearchResponse, ServeOptions, ServiceFault, Transport,
};
pub use naming::{Guid, GuidGenerator, NamingAuthority};
pub use scenario::{figure5, two_vos, HierarchyScenario, TwoVoScenario};
pub use transport::TcpTuning;
