//! Deployment builder: assemble VOs of GRIS and GIIS instances over the
//! simulator and drive them from experiment code.

use crate::actors::{ClientActor, GiisActor, GrisActor, NameService};
use gis_giis::Giis;
use gis_gris::{
    DynamicHostProvider, FilesystemProvider, Gris, GrisConfig, HostSpec, QueueProvider,
    StaticHostProvider,
};
use gis_ldap::{Dn, Entry, LdapUrl};
use gis_netsim::{ms, NodeId, Sim, SimDuration, SimTime};
use gis_proto::{GripReply, ProtocolMessage, RequestId, ResultCode, SearchSpec};

/// How often service actors run their periodic tick (registration
/// refresh checks, subscription evaluation, fan-out deadlines).
pub const DEFAULT_TICK: SimDuration = SimDuration(250_000); // 250 ms

/// A simulated MDS-2 deployment under construction and execution.
pub struct SimDeployment {
    /// The underlying simulator (public: experiments partition/crash/heal
    /// through it).
    pub sim: Sim<ProtocolMessage>,
    /// URL-to-node resolution shared by every actor.
    pub names: NameService,
    /// Tick granularity for services added subsequently.
    pub tick_every: SimDuration,
}

impl SimDeployment {
    /// Create a deployment with the given simulation seed.
    pub fn new(seed: u64) -> SimDeployment {
        SimDeployment {
            sim: Sim::new(seed),
            names: NameService::new(),
            tick_every: DEFAULT_TICK,
        }
    }

    /// Add a GRIS service; its URL becomes resolvable immediately.
    pub fn add_gris(&mut self, gris: Gris) -> NodeId {
        let url = gris.config.url.clone();
        let actor = GrisActor::new(gris, self.names.clone(), self.tick_every);
        let node = self.sim.add_node(url.to_string(), Box::new(actor));
        self.names.register(&url, node);
        node
    }

    /// Add a GIIS service; its URL becomes resolvable immediately.
    pub fn add_giis(&mut self, giis: Giis) -> NodeId {
        let url = giis.config.url.clone();
        let actor = GiisActor::new(giis, self.names.clone(), self.tick_every);
        let node = self.sim.add_node(url.to_string(), Box::new(actor));
        self.names.register(&url, node);
        node
    }

    /// Add a client.
    pub fn add_client(&mut self, name: &str) -> NodeId {
        let actor = ClientActor::new(self.names.clone());
        self.sim.add_node(name, Box::new(actor))
    }

    /// Build a standard host GRIS (static + dynamic + filesystem + queue
    /// providers) named `gris.<hostname>`, serving the host's namespace.
    pub fn standard_host_gris(host: &HostSpec, seed: u64) -> Gris {
        // The endpoint name embeds the full namespace: host names are
        // only *relatively* unique (§8 — `hn=R1` exists in several
        // organizations), but service URLs must be global.
        let dn = host.dn();
        let mut label_parts: Vec<&str> = dn.rdns().iter().map(|r| r.value()).collect();
        label_parts.reverse();
        let url = LdapUrl::server(format!("gris.{}", label_parts.join(".")));
        let config = GrisConfig::open(url, host.dn());
        let mut gris = Gris::new(
            config,
            SimDuration::from_secs(30),
            SimDuration::from_secs(90),
        );
        gris.add_provider(Box::new(StaticHostProvider::new(host.clone())));
        gris.add_provider(Box::new(DynamicHostProvider::new(
            host,
            seed,
            1.0 + (seed % 3) as f64,
            SimDuration::from_secs(10),
            SimDuration::from_secs(30),
        )));
        gris.add_provider(Box::new(FilesystemProvider::new(
            host,
            "scratch",
            "/disks/scratch1",
            20_000 + (seed % 5) * 10_000,
            seed ^ 0xf5,
            SimDuration::from_secs(60),
        )));
        gris.add_provider(Box::new(QueueProvider::new(
            host,
            "default",
            3.0,
            seed ^ 0x9e,
            SimDuration::from_secs(30),
        )));
        gris
    }

    /// Add a standard host GRIS and point its registration agent at the
    /// given directories. Returns the node and the GRIS URL.
    pub fn add_standard_host(
        &mut self,
        host: &HostSpec,
        seed: u64,
        register_with: &[LdapUrl],
    ) -> (NodeId, LdapUrl) {
        let mut gris = Self::standard_host_gris(host, seed);
        for dir in register_with {
            gris.agent.add_target(dir.clone());
        }
        let url = gris.config.url.clone();
        let node = self.add_gris(gris);
        (node, url)
    }

    /// Issue a search from `client` to `target`.
    pub fn search(&mut self, client: NodeId, target: &LdapUrl, spec: SearchSpec) -> RequestId {
        self.sim
            .invoke::<ClientActor, _>(client, |c, ctx| c.search(ctx, target, spec))
    }

    /// Issue a search and run the simulation until the reply arrives (or
    /// `max_wait` passes). Returns the result when available.
    pub fn search_and_wait(
        &mut self,
        client: NodeId,
        target: &LdapUrl,
        spec: SearchSpec,
        max_wait: SimDuration,
    ) -> Option<(ResultCode, Vec<Entry>, Vec<LdapUrl>)> {
        let id = self.search(client, target, spec);
        let deadline = self.sim.now() + max_wait;
        loop {
            if let Some(GripReply::SearchResult {
                code,
                entries,
                referrals,
                ..
            }) = self
                .sim
                .actor::<ClientActor>(client)
                .and_then(|c| c.search_result(id))
            {
                return Some((*code, entries.clone(), referrals.clone()));
            }
            if self.sim.now() >= deadline {
                return None;
            }
            self.sim.run_for(ms(50));
        }
    }

    /// Run the simulation for a duration.
    pub fn run_for(&mut self, d: SimDuration) {
        self.sim.run_for(d);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Read-only access to a deployed GRIS engine.
    pub fn gris(&self, node: NodeId) -> &Gris {
        &self
            .sim
            .actor::<GrisActor>(node)
            .expect("node is not a GRIS")
            .gris
    }

    /// Mutable access to a deployed GRIS engine.
    pub fn gris_mut(&mut self, node: NodeId) -> &mut Gris {
        &mut self
            .sim
            .actor_mut::<GrisActor>(node)
            .expect("node is not a GRIS")
            .gris
    }

    /// Read-only access to a deployed GIIS engine.
    pub fn giis(&self, node: NodeId) -> &Giis {
        &self
            .sim
            .actor::<GiisActor>(node)
            .expect("node is not a GIIS")
            .giis
    }

    /// Mutable access to a deployed GIIS engine.
    pub fn giis_mut(&mut self, node: NodeId) -> &mut Giis {
        &mut self
            .sim
            .actor_mut::<GiisActor>(node)
            .expect("node is not a GIIS")
            .giis
    }

    /// Read-only access to a client actor.
    pub fn client(&self, node: NodeId) -> &ClientActor {
        self.sim
            .actor::<ClientActor>(node)
            .expect("node is not a client")
    }
}

/// Convenience: build a VO suffix DN like `o=O1`.
pub fn org(name: &str) -> Dn {
    Dn::parse(&format!("o={name}")).expect("valid org dn")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_giis::GiisConfig;
    use gis_ldap::Filter;
    use gis_netsim::secs;

    #[test]
    fn end_to_end_direct_gris_query() {
        let mut dep = SimDeployment::new(1);
        let host = HostSpec::linux("n1", 4);
        let (_, gris_url) = dep.add_standard_host(&host, 7, &[]);
        let client = dep.add_client("alice");
        dep.run_for(secs(1));

        let (code, entries, _) = dep
            .search_and_wait(
                client,
                &gris_url,
                SearchSpec::subtree(host.dn(), Filter::always()),
                secs(5),
            )
            .expect("reply arrives");
        assert_eq!(code, ResultCode::Success);
        assert_eq!(entries.len(), 4);
    }

    #[test]
    fn end_to_end_registration_and_chained_discovery() {
        let mut dep = SimDeployment::new(2);
        let giis_url = LdapUrl::server("giis.vo-a");
        let giis = Giis::new(
            GiisConfig::chaining(giis_url.clone(), Dn::root()),
            secs(30),
            secs(90),
        );
        dep.add_giis(giis);

        for (i, name) in ["n1", "n2", "n3"].iter().enumerate() {
            let host = HostSpec::linux(name, 2);
            dep.add_standard_host(&host, i as u64, std::slice::from_ref(&giis_url));
        }
        let client = dep.add_client("alice");

        // Let registrations flow.
        dep.run_for(secs(2));

        let (code, entries, _) = dep
            .search_and_wait(
                client,
                &giis_url,
                SearchSpec::subtree(Dn::root(), Filter::parse("(objectclass=computer)").unwrap()),
                secs(10),
            )
            .expect("reply arrives");
        assert_eq!(code, ResultCode::Success);
        assert_eq!(entries.len(), 3, "all three hosts discovered");
    }

    #[test]
    fn client_latency_recorded() {
        let mut dep = SimDeployment::new(3);
        let host = HostSpec::linux("n1", 4);
        let (_, gris_url) = dep.add_standard_host(&host, 7, &[]);
        let client = dep.add_client("c");
        dep.run_for(secs(1));
        let id = dep.search(client, &gris_url, SearchSpec::lookup(host.dn()));
        dep.run_for(secs(2));
        let latency = dep.client(client).latency(id).expect("completed");
        assert!(latency > SimDuration::ZERO);
        assert!(latency < secs(1));
    }
}
