//! Readiness-driven event loop: raw `epoll`/`kqueue` under the TCP
//! transport.
//!
//! PR 6 made connections persistent and multiplexed but kept **one
//! blocked thread per connection** (a reader per accepted socket, a pump
//! per outbound socket). That caps concurrency at "how many 8 MiB stacks
//! fit", not "how many sockets the kernel can hold" — the C10k problem.
//! This module inverts the model: a **few sharded reactor threads** own
//! *all* nonblocking sockets, the kernel tells each shard which are
//! ready (`epoll_wait` on Linux, `kevent` on macOS — level-triggered,
//! wrapped directly over the raw syscalls so nothing new is vendored),
//! and per-connection state machines ([`EventSource`] implementations in
//! `transport.rs`) run only when there is work.
//!
//! # Architecture
//!
//! * [`Poller`] — a thin, public, level-triggered wrapper over one
//!   `epoll`/`kqueue` instance: `add`/`modify`/`delete` interest,
//!   `wait` for [`Event`]s. Usable on its own (the C10k experiment's
//!   client fleet drives ten thousand sockets off one `Poller`).
//! * [`Reactor`] — the process-global shard set. Each shard is one
//!   thread owning a `Poller`, a wakeup fd, a command queue, a timer
//!   wheel and a scratch read buffer. Sources are distributed over
//!   shards round-robin at registration.
//! * [`EventSource`] — the per-fd state machine: `on_ready` (readable /
//!   writable), `on_timer` (armed deadline passed), `on_attend` (another
//!   thread asked the shard to re-evaluate — used after staging bytes or
//!   killing a connection). Each callback returns [`Keep`]; dropping a
//!   source deregisters its fd and runs its `Drop` impl on the shard
//!   thread.
//!
//! # Ownership rules
//!
//! The shard thread **exclusively** owns its sources map, timer wheel
//! and scratch buffer — no locks around any of them. Cross-thread
//! interaction happens only through:
//!
//! * the command queue (`register` / [`Nudge::attend`] / [`Nudge::close`]),
//!   a mutexed vec drained at the top of every loop iteration, paired
//!   with a wakeup-fd write so a sleeping shard notices immediately;
//! * whatever synchronization the sources themselves carry (the
//!   transport's staging buffers are mutexed; any thread may append and
//!   attempt a nonblocking drain, and the shard drains the remainder on
//!   write-ready).
//!
//! # Timers
//!
//! Deadlines (mid-frame stalls, connect timeouts, per-request reply
//! deadlines, write stalls) ride a single-level timer wheel per shard:
//! 256 slots of 16 ms (~4 s horizon; longer deadlines re-insert on
//! scan). Each source has at most one armed deadline — sources with
//! several logical deadlines arm the minimum and re-derive the rest in
//! `on_timer`. The wheel never removes entries eagerly: `clear_timer`
//! just changes the authoritative per-source deadline, and stale wheel
//! entries are discarded when their slot is scanned.
//!
//! # Metrics
//!
//! The reactor owns a [`MetricsRegistry`] with per-shard gauges
//! (`reactor-fds`, `reactor-conns`), and per-shard histograms of ready
//! events per wake (`reactor-ready-per-wake`) and per-event dispatch
//! latency (`reactor-dispatch-us`). Services that front a TCP endpoint
//! adopt these instruments into their own registry, so they are
//! published into the `Mds-Vo-name=monitoring` namespace like every
//! other hot path.

use gis_proto::metrics::{Gauge, Histogram, MetricsRegistry};
use parking_lot::Mutex;
use std::cell::Cell;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::os::unix::io::{AsRawFd, FromRawFd, RawFd};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Raw syscall surface, Linux flavor: `epoll` + `eventfd`.
#[cfg(target_os = "linux")]
mod sys {
    #![allow(non_camel_case_types)]

    /// One `epoll` event. On x86-64 the kernel ABI packs the struct
    /// (no padding between the 32-bit mask and the 64-bit payload).
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct epoll_event {
        pub events: u32,
        pub data: u64,
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct epoll_event {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const EFD_CLOEXEC: i32 = 0o2000000;
    pub const EFD_NONBLOCK: i32 = 0o4000;
    pub const AF_INET: i32 = 2;
    pub const AF_INET6: i32 = 10;
    pub const SOCK_STREAM: i32 = 1;
    pub const SOCK_NONBLOCK: i32 = 0o4000;
    pub const SOCK_CLOEXEC: i32 = 0o2000000;
    pub const SOL_SOCKET: i32 = 1;
    pub const SO_ERROR: i32 = 4;
    pub const EINPROGRESS: i32 = 115;

    /// IPv4 socket address, kernel layout.
    #[repr(C)]
    pub struct sockaddr_in {
        pub sin_family: u16,
        pub sin_port: u16, // network byte order
        pub sin_addr: [u8; 4],
        pub sin_zero: [u8; 8],
    }

    /// IPv6 socket address, kernel layout.
    #[repr(C)]
    pub struct sockaddr_in6 {
        pub sin6_family: u16,
        pub sin6_port: u16, // network byte order
        pub sin6_flowinfo: u32,
        pub sin6_addr: [u8; 16],
        pub sin6_scope_id: u32,
    }

    // libc symbols; std already links libc, so no new dependency.
    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut epoll_event) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut epoll_event, maxevents: i32, timeout: i32)
            -> i32;
        pub fn eventfd(initval: u32, flags: i32) -> i32;
        pub fn close(fd: i32) -> i32;
        pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        pub fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        pub fn connect(fd: i32, addr: *const u8, len: u32) -> i32;
        pub fn getsockopt(fd: i32, level: i32, name: i32, val: *mut u8, len: *mut u32) -> i32;
    }
}

/// Raw syscall surface, macOS flavor: `kqueue` + a nonblocking pipe.
#[cfg(target_os = "macos")]
mod sys {
    #![allow(non_camel_case_types)]

    /// One `kqueue` change/event record (64-bit macOS layout).
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct kevent {
        pub ident: usize,
        pub filter: i16,
        pub flags: u16,
        pub fflags: u32,
        pub data: isize,
        pub udata: *mut core::ffi::c_void,
    }

    #[repr(C)]
    pub struct timespec {
        pub tv_sec: i64,
        pub tv_nsec: i64,
    }

    pub const EVFILT_READ: i16 = -1;
    pub const EVFILT_WRITE: i16 = -2;
    pub const EV_ADD: u16 = 0x0001;
    pub const EV_DELETE: u16 = 0x0002;
    pub const EV_ENABLE: u16 = 0x0004;
    pub const EV_DISABLE: u16 = 0x0008;
    pub const EV_EOF: u16 = 0x8000;
    pub const EV_ERROR: u16 = 0x4000;
    pub const AF_INET: i32 = 2;
    pub const AF_INET6: i32 = 30;
    pub const SOCK_STREAM: i32 = 1;
    pub const SOL_SOCKET: i32 = 0xffff;
    pub const SO_ERROR: i32 = 0x1007;
    pub const EINPROGRESS: i32 = 36;
    pub const F_SETFL: i32 = 4;
    pub const F_GETFL: i32 = 3;
    pub const O_NONBLOCK: i32 = 0x0004;

    /// BSD socket addresses carry a length byte before the family.
    #[repr(C)]
    pub struct sockaddr_in {
        pub sin_len: u8,
        pub sin_family: u8,
        pub sin_port: u16, // network byte order
        pub sin_addr: [u8; 4],
        pub sin_zero: [u8; 8],
    }

    #[repr(C)]
    pub struct sockaddr_in6 {
        pub sin6_len: u8,
        pub sin6_family: u8,
        pub sin6_port: u16, // network byte order
        pub sin6_flowinfo: u32,
        pub sin6_addr: [u8; 16],
        pub sin6_scope_id: u32,
    }

    extern "C" {
        pub fn kqueue() -> i32;
        #[allow(clippy::too_many_arguments)]
        pub fn kevent(
            kq: i32,
            changelist: *const kevent,
            nchanges: i32,
            eventlist: *mut kevent,
            nevents: i32,
            timeout: *const timespec,
        ) -> i32;
        pub fn close(fd: i32) -> i32;
        pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        pub fn pipe(fds: *mut i32) -> i32;
        pub fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
        pub fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        pub fn connect(fd: i32, addr: *const u8, len: u32) -> i32;
        pub fn getsockopt(fd: i32, level: i32, name: i32, val: *mut u8, len: *mut u32) -> i32;
    }
}

#[cfg(not(any(target_os = "linux", target_os = "macos")))]
compile_error!(
    "gis-core's reactor transport wraps raw epoll (Linux) or kqueue (macOS) \
     syscalls; no readiness backend exists for this target"
);

/// Readiness of one registered fd, as reported by [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Reading will not block (data, EOF, or a pending error).
    pub readable: bool,
    /// Writing will not block (or a pending error will surface).
    pub writable: bool,
    /// The peer closed its half (informational; a read still drains
    /// whatever arrived before the close).
    pub hangup: bool,
}

/// Up to this many kernel events are harvested per `wait` call; a busier
/// instance simply reports the rest on the next call (level-triggered).
const MAX_EVENTS: usize = 1024;

/// A thin, level-triggered wrapper over one `epoll` (Linux) or `kqueue`
/// (macOS) instance.
///
/// Register nonblocking fds with a caller-chosen `token`, then `wait`
/// for [`Event`]s. The wrapper is deliberately minimal — no ownership of
/// the fds, no dispatch — so it can back both the transport's sharded
/// [`Reactor`] and standalone users like the C10k experiment's
/// ten-thousand-socket client fleet.
#[derive(Debug)]
pub struct Poller {
    fd: RawFd,
}

// An epoll/kqueue fd is a kernel object; syscalls on it are thread-safe.
unsafe impl Send for Poller {}
unsafe impl Sync for Poller {}

#[cfg(target_os = "linux")]
impl Poller {
    /// Create a new poller instance.
    pub fn new() -> io::Result<Poller> {
        let fd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
        let mut events = 0u32;
        if read {
            events |= sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if write {
            events |= sys::EPOLLOUT;
        }
        let mut ev = sys::epoll_event {
            events,
            data: token,
        };
        let rc = unsafe { sys::epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Register `fd` under `token` with the given interest set.
    pub fn add(&self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, read, write)
    }

    /// Change the interest set of an already-registered fd.
    pub fn modify(&self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, read, write)
    }

    /// Remove `fd` from the interest set.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_DEL, fd, 0, false, false)
    }

    /// Wait up to `timeout` (`None` = forever) for readiness, appending
    /// to `out`. Returns the number of events harvested.
    pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        let mut buf = [sys::epoll_event { events: 0, data: 0 }; MAX_EVENTS];
        let ms = match timeout {
            None => -1,
            Some(t) => t.as_millis().min(i32::MAX as u128) as i32,
        };
        let n = unsafe { sys::epoll_wait(self.fd, buf.as_mut_ptr(), MAX_EVENTS as i32, ms) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        for ev in buf.iter().take(n as usize) {
            let bits = ev.events;
            let err = bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0;
            out.push(Event {
                token: ev.data,
                readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0 || err,
                writable: bits & sys::EPOLLOUT != 0 || err,
                hangup: bits & (sys::EPOLLHUP | sys::EPOLLRDHUP) != 0,
            });
        }
        Ok(n as usize)
    }
}

#[cfg(target_os = "macos")]
impl Poller {
    /// Create a new poller instance.
    pub fn new() -> io::Result<Poller> {
        let fd = unsafe { sys::kqueue() };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { fd })
    }

    fn filter(&self, fd: RawFd, token: u64, filter: i16, flags: u16) -> io::Result<()> {
        let change = sys::kevent {
            ident: fd as usize,
            filter,
            flags,
            fflags: 0,
            data: 0,
            udata: token as *mut core::ffi::c_void,
        };
        let rc = unsafe {
            sys::kevent(
                self.fd,
                &change,
                1,
                std::ptr::null_mut(),
                0,
                std::ptr::null(),
            )
        };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn set(&self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
        // Both filters always registered; interest toggles enable state.
        // Level-triggered (no EV_CLEAR), matching the epoll backend.
        let on = sys::EV_ADD | sys::EV_ENABLE;
        let off = sys::EV_ADD | sys::EV_DISABLE;
        self.filter(fd, token, sys::EVFILT_READ, if read { on } else { off })?;
        self.filter(fd, token, sys::EVFILT_WRITE, if write { on } else { off })
    }

    /// Register `fd` under `token` with the given interest set.
    pub fn add(&self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
        self.set(fd, token, read, write)
    }

    /// Change the interest set of an already-registered fd.
    pub fn modify(&self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
        self.set(fd, token, read, write)
    }

    /// Remove `fd` from the interest set.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        // Either filter may be absent; ignore ENOENT-style failures.
        let _ = self.filter(fd, 0, sys::EVFILT_READ, sys::EV_DELETE);
        let _ = self.filter(fd, 0, sys::EVFILT_WRITE, sys::EV_DELETE);
        Ok(())
    }

    /// Wait up to `timeout` (`None` = forever) for readiness, appending
    /// to `out`. Returns the number of events harvested.
    pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        let mut buf = [sys::kevent {
            ident: 0,
            filter: 0,
            flags: 0,
            fflags: 0,
            data: 0,
            udata: std::ptr::null_mut(),
        }; MAX_EVENTS];
        let ts = timeout.map(|t| sys::timespec {
            tv_sec: t.as_secs() as i64,
            tv_nsec: t.subsec_nanos() as i64,
        });
        let ts_ptr = ts
            .as_ref()
            .map(|t| t as *const sys::timespec)
            .unwrap_or(std::ptr::null());
        let n = unsafe {
            sys::kevent(
                self.fd,
                std::ptr::null(),
                0,
                buf.as_mut_ptr(),
                MAX_EVENTS as i32,
                ts_ptr,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        for ev in buf.iter().take(n as usize) {
            let eof = ev.flags & (sys::EV_EOF | sys::EV_ERROR) != 0;
            out.push(Event {
                token: ev.udata as u64,
                readable: ev.filter == sys::EVFILT_READ || eof,
                writable: ev.filter == sys::EVFILT_WRITE || eof,
                hangup: ev.flags & sys::EV_EOF != 0,
            });
        }
        Ok(n as usize)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.fd);
        }
    }
}

/// Number of reactor shard threads this process uses for its TCP
/// transport, starting the process-global reactor if it is not yet
/// running. Tunable via `GIS_REACTOR_SHARDS`.
pub fn reactor_shards() -> usize {
    Reactor::global().shard_count()
}

/// Begin a nonblocking TCP connect to `addr`. Returns the socket
/// (already `O_NONBLOCK`) and whether the connect completed immediately
/// (loopback often does). When it did not, wait for **writability** and
/// then check [`take_socket_error`] — the standard nonblocking-connect
/// completion protocol.
pub fn connect_nonblocking(addr: &SocketAddr) -> io::Result<(TcpStream, bool)> {
    let domain = match addr {
        SocketAddr::V4(_) => sys::AF_INET,
        SocketAddr::V6(_) => sys::AF_INET6,
    };
    #[cfg(target_os = "linux")]
    let fd = unsafe {
        sys::socket(
            domain,
            sys::SOCK_STREAM | sys::SOCK_NONBLOCK | sys::SOCK_CLOEXEC,
            0,
        )
    };
    #[cfg(target_os = "macos")]
    let fd = unsafe {
        let fd = sys::socket(domain, sys::SOCK_STREAM, 0);
        if fd >= 0 {
            let flags = sys::fcntl(fd, sys::F_GETFL, 0);
            sys::fcntl(fd, sys::F_SETFL, flags | sys::O_NONBLOCK);
        }
        fd
    };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    // From here the fd is owned: any early return drops the TcpStream.
    let stream = unsafe { TcpStream::from_raw_fd(fd) };
    let rc = match addr {
        SocketAddr::V4(v4) => {
            #[cfg(target_os = "linux")]
            let sa = sys::sockaddr_in {
                sin_family: sys::AF_INET as u16,
                sin_port: v4.port().to_be(),
                sin_addr: v4.ip().octets(),
                sin_zero: [0; 8],
            };
            #[cfg(target_os = "macos")]
            let sa = sys::sockaddr_in {
                sin_len: std::mem::size_of::<sys::sockaddr_in>() as u8,
                sin_family: sys::AF_INET as u8,
                sin_port: v4.port().to_be(),
                sin_addr: v4.ip().octets(),
                sin_zero: [0; 8],
            };
            unsafe {
                sys::connect(
                    fd,
                    &sa as *const _ as *const u8,
                    std::mem::size_of::<sys::sockaddr_in>() as u32,
                )
            }
        }
        SocketAddr::V6(v6) => {
            #[cfg(target_os = "linux")]
            let sa = sys::sockaddr_in6 {
                sin6_family: sys::AF_INET6 as u16,
                sin6_port: v6.port().to_be(),
                sin6_flowinfo: v6.flowinfo(),
                sin6_addr: v6.ip().octets(),
                sin6_scope_id: v6.scope_id(),
            };
            #[cfg(target_os = "macos")]
            let sa = sys::sockaddr_in6 {
                sin6_len: std::mem::size_of::<sys::sockaddr_in6>() as u8,
                sin6_family: sys::AF_INET6 as u8,
                sin6_port: v6.port().to_be(),
                sin6_flowinfo: v6.flowinfo(),
                sin6_addr: v6.ip().octets(),
                sin6_scope_id: v6.scope_id(),
            };
            unsafe {
                sys::connect(
                    fd,
                    &sa as *const _ as *const u8,
                    std::mem::size_of::<sys::sockaddr_in6>() as u32,
                )
            }
        }
    };
    if rc == 0 {
        return Ok((stream, true));
    }
    let err = io::Error::last_os_error();
    if err.raw_os_error() == Some(sys::EINPROGRESS) {
        return Ok((stream, false));
    }
    Err(err)
}

/// Read and clear the pending socket error (`SO_ERROR`) — the result of
/// a nonblocking connect once the socket reports writable.
pub fn take_socket_error(stream: &TcpStream) -> io::Result<()> {
    let mut val: i32 = 0;
    let mut len = std::mem::size_of::<i32>() as u32;
    let rc = unsafe {
        sys::getsockopt(
            stream.as_raw_fd(),
            sys::SOL_SOCKET,
            sys::SO_ERROR,
            &mut val as *mut _ as *mut u8,
            &mut len,
        )
    };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    if val != 0 {
        return Err(io::Error::from_raw_os_error(val));
    }
    Ok(())
}

/// Cross-thread wakeup for one shard: an `eventfd` on Linux, a
/// nonblocking pipe on macOS. Registered in the shard's poller under
/// [`WAKE_TOKEN`]; `wake` makes a sleeping `wait` return immediately.
#[derive(Debug)]
struct Waker {
    read_fd: RawFd,
    /// Same fd as `read_fd` for eventfd; the pipe's write end otherwise.
    write_fd: RawFd,
    /// Whether `write_fd` is a distinct fd that needs closing.
    piped: bool,
}

impl Waker {
    #[cfg(target_os = "linux")]
    fn new() -> io::Result<Waker> {
        let fd = unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Waker {
            read_fd: fd,
            write_fd: fd,
            piped: false,
        })
    }

    #[cfg(target_os = "macos")]
    fn new() -> io::Result<Waker> {
        let mut fds = [0i32; 2];
        if unsafe { sys::pipe(fds.as_mut_ptr()) } < 0 {
            return Err(io::Error::last_os_error());
        }
        for fd in fds {
            unsafe {
                let flags = sys::fcntl(fd, sys::F_GETFL, 0);
                sys::fcntl(fd, sys::F_SETFL, flags | sys::O_NONBLOCK);
            }
        }
        Ok(Waker {
            read_fd: fds[0],
            write_fd: fds[1],
            piped: true,
        })
    }

    fn wake(&self) {
        let one: u64 = 1;
        unsafe {
            sys::write(self.write_fd, &one as *const u64 as *const u8, 8);
        }
    }

    fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { sys::read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
            if n <= 0 {
                break;
            }
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.read_fd);
            if self.piped {
                sys::close(self.write_fd);
            }
        }
    }
}

/// Token reserved for each shard's wakeup fd.
const WAKE_TOKEN: u64 = 0;

/// Whether a source stays registered after a callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Keep {
    /// Stay registered.
    Keep,
    /// Deregister: the shard removes the fd from its poller and drops
    /// the source (running its `Drop` impl on the shard thread).
    Drop,
}

/// A per-fd state machine owned by one shard. All callbacks run on the
/// shard thread, which exclusively owns the source between registration
/// and drop; cross-thread signalling goes through [`Nudge`].
pub(crate) trait EventSource: Send {
    /// The fd to register. Must stay valid (and nonblocking) for the
    /// source's registered lifetime.
    fn fd(&self) -> RawFd;
    /// The fd reported readable and/or writable.
    fn on_ready(&mut self, readable: bool, writable: bool, ctl: &mut Ctl<'_>) -> Keep;
    /// The armed deadline passed.
    fn on_timer(&mut self, ctl: &mut Ctl<'_>) -> Keep;
    /// Another thread asked this source to re-evaluate (staged bytes to
    /// drain, deadlines to arm, a kill to collect).
    fn on_attend(&mut self, ctl: &mut Ctl<'_>) -> Keep;
}

/// Shard-side controls handed to every [`EventSource`] callback:
/// interest changes, deadline arming, and the shard's shared scratch
/// read buffer (one 16 KiB buffer per shard, not per connection — this
/// is what keeps 10k idle connections at O(frames-in-progress) memory).
pub(crate) struct Ctl<'a> {
    poller: &'a Poller,
    wheel: &'a mut TimerWheel,
    token: u64,
    fd: RawFd,
    interest: &'a mut (bool, bool),
    deadline: &'a mut Option<Instant>,
    /// Shared per-shard read buffer, valid for the duration of the
    /// callback.
    pub(crate) scratch: &'a mut [u8],
}

impl Ctl<'_> {
    /// Set the fd's interest set (idempotent: no syscall when unchanged).
    pub(crate) fn set_interest(&mut self, read: bool, write: bool) {
        if *self.interest != (read, write) {
            let _ = self.poller.modify(self.fd, self.token, read, write);
            *self.interest = (read, write);
        }
    }

    /// Arm (or move) this source's single deadline.
    pub(crate) fn arm_timer(&mut self, at: Instant) {
        if *self.deadline != Some(at) {
            *self.deadline = Some(at);
            self.wheel.arm(self.token, at);
        }
    }

    /// Clear the armed deadline (stale wheel entries are skipped).
    pub(crate) fn clear_timer(&mut self) {
        *self.deadline = None;
    }
}

/// Commands other threads enqueue for a shard.
enum Cmd {
    Register {
        token: u64,
        source: Box<dyn EventSource>,
        read: bool,
        write: bool,
        deadline: Option<Instant>,
        is_conn: bool,
    },
    Attend(u64),
    Close(u64),
}

/// One registered source plus the shard-side state the dispatcher and
/// timer wheel consult.
struct Entry {
    source: Box<dyn EventSource>,
    fd: RawFd,
    interest: (bool, bool),
    deadline: Option<Instant>,
    is_conn: bool,
}

/// Timer wheel granularity. Deadline callbacks fire up to one
/// granularity late — fine for the transport's 100 ms+ deadlines.
const WHEEL_GRANULARITY: Duration = Duration::from_millis(16);
/// Wheel size: 256 slots x 16 ms ≈ 4 s horizon; longer deadlines park in
/// the furthest slot and re-insert when scanned.
const WHEEL_SLOTS: usize = 256;
/// An idle shard (no armed timers) re-checks its command queue at least
/// this often even if the wakeup write is lost (defensive bound).
const IDLE_POLL: Duration = Duration::from_millis(100);

/// Single-level timer wheel: slot = deadline tick mod [`WHEEL_SLOTS`].
/// Entries are lazily discarded — a cleared or re-armed deadline leaves
/// its old wheel entry behind, and the scan drops entries that no longer
/// match their source's authoritative deadline.
pub(crate) struct TimerWheel {
    slots: Vec<Vec<(u64, Instant)>>,
    /// Next tick to scan (absolute, since `epoch`).
    tick: u64,
    epoch: Instant,
    /// Live wheel entries (including stale ones).
    armed: usize,
}

impl TimerWheel {
    fn new(now: Instant) -> TimerWheel {
        TimerWheel {
            slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            tick: 0,
            epoch: now,
            armed: 0,
        }
    }

    fn tick_of(&self, at: Instant) -> u64 {
        (at.saturating_duration_since(self.epoch).as_millis() as u64)
            / (WHEEL_GRANULARITY.as_millis() as u64)
    }

    fn arm(&mut self, token: u64, at: Instant) {
        // Never behind the scan cursor; beyond-horizon entries park in
        // the furthest slot and re-insert when scanned.
        let t = self.tick_of(at).max(self.tick);
        let t = t.min(self.tick + WHEEL_SLOTS as u64 - 1);
        self.slots[(t % WHEEL_SLOTS as u64) as usize].push((token, at));
        self.armed += 1;
    }

    /// Advance the scan cursor to `now`, collecting due entries into
    /// `fired` as `(token, deadline)` pairs (the caller validates each
    /// against the source's authoritative deadline).
    fn due(&mut self, now: Instant, fired: &mut Vec<(u64, Instant)>) {
        if self.armed == 0 {
            self.tick = self.tick_of(now) + 1;
            return;
        }
        let target = self.tick_of(now);
        let mut rearm: Vec<(u64, Instant)> = Vec::new();
        while self.tick <= target {
            let slot = (self.tick % WHEEL_SLOTS as u64) as usize;
            for (token, at) in std::mem::take(&mut self.slots[slot]) {
                self.armed -= 1;
                if at <= now {
                    fired.push((token, at));
                } else {
                    rearm.push((token, at));
                }
            }
            self.tick += 1;
        }
        // Re-inserted after the cursor moved, so each lands in a slot
        // the next scan will reach.
        for (token, at) in rearm {
            self.arm(token, at);
        }
    }

    /// Earliest armed deadline (may be stale — a spurious early wake is
    /// harmless, the scan discards it). Linear over live entries.
    fn next_deadline(&self) -> Option<Instant> {
        if self.armed == 0 {
            return None;
        }
        self.slots
            .iter()
            .flat_map(|s| s.iter().map(|&(_, at)| at))
            .min()
    }
}

thread_local! {
    /// True on reactor shard threads; lets the transport relax blocking
    /// backpressure that would otherwise stall a whole shard.
    static ON_REACTOR_THREAD: Cell<bool> = const { Cell::new(false) };
}

/// One reactor shard: the cross-thread half (command queue, wakeup,
/// instruments). The sources map, wheel and scratch buffer live on the
/// shard thread's stack, unshared.
pub(crate) struct Shard {
    idx: usize,
    poller: Poller,
    waker: Waker,
    cmds: Mutex<Vec<Cmd>>,
    fds: Arc<Gauge>,
    conns: Arc<Gauge>,
    ready_per_wake: Arc<Histogram>,
    dispatch_us: Arc<Histogram>,
}

impl Shard {
    fn push(&self, cmd: Cmd) {
        self.cmds.lock().push(cmd);
        self.waker.wake();
    }

    fn run(self: Arc<Shard>) {
        ON_REACTOR_THREAD.with(|f| f.set(true));
        let mut sources: HashMap<u64, Entry> = HashMap::new();
        let mut wheel = TimerWheel::new(Instant::now());
        let mut scratch = vec![0u8; 16 * 1024];
        let mut events: Vec<Event> = Vec::with_capacity(MAX_EVENTS);
        let mut inbound: Vec<Cmd> = Vec::new();
        let mut fired: Vec<(u64, Instant)> = Vec::new();
        loop {
            let timeout = match wheel.next_deadline() {
                Some(at) => at
                    .saturating_duration_since(Instant::now())
                    .min(IDLE_POLL)
                    .max(Duration::from_millis(1)),
                None => IDLE_POLL,
            };
            events.clear();
            let n = self.poller.wait(&mut events, Some(timeout)).unwrap_or(0);
            self.ready_per_wake.record(n as u64);

            // Commands first: registrations precede any event their fd
            // can produce, and attend/close for dead tokens no-op.
            {
                let mut q = self.cmds.lock();
                std::mem::swap(&mut *q, &mut inbound);
            }
            for cmd in inbound.drain(..) {
                match cmd {
                    Cmd::Register {
                        token,
                        source,
                        read,
                        write,
                        deadline,
                        is_conn,
                    } => {
                        let fd = source.fd();
                        if self.poller.add(fd, token, read, write).is_err() {
                            // Registration failed (fd limit on the epoll
                            // set, stale fd): drop the source, running
                            // its cleanup.
                            continue;
                        }
                        if let Some(at) = deadline {
                            wheel.arm(token, at);
                        }
                        sources.insert(
                            token,
                            Entry {
                                source,
                                fd,
                                interest: (read, write),
                                deadline,
                                is_conn,
                            },
                        );
                    }
                    Cmd::Attend(token) => {
                        self.dispatch(token, &mut sources, &mut wheel, &mut scratch, |s, ctl| {
                            s.on_attend(ctl)
                        });
                    }
                    Cmd::Close(token) => {
                        if let Some(entry) = sources.remove(&token) {
                            let _ = self.poller.delete(entry.fd);
                        }
                    }
                }
            }

            for &ev in &events {
                if ev.token == WAKE_TOKEN {
                    self.waker.drain();
                    continue;
                }
                let t0 = Instant::now();
                self.dispatch(
                    ev.token,
                    &mut sources,
                    &mut wheel,
                    &mut scratch,
                    |s, ctl| s.on_ready(ev.readable, ev.writable, ctl),
                );
                self.dispatch_us.record(t0.elapsed().as_micros() as u64);
            }

            fired.clear();
            wheel.due(Instant::now(), &mut fired);
            for &(token, at) in fired.iter() {
                // Only fire if this wheel entry still matches the
                // source's authoritative deadline; cleared or re-armed
                // deadlines leave stale entries behind by design.
                let live = sources.get(&token).is_some_and(|e| e.deadline == Some(at));
                if live {
                    self.dispatch(token, &mut sources, &mut wheel, &mut scratch, |s, ctl| {
                        ctl.clear_timer();
                        s.on_timer(ctl)
                    });
                }
            }

            self.fds.set(sources.len() as u64 + 1); // +1: the wakeup fd
            self.conns
                .set(sources.values().filter(|e| e.is_conn).count() as u64);
        }
    }

    /// Run one callback against the source registered under `token`
    /// (no-op for dead tokens), deregistering it on [`Keep::Drop`].
    fn dispatch<F>(
        &self,
        token: u64,
        sources: &mut HashMap<u64, Entry>,
        wheel: &mut TimerWheel,
        scratch: &mut [u8],
        f: F,
    ) where
        F: FnOnce(&mut Box<dyn EventSource>, &mut Ctl<'_>) -> Keep,
    {
        let Some(entry) = sources.get_mut(&token) else {
            return;
        };
        let keep = {
            let mut ctl = Ctl {
                poller: &self.poller,
                wheel,
                token,
                fd: entry.fd,
                interest: &mut entry.interest,
                deadline: &mut entry.deadline,
                scratch,
            };
            f(&mut entry.source, &mut ctl)
        };
        if keep == Keep::Drop {
            let entry = sources.remove(&token).expect("entry present");
            let _ = self.poller.delete(entry.fd);
            // `entry.source` drops here, on the shard thread.
        }
    }
}

/// Cross-thread handle to one registered source: ask its shard to
/// re-evaluate it (`attend`) or to deregister it (`close`). Cheap to
/// clone; safe to use after the source is gone (dead tokens no-op).
#[derive(Clone)]
pub(crate) struct Nudge {
    shard: Arc<Shard>,
    token: u64,
}

impl Nudge {
    /// Schedule an `on_attend` callback on the shard thread.
    pub(crate) fn attend(&self) {
        self.shard.push(Cmd::Attend(self.token));
    }

    /// Deregister the source (its `Drop` impl runs on the shard thread).
    pub(crate) fn close(&self) {
        self.shard.push(Cmd::Close(self.token));
    }
}

/// A reserved registration slot: shard chosen, token allocated, but the
/// source not yet installed. Splitting reservation from activation lets
/// the caller hand the [`Nudge`] to the source's shared state *before*
/// the first event can fire.
pub(crate) struct Registration {
    shard: Arc<Shard>,
    token: u64,
    is_conn: bool,
}

impl Registration {
    /// The cross-thread handle for this slot.
    pub(crate) fn nudge(&self) -> Nudge {
        Nudge {
            shard: Arc::clone(&self.shard),
            token: self.token,
        }
    }

    /// Install `source` on the shard with an initial interest set and
    /// optional deadline. The source's fd must already be nonblocking.
    pub(crate) fn activate(
        self,
        source: Box<dyn EventSource>,
        read: bool,
        write: bool,
        deadline: Option<Instant>,
    ) {
        self.shard.push(Cmd::Register {
            token: self.token,
            source,
            read,
            write,
            deadline,
            is_conn: self.is_conn,
        });
    }
}

/// The process-global sharded reactor. Shard threads start on first use
/// and live for the process (sources come and go; an empty shard is just
/// a sleeping thread).
pub(crate) struct Reactor {
    shards: Vec<Arc<Shard>>,
    next_token: AtomicU64,
    rr: AtomicUsize,
    registry: Arc<MetricsRegistry>,
}

impl Reactor {
    /// The global reactor, started on first call. Shard count comes from
    /// `GIS_REACTOR_SHARDS` (clamped to 1..=64) or defaults to
    /// `min(4, available_parallelism)`.
    pub(crate) fn global() -> &'static Arc<Reactor> {
        static GLOBAL: OnceLock<Arc<Reactor>> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let shards = std::env::var("GIS_REACTOR_SHARDS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .map(|n| n.clamp(1, 64))
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(|n| n.get().min(4))
                        .unwrap_or(1)
                });
            Reactor::start(shards)
        })
    }

    /// Start a reactor with `shard_count` shard threads.
    fn start(shard_count: usize) -> Arc<Reactor> {
        let registry = Arc::new(MetricsRegistry::new());
        let mut shards = Vec::with_capacity(shard_count);
        for idx in 0..shard_count {
            let label = format!("shard{idx}");
            let poller = Poller::new().expect("reactor: poller");
            let waker = Waker::new().expect("reactor: wakeup fd");
            poller
                .add(waker.read_fd, WAKE_TOKEN, true, false)
                .expect("reactor: register wakeup fd");
            let shard = Arc::new(Shard {
                idx,
                poller,
                waker,
                cmds: Mutex::new(Vec::new()),
                fds: registry.labeled_gauge("reactor-fds", Some(&label)),
                conns: registry.labeled_gauge("reactor-conns", Some(&label)),
                ready_per_wake: registry.labeled_histogram("reactor-ready-per-wake", Some(&label)),
                dispatch_us: registry.labeled_histogram("reactor-dispatch-us", Some(&label)),
            });
            let runner = Arc::clone(&shard);
            std::thread::Builder::new()
                .name(format!("gis-reactor-{idx}"))
                .spawn(move || runner.run())
                .expect("reactor: spawn shard thread");
            shards.push(shard);
        }
        Arc::new(Reactor {
            shards,
            next_token: AtomicU64::new(WAKE_TOKEN),
            rr: AtomicUsize::new(0),
            registry,
        })
    }

    /// Number of shard threads.
    pub(crate) fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Reserve a registration slot on the next shard (round-robin).
    /// `is_conn` marks the source as a live connection for the per-shard
    /// `reactor-conns` gauge (listeners pass `false`).
    pub(crate) fn bind(&self, is_conn: bool) -> Registration {
        let token = self.next_token.fetch_add(1, Ordering::Relaxed) + 1;
        let idx = self.rr.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        Registration {
            shard: Arc::clone(&self.shards[idx]),
            token,
            is_conn,
        }
    }

    /// Alias the reactor's instruments (per-shard gauges and histograms)
    /// into `target`, so a service's periodic metrics export publishes
    /// them under its own `Mds-Vo-name=monitoring` subtree.
    pub(crate) fn publish_into(&self, target: &MetricsRegistry) {
        target.adopt_all(&self.registry);
    }

    /// True when called from a reactor shard thread. Blocking on another
    /// shard-managed resource from here risks stalling every connection
    /// the shard owns, so backpressure waits are relaxed.
    pub(crate) fn on_reactor_thread() -> bool {
        ON_REACTOR_THREAD.with(|f| f.get())
    }
}

impl std::fmt::Debug for Reactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reactor")
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl std::fmt::Debug for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard").field("idx", &self.idx).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpListener;
    use std::sync::mpsc;

    #[test]
    fn poller_reports_read_readiness() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(server.as_raw_fd(), 7, true, false).unwrap();

        let mut events = Vec::new();
        // Nothing to read yet.
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.iter().all(|e| e.token != 7 || !e.readable));

        client.write_all(b"ping").unwrap();
        events.clear();
        let deadline = Instant::now() + Duration::from_secs(2);
        while events.is_empty() && Instant::now() < deadline {
            poller
                .wait(&mut events, Some(Duration::from_millis(50)))
                .unwrap();
        }
        assert!(events.iter().any(|e| e.token == 7 && e.readable));

        let mut buf = [0u8; 8];
        let n = (&server).read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");
        poller.delete(server.as_raw_fd()).unwrap();
    }

    #[test]
    fn nonblocking_connect_completes_via_writability() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (stream, done) = connect_nonblocking(&addr).unwrap();
        if !done {
            let poller = Poller::new().unwrap();
            poller.add(stream.as_raw_fd(), 1, false, true).unwrap();
            let mut events = Vec::new();
            let deadline = Instant::now() + Duration::from_secs(2);
            while events.is_empty() && Instant::now() < deadline {
                poller
                    .wait(&mut events, Some(Duration::from_millis(50)))
                    .unwrap();
            }
            assert!(events.iter().any(|e| e.token == 1 && e.writable));
        }
        take_socket_error(&stream).unwrap();
        // The accept side sees the connection.
        let (_conn, _) = listener.accept().unwrap();
    }

    #[test]
    fn nonblocking_connect_to_dead_port_surfaces_error() {
        // Bind then drop to get a port that refuses connections.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        match connect_nonblocking(&addr) {
            Err(_) => {} // refused immediately
            Ok((stream, _)) => {
                let poller = Poller::new().unwrap();
                poller.add(stream.as_raw_fd(), 1, false, true).unwrap();
                let mut events = Vec::new();
                let deadline = Instant::now() + Duration::from_secs(2);
                while events.is_empty() && Instant::now() < deadline {
                    poller
                        .wait(&mut events, Some(Duration::from_millis(50)))
                        .unwrap();
                }
                assert!(take_socket_error(&stream).is_err(), "connect must fail");
            }
        }
    }

    #[test]
    fn timer_wheel_fires_in_order_and_discards_nothing_due() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0);
        wheel.arm(1, t0 + Duration::from_millis(20));
        wheel.arm(2, t0 + Duration::from_millis(200));
        wheel.arm(3, t0 + Duration::from_secs(30)); // beyond horizon

        let mut fired = Vec::new();
        wheel.due(t0 + Duration::from_millis(50), &mut fired);
        assert_eq!(fired.iter().map(|&(t, _)| t).collect::<Vec<_>>(), vec![1]);

        fired.clear();
        wheel.due(t0 + Duration::from_millis(400), &mut fired);
        assert_eq!(fired.iter().map(|&(t, _)| t).collect::<Vec<_>>(), vec![2]);

        // The far deadline survives repeated scans (re-inserted, not
        // dropped and not fired early).
        for step in 1..6u64 {
            fired.clear();
            wheel.due(t0 + Duration::from_secs(step * 4), &mut fired);
            assert!(fired.is_empty(), "far timer fired early at step {step}");
        }
        fired.clear();
        wheel.due(t0 + Duration::from_secs(31), &mut fired);
        assert_eq!(fired.iter().map(|&(t, _)| t).collect::<Vec<_>>(), vec![3]);
        assert_eq!(wheel.armed, 0);
    }

    /// Echo source: reads whatever is ready, writes it straight back.
    struct Echo {
        sock: TcpStream,
        done: mpsc::Sender<Vec<u8>>,
        got: Vec<u8>,
        expect: usize,
    }

    impl EventSource for Echo {
        fn fd(&self) -> RawFd {
            self.sock.as_raw_fd()
        }
        fn on_ready(&mut self, readable: bool, _w: bool, ctl: &mut Ctl<'_>) -> Keep {
            if !readable {
                return Keep::Keep;
            }
            loop {
                match (&self.sock).read(ctl.scratch) {
                    Ok(0) => return Keep::Drop,
                    Ok(n) => {
                        self.got.extend_from_slice(&ctl.scratch[..n]);
                        let _ = (&self.sock).write_all(&ctl.scratch[..n]);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(_) => return Keep::Drop,
                }
            }
            if self.got.len() >= self.expect {
                let _ = self.done.send(std::mem::take(&mut self.got));
                return Keep::Drop;
            }
            Keep::Keep
        }
        fn on_timer(&mut self, _ctl: &mut Ctl<'_>) -> Keep {
            Keep::Keep
        }
        fn on_attend(&mut self, _ctl: &mut Ctl<'_>) -> Keep {
            Keep::Keep
        }
    }

    #[test]
    fn reactor_drives_a_registered_connection() {
        let reactor = Reactor::start(2);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let (tx, rx) = mpsc::channel();
        let reg = reactor.bind(true);
        reg.activate(
            Box::new(Echo {
                sock: server,
                done: tx,
                got: Vec::new(),
                expect: 5,
            }),
            true,
            false,
            None,
        );

        client.write_all(b"hello").unwrap();
        let echoed = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(echoed, b"hello");
        let mut back = [0u8; 5];
        client.read_exact(&mut back).unwrap();
        assert_eq!(&back, b"hello");
    }

    /// Deadline source: never reads; reports when its timer fires.
    struct Alarm {
        sock: TcpStream,
        fired: mpsc::Sender<Instant>,
    }

    impl EventSource for Alarm {
        fn fd(&self) -> RawFd {
            self.sock.as_raw_fd()
        }
        fn on_ready(&mut self, _r: bool, _w: bool, _ctl: &mut Ctl<'_>) -> Keep {
            Keep::Keep
        }
        fn on_timer(&mut self, _ctl: &mut Ctl<'_>) -> Keep {
            let _ = self.fired.send(Instant::now());
            Keep::Drop
        }
        fn on_attend(&mut self, _ctl: &mut Ctl<'_>) -> Keep {
            Keep::Keep
        }
    }

    #[test]
    fn reactor_fires_armed_deadline() {
        let reactor = Reactor::start(1);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let (tx, rx) = mpsc::channel();
        let armed_at = Instant::now();
        let reg = reactor.bind(true);
        reg.activate(
            Box::new(Alarm {
                sock: server,
                fired: tx,
            }),
            false,
            false,
            Some(armed_at + Duration::from_millis(80)),
        );
        let fired_at = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let waited = fired_at - armed_at;
        assert!(
            waited >= Duration::from_millis(60),
            "fired too early: {waited:?}"
        );
    }
}
